//! The attack scenario matrix, end to end — including a custom attacker
//! strategy plugged into the open trait.
//!
//! The paper's table fixes two attack shapes against three ROA
//! configurations under universal ROV. The matrix generalizes all three
//! axes and adds a fourth (who validates), and because the strategy axis
//! is a trait, this example defines its own attacker — a "wait-and-leak"
//! hybrid that leaks when it learned the victim's route and probes the
//! maxLength gap otherwise — without touching the engine.
//!
//! ```sh
//! cargo run --release --example scenario_matrix
//! ```

use maxlength_rpki::bgpsim::exec::{CellAccumulator, Executor, PlanCursor};
use maxlength_rpki::bgpsim::experiment::RoaConfig;
use maxlength_rpki::bgpsim::matrix::{ScenarioMatrix, TopologyFamily};
use maxlength_rpki::bgpsim::strategy::{AttackPlan, AttackerStrategy, StrategyContext};
use maxlength_rpki::bgpsim::topology::{Topology, TopologyConfig};
use maxlength_rpki::bgpsim::{DeploymentModel, MaxLengthGapProber, RouteLeak};

/// A custom strategy: leak if the route was learned, probe otherwise.
struct WaitAndLeak;

impl AttackerStrategy for WaitAndLeak {
    fn label(&self) -> String {
        "wait-and-leak hybrid".to_string()
    }

    fn plan(&self, ctx: &StrategyContext<'_>) -> AttackPlan {
        if ctx.baseline().routes()[ctx.attacker].is_some() {
            RouteLeak.plan(ctx)
        } else {
            MaxLengthGapProber.plan(ctx)
        }
    }
}

fn main() {
    let mut strategies = ScenarioMatrix::standard_strategies();
    strategies.push(Box::new(WaitAndLeak));

    let matrix = ScenarioMatrix {
        topologies: vec![TopologyFamily::new(TopologyConfig {
            n: 600,
            tier1: 6,
            ..TopologyConfig::default()
        })],
        strategies,
        deployments: vec![
            DeploymentModel::Uniform { p: 1.0 },
            DeploymentModel::TopIspsFirst { p: 0.3 },
            DeploymentModel::StubsOnly { p: 1.0 },
        ],
        roas: RoaConfig::ALL.to_vec(),
        trials: 8,
        seed: 2017,
    };

    let t0 = std::time::Instant::now();
    let (report, stats) = matrix.run_par_with_stats();
    println!("{}", report.render());
    println!(
        "{} cells × {} trials in {:.1?} (parallel, bit-identical to sequential): \
         {} policy compilations, {}/{} outcomes replayed as deployment-independent",
        report.cells.len(),
        report.trials,
        t0.elapsed(),
        stats.compilations,
        stats.replayed,
        stats.items,
    );

    // The same grid, checkpointed: run a few items at a time, serialize
    // the cursor to text between steps (as a long-running job would
    // persist it to disk across restarts), and finish bit-identical to
    // the straight-through run above.
    let topologies: Vec<Topology> = matrix
        .topologies
        .iter()
        .map(|family| Topology::generate(family.config))
        .collect();
    let plan = matrix.plan(&topologies);
    // One session = the policy axis resolved once, reused by every
    // checkpoint step.
    let session = Executor::sequential().session(&plan);
    let mut cursor = plan.cursor::<CellAccumulator>();
    let mut steps = 0;
    while !session.run_until(&mut cursor, 64) {
        steps += 1;
        let persisted = cursor.encode();
        cursor = PlanCursor::decode(&persisted).expect("cursor survives a restart");
    }
    let resumed: Vec<_> = cursor
        .into_accumulators()
        .iter()
        .map(maxlength_rpki::bgpsim::Accumulator::finish)
        .collect();
    let straight: Vec<_> = report.cells.iter().map(|c| c.stats).collect();
    assert_eq!(resumed, straight);
    println!(
        "checkpointed re-run: {steps} stop/restart cycles, result bit-identical \
         to the straight-through grid"
    );

    println!(
        r#"
Take-aways (paper §4-§5, generalized):
  * the maxLength-gap prober matches the headline subprefix hijack
    against the loose ROA and gracefully demotes against the minimal
    one -- the ROA discipline, not ROV coverage, decides its ceiling;
  * the route leak posts identical numbers in all three ROA columns:
    origin validation cannot see a leak;
  * moving validation from a uniform half of the Internet to the top
    ISPs changes the minimal-ROA numbers substantially at the same
    head-count -- *where* ROV sits matters as much as how much."#
    );
}
