//! Quickstart: the paper's running example (BU's 168.122.0.0/16, AS 111)
//! in a few lines — how maxLength creates a hijack, and what fixes it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use maxlength_rpki::prelude::*;

fn main() {
    // AS 111 announces its /16 and one de-aggregated /24 (paper §3).
    let announced: Vec<RouteOrigin> = vec![
        "168.122.0.0/16 => AS111".parse().unwrap(),
        "168.122.225.0/24 => AS111".parse().unwrap(),
    ];
    let bgp: BgpTable = announced.iter().collect();

    // --- The convenient-but-dangerous ROA: maxLength 24 (§3). -----------
    let careless: VrpIndex = ["168.122.0.0/16-24 => AS111".parse::<Vrp>().unwrap()]
        .into_iter()
        .collect();

    // Both legitimate announcements are Valid...
    for route in &announced {
        assert_eq!(careless.validate(route), ValidationState::Valid);
    }
    // ...but so is the forged-origin subprefix hijack of §4:
    let hijack: RouteOrigin = "168.122.0.0/24 => AS111".parse().unwrap();
    println!(
        "non-minimal ROA: hijacker announcing \"168.122.0.0/24: AS666, AS111\" is {}",
        careless.validate(&hijack)
    );
    assert_eq!(careless.validate(&hijack), ValidationState::Valid);

    // Quantify the exposure: every authorized-but-unannounced prefix.
    let vrp: Vrp = "168.122.0.0/16-24 => AS111".parse().unwrap();
    let surface = maxlength_rpki::core::vulnerability::hijack_surface(&vrp, &bgp, 3);
    println!(
        "exposed prefixes: {} (e.g. {})",
        surface.unannounced_count, surface.examples[0]
    );

    // --- The fix: a minimal ROA (§5/§8). ---------------------------------
    let minimal_vrps = minimalize_vrps(&[vrp], &bgp);
    let minimal: VrpIndex = minimal_vrps.iter().copied().collect();
    println!(
        "minimal ROA authorizes exactly: {}",
        minimal_vrps
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for route in &announced {
        assert_eq!(minimal.validate(route), ValidationState::Valid);
    }
    println!(
        "minimal ROA: the same hijack announcement is now {}",
        minimal.validate(&hijack)
    );
    assert_eq!(minimal.validate(&hijack), ValidationState::Invalid);

    // --- And compress_roas keeps router load down (§7). ------------------
    let fig2: Vec<Vrp> = [
        "87.254.32.0/19 => AS31283",
        "87.254.32.0/20 => AS31283",
        "87.254.48.0/20 => AS31283",
        "87.254.32.0/21 => AS31283",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    let compressed = compress_roas(&fig2);
    println!(
        "compress_roas: {} PDUs -> {} PDUs, still minimal",
        fig2.len(),
        compressed.len()
    );
    assert_eq!(compressed.len(), 2);
}
