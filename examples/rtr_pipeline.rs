//! Figure 1, end to end: ROA files on disk → `scan_roas` → `compress_roas`
//! → rpki-rtr cache server → router client → route origin validation.
//!
//! This is the deployment story of §7.1: `compress_roas` slots into the
//! local cache's toolchain between validation and the router feed, with
//! no changes to routers.
//!
//! ```sh
//! cargo run --example rtr_pipeline
//! ```

use std::thread;

use maxlength_rpki::prelude::*;
use maxlength_rpki::roa::envelope::seal_roa;
use maxlength_rpki::roa::scan::scan_dir;
use maxlength_rpki::rtr::cache::CacheServer;
use maxlength_rpki::rtr::client::RouterClient;
use maxlength_rpki::rtr::server::TcpCacheServer;
use maxlength_rpki::rtr::transport::TcpTransport;

fn main() {
    // --- 1. A tiny RPKI repository on disk. -----------------------------
    let repo = std::env::temp_dir().join(format!("rtr-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&repo).expect("create repo dir");
    let roas = [
        Roa::new(
            Asn(31283),
            vec![
                RoaPrefix::exact("87.254.32.0/19".parse().unwrap()),
                RoaPrefix::exact("87.254.32.0/20".parse().unwrap()),
                RoaPrefix::exact("87.254.48.0/20".parse().unwrap()),
                RoaPrefix::exact("87.254.32.0/21".parse().unwrap()),
            ],
        )
        .unwrap(),
        Roa::new(
            Asn(111),
            vec![
                RoaPrefix::exact("168.122.0.0/16".parse().unwrap()),
                RoaPrefix::exact("168.122.225.0/24".parse().unwrap()),
            ],
        )
        .unwrap(),
    ];
    for (i, roa) in roas.iter().enumerate() {
        std::fs::write(repo.join(format!("{i}.roa")), seal_roa(roa)).expect("write roa");
    }

    // --- 2. The local cache validates and scans (scan_roas). -------------
    let scan = scan_dir(&repo).expect("scan repository");
    println!(
        "scan_roas: {} ROAs -> {} PDUs",
        scan.roas.len(),
        scan.vrps().len()
    );
    print!("{}", scan.to_scan_lines());

    // --- 3. compress_roas post-processes the PDU list (§7.1). ------------
    let compressed = compress_roas(&scan.vrps());
    println!(
        "\ncompress_roas: {} -> {} PDUs pushed to routers",
        scan.vrps().len(),
        compressed.len()
    );

    // --- 4. Serve the PDUs over rpki-rtr (RFC 8210). ---------------------
    let server = TcpCacheServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        CacheServer::new(2017, &compressed),
    )
    .expect("bind cache server");
    let handle = server.handle();
    let addr = handle.addr();
    println!("\nrpki-rtr cache listening on {addr}");
    let serving = thread::spawn(move || server.serve());

    // --- 5. A router synchronizes and validates BGP updates (RFC 6811). --
    let mut transport = TcpTransport::connect(addr).expect("connect");
    let mut router = RouterClient::new();
    router.synchronize(&mut transport).expect("synchronize");
    // The End of Data stamped the RFC 8210 §6 timers: the router now
    // reports how current its data is (Fresh / Stale / Expired).
    println!(
        "router synchronized: {} VRPs at serial {}, freshness {:?}",
        router.vrps().len(),
        router.serial(),
        router.freshness()
    );

    // Builder → freeze: the synchronized VRP set is read-only until the
    // next rtr delta, so the router validates against a frozen snapshot.
    let index: VrpIndex = router.vrps().iter().copied().collect();
    let frozen = index.freeze();
    let updates = [
        "87.254.32.0/20 => AS31283", // legitimate de-aggregate
        "168.122.0.0/16 => AS111",   // legitimate
        "168.122.0.0/24 => AS111",   // forged-origin subprefix hijack try
        "87.254.40.0/21 => AS31283", // the prefix §7 warns about
        "8.8.8.0/24 => AS15169",     // not in the RPKI
    ];
    println!("\nrouter validates incoming BGP updates (frozen snapshot):");
    for update in updates {
        let route: RouteOrigin = update.parse().unwrap();
        assert_eq!(frozen.validate(&route), index.validate(&route));
        println!("  {:<30} -> {}", update, frozen.validate(&route));
    }

    drop(transport);
    handle.shutdown();
    serving.join().expect("serve thread").expect("serve ok");
    std::fs::remove_dir_all(&repo).ok();
    println!("\npipeline complete: no router-side changes needed (§7.1).");
}
