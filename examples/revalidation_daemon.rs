//! A router's validation daemon: rpki-rtr deltas in, state changes out.
//!
//! Ties three pieces together the way a real deployment does (Figure 1):
//! the cache pushes Serial Notify when its ROA set changes; the router
//! pulls the delta over rpki-rtr; the `RevalidationEngine` revalidates
//! *only the affected routes* and reports each state transition — the
//! events that would trigger BGP route preference changes.
//!
//! ```sh
//! cargo run --example revalidation_daemon
//! ```

use maxlength_rpki::prelude::*;
use maxlength_rpki::rov::RevalidationEngine;
use maxlength_rpki::rtr::cache::CacheServer;
use maxlength_rpki::rtr::client::RouterClient;
use maxlength_rpki::rtr::pdu::{Flags, Pdu};

fn main() {
    // The router's BGP table (what its peers announced).
    let table: Vec<RouteOrigin> = [
        "168.122.0.0/16 => AS111",
        "168.122.225.0/24 => AS111",
        "168.122.0.0/24 => AS666", // a classic subprefix hijack attempt
        "168.122.0.0/24 => AS111", // a forged-origin subprefix hijack
        "10.0.0.0/8 => AS1",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();

    // The local cache starts with no ROAs; the router is synchronized.
    let mut cache = CacheServer::new(7, &[]);
    let mut router = RouterClient::new();
    for pdu in cache.handle(&Pdu::ResetQuery) {
        router.handle(&pdu).unwrap();
    }
    let mut engine = RevalidationEngine::new(table.iter().copied(), []);
    println!("initial states (no ROAs):");
    for route in &table {
        println!(
            "  {:<32} {}",
            route.to_string(),
            engine.state_of(route).unwrap()
        );
    }

    // BU registers its ROA; the cache pushes a notify; the router pulls
    // the delta and feeds it to the engine.
    let updates: [(&str, Vec<Vrp>); 3] = [
        (
            "BU registers ROA (168.122.0.0/16, AS 111)",
            vec!["168.122.0.0/16 => AS111".parse().unwrap()],
        ),
        (
            "BU 'conveniently' widens it to maxLength 24",
            vec!["168.122.0.0/16-24 => AS111".parse().unwrap()],
        ),
        (
            "BU reads the paper and goes minimal",
            vec![
                "168.122.0.0/16 => AS111".parse().unwrap(),
                "168.122.225.0/24 => AS111".parse().unwrap(),
            ],
        ),
    ];

    for (what, vrps) in updates {
        println!("\n== {what}");
        let notify = cache.update(&vrps);
        // The router reacts to the notify with a serial query; the delta
        // flows back as announce/withdraw PDUs.
        router.handle(&notify).unwrap();
        let mut announced = Vec::new();
        let mut withdrawn = Vec::new();
        for pdu in cache.handle(&router.query()) {
            if let Pdu::Prefix { flags, vrp } = &pdu {
                match flags {
                    Flags::Announce => announced.push(*vrp),
                    Flags::Withdraw => withdrawn.push(*vrp),
                }
            }
            router.handle(&pdu).unwrap();
        }
        println!(
            "   rtr delta: +{} -{} VRPs (serial {})",
            announced.len(),
            withdrawn.len(),
            router.serial()
        );
        let changes = engine.apply_delta(&announced, &withdrawn);
        if changes.is_empty() {
            println!("   no route changed state");
        }
        for c in &changes {
            println!("   {:<32} {} -> {}", c.route.to_string(), c.old, c.new);
        }
    }

    // The punchline, as state transitions: the forged-origin hijack went
    // NotFound -> Invalid -> Valid (under maxLength!) -> Invalid (minimal).
    let forged: RouteOrigin = "168.122.0.0/24 => AS111".parse().unwrap();
    let classic: RouteOrigin = "168.122.0.0/24 => AS666".parse().unwrap();
    assert_eq!(engine.state_of(&forged), Some(ValidationState::Invalid));
    assert_eq!(engine.state_of(&classic), Some(ValidationState::Invalid));
    println!(
        "\nfinal: forged-origin hijack is {}, classic hijack is {}",
        engine.state_of(&forged).unwrap(),
        engine.state_of(&classic).unwrap()
    );

    // Cross-check: the cache's frozen snapshot — the exact state it
    // serves at the current serial — agrees with the incrementally
    // maintained engine on every tracked route.
    let snapshot = cache.snapshot();
    for route in &table {
        assert_eq!(Some(snapshot.validate(route)), engine.state_of(route));
    }
    let summary = snapshot.validate_table_par(&table);
    println!("cache snapshot cross-check: {summary}");
}
