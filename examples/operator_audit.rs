//! Operator audit: the §8 recommendations as a tool.
//!
//! Given an operator's ROAs and a view of what their ASes actually
//! announce in BGP, this example (1) flags every vulnerable maxLength
//! use with concrete hijackable prefixes, (2) proposes the minimal-ROA
//! replacement, and (3) shows the compressed PDU feed so the router-load
//! cost of going minimal stays bounded (§7).
//!
//! ```sh
//! cargo run --example operator_audit
//! ```

use maxlength_rpki::core::lint::LintReport;
use maxlength_rpki::core::vulnerability::hijack_surface;
use maxlength_rpki::core::wizard::{propose_roa, review_request};
use maxlength_rpki::prelude::*;

fn main() {
    // The operator's BGP announcements (say, from a looking glass).
    let bgp: BgpTable = [
        "203.0.112.0/20 => AS64500",
        "203.0.112.0/22 => AS64500",
        "203.0.116.0/22 => AS64500",
        "198.51.100.0/24 => AS64500",
        "2001:db8::/32 => AS64501",
        "2001:db8:4000::/34 => AS64501",
    ]
    .iter()
    .map(|s| s.parse::<RouteOrigin>().unwrap())
    .collect();

    // Their current ROAs, configured "conveniently" with maxLength.
    let roas = vec![
        Roa::new(
            Asn(64500),
            vec![
                RoaPrefix::with_max_len("203.0.112.0/20".parse().unwrap(), 24),
                RoaPrefix::exact("198.51.100.0/24".parse().unwrap()),
            ],
        )
        .unwrap(),
        Roa::new(
            Asn(64501),
            vec![RoaPrefix::with_max_len(
                "2001:db8::/32".parse().unwrap(),
                48,
            )],
        )
        .unwrap(),
    ];

    // --- 1. Audit. --------------------------------------------------------
    let vrps: Vec<Vrp> = roas.iter().flat_map(|r| r.vrps()).collect();
    let census = MaxLengthCensus::analyze(&vrps, &bgp);
    println!(
        "audit: {} tuples, {} using maxLength, {} VULNERABLE to forged-origin \
         subprefix hijacks\n",
        census.total, census.max_len_using, census.vulnerable
    );
    for vrp in &vrps {
        let surface = hijack_surface(vrp, &bgp, 3);
        if surface.unannounced_count > 0 {
            println!("  [!] {vrp}");
            println!(
                "      authorizes {} unannounced prefixes a hijacker can claim, e.g.:",
                surface.unannounced_count
            );
            for example in &surface.examples {
                println!(
                    "        {example} (announce \"{example}: <attacker>, {}\")",
                    vrp.asn
                );
            }
        } else {
            println!("  [ok] {vrp} (minimal)");
        }
    }

    // --- 1b. The same audit as machine-checkable lint findings (RFC 9319
    // style; `analyze <snapshot>` runs this over whole datasets). ----------
    let lint = LintReport::lint(&roas, &bgp);
    println!("\nlint findings:");
    print!("{}", lint.render());
    assert!(lint.has_critical());

    // --- 2. Propose minimal ROAs (§8: same number of ROA objects). --------
    println!("\nproposed minimal ROAs:");
    let minimal = minimalize_roas(&roas, &bgp);
    for m in &minimal {
        match m.as_converted() {
            Some(roa) => println!("  {roa}"),
            None => println!("  (withdraw: validates nothing announced)"),
        }
    }

    // --- 3. The PDU feed, before and after compress_roas (§7). ------------
    let minimal_vrps: Vec<Vrp> = minimal
        .iter()
        .filter_map(|m| m.as_converted())
        .flat_map(|r| r.vrps())
        .collect();
    let compressed = compress_roas(&minimal_vrps);
    println!(
        "\nrouter feed: {} PDUs today -> {} minimal -> {} after compress_roas",
        vrps.len(),
        minimal_vrps.len(),
        compressed.len()
    );
    for vrp in &compressed {
        println!("  {vrp}");
    }

    // The hijacks that the change defeats:
    let before: VrpIndex = vrps.iter().copied().collect();
    let after: VrpIndex = compressed.iter().copied().collect();
    // --- 4. What the §8 RIR wizard would have done from the start. --------
    println!("\nwhat an RIR wizard would propose for AS64500:");
    let proposal = propose_roa(Asn(64500), &bgp);
    println!("  {}", proposal.roa.as_ref().unwrap());
    println!("\nand what it warns when typing the old request (203.0.112.0/20-24):");
    for w in review_request(
        "203.0.112.0/20".parse().unwrap(),
        Some(24),
        Asn(64500),
        &bgp,
    ) {
        println!("  {w}");
    }

    let hijack: RouteOrigin = "203.0.120.0/24 => AS64500".parse().unwrap();
    println!(
        "\nforged-origin hijack of 203.0.120.0/24: {} before, {} after",
        before.validate(&hijack),
        after.validate(&hijack)
    );
    assert_eq!(after.validate(&hijack), ValidationState::Invalid);
}
