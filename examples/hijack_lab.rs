//! Hijack laboratory: stage the paper's §4 attack on a synthetic
//! Internet and watch the traffic move.
//!
//! One victim, one attacker, a 1,500-AS topology with universal route
//! origin validation — and three ROA configurations showing why
//! maxLength is considered harmful.
//!
//! ```sh
//! cargo run --release --example hijack_lab
//! ```

use maxlength_rpki::bgpsim::attack::{run_attack, AttackKind, AttackSetup};
use maxlength_rpki::bgpsim::topology::{Topology, TopologyConfig};
use maxlength_rpki::prelude::*;

fn main() {
    let topology = Topology::generate(TopologyConfig {
        n: 1500,
        tier1: 8,
        ..TopologyConfig::default()
    });
    let stubs = topology.stubs();
    let victim = stubs[0];
    let attacker = stubs[stubs.len() / 2];
    let victim_asn = topology.asn(victim);
    println!(
        "topology: {} ASes ({} stubs); victim {} at index {victim}, attacker {} at index {attacker}",
        topology.len(),
        stubs.len(),
        victim_asn,
        topology.asn(attacker),
    );

    let p: Prefix = "168.122.0.0/16".parse().unwrap();
    let q: Prefix = "168.122.0.0/24".parse().unwrap();
    let policies = vec![RovPolicy::DropInvalid; topology.len()];

    let configs: [(&str, VrpIndex); 3] = [
        ("no ROA at all", VrpIndex::new()),
        (
            "non-minimal ROA (168.122.0.0/16-24)",
            [Vrp::new(p, 24, victim_asn)].into_iter().collect(),
        ),
        (
            "minimal ROA (168.122.0.0/16 exact)",
            [Vrp::exact(p, victim_asn)].into_iter().collect(),
        ),
    ];

    for (name, vrps) in &configs {
        println!("\n=== victim publishes: {name} ===");
        for kind in AttackKind::ALL {
            let outcome = run_attack(
                kind,
                &AttackSetup {
                    topology: &topology,
                    victim,
                    attacker,
                    victim_prefix: p,
                    sub_prefix: q,
                    vrps,
                    policies: &policies,
                },
            );
            println!(
                "  {:<36} attacker captures {:>5.1}% \
                 ({} ASes deceived, {} on the legitimate route)",
                kind.label(),
                outcome.interception_fraction() * 100.0,
                outcome.intercepted,
                outcome.legitimate,
            );
        }
    }

    println!(
        r#"
Take-aways (paper §4-§5):
  * with the maxLength ROA, the forged-origin subprefix hijack is VALID
    and captures 100% of traffic for 168.122.0.0/24 — identical damage to
    a pre-RPKI subprefix hijack;
  * the minimal ROA forces the attacker to the prefix-grained
    forged-origin hijack, where longest-prefix match no longer helps and
    most ASes keep routing to the victim."#
    );
}
