//! The live cache, end to end: a churning RPKI pushed through a real
//! rpki-rtr session into incremental route revalidation.
//!
//! The paper's §6 overhead story plays out over time — caches re-validate
//! the RPKI every few minutes, ROAs come and go, and each delta makes
//! routers revalidate the affected routes. This walkthrough wires all
//! three stages together:
//!
//! 1. a [`ChurnGenerator`] turns a generated world's VRP set into a
//!    deterministic timeline of epochs (issuance, expiry, maxLength
//!    edits, ASN transfers, flaps);
//! 2. a [`LiveSession`] replays each epoch as real RFC 8210 PDUs:
//!    `update_delta` on the cache, Serial Notify down the wire, Serial
//!    Query back, delta response — with a Cache Reset recovery when the
//!    router falls behind the history window;
//! 3. a [`SnapshotChainEngine`] revalidates only the routes each delta
//!    covers, refreezing its base snapshot as the overlay grows.
//!
//! ```sh
//! cargo run --release --example live_cache
//! ```

use maxlength_rpki::prelude::*;

fn main() {
    // --- 1. A small world and a churn timeline over its final VRPs. -----
    let world = World::generate(GeneratorConfig {
        scale: 0.02,
        ..GeneratorConfig::default()
    });
    let snap = world.snapshot(7);
    let timeline = ChurnGenerator::new(
        snap.vrps(),
        ChurnConfig {
            epochs: 12,
            events_per_epoch: 40,
            profile: ChurnProfile::Mixed,
            ..ChurnConfig::default()
        },
    )
    .generate();
    println!(
        "world: {} routes, {} VRPs; timeline: {} epochs, {} delta records",
        snap.routes.len(),
        timeline.initial.len(),
        timeline.epochs.len(),
        timeline.total_events()
    );

    // --- 2. Wire up the session and the incremental engine. -------------
    let mut session = LiveSession::new(2017, &timeline.initial);
    session.synchronize().expect("initial full sync");
    let mut engine = SnapshotChainEngine::new(
        snap.routes.iter().copied(),
        timeline.initial.iter().copied(),
        ChainConfig {
            refreeze_after: 256,
        },
    );

    // --- 3. Replay the timeline through real PDUs. -----------------------
    println!("\nepoch  +vrp  -vrp  wire-pdus  changed routes");
    for epoch in &timeline.epochs {
        let stats = session
            .apply_epoch(&epoch.announced, &epoch.withdrawn)
            .expect("epoch sync");
        let report = engine.apply_epoch(&epoch.announced, &epoch.withdrawn);
        println!(
            "{:>5}  {:>4}  {:>4}  {:>9}  {:>5}{}",
            epoch.index,
            epoch.announced.len(),
            epoch.withdrawn.len(),
            stats.pdus,
            report.changes.len(),
            if report.refroze {
                "   [base refrozen]"
            } else {
                ""
            }
        );
    }

    // --- 4. The differential check: three views, one truth. -------------
    // The router's synchronized set, the timeline's arithmetic, and the
    // chain engine's logical set must all be the same world ...
    let router_set: Vec<Vrp> = session.router().vrps().iter().copied().collect();
    assert_eq!(router_set, timeline.final_vrps());
    assert_eq!(router_set, engine.current_vrps());
    // ... and batch-revalidating that world from scratch reproduces every
    // incrementally tracked state.
    let fresh: VrpIndex = router_set.iter().copied().collect();
    let frozen = fresh.freeze();
    for (route, state) in engine.states() {
        assert_eq!(state, frozen.validate(&route), "{route}");
    }

    let s = engine.summary();
    println!(
        "\nafter {} epochs: {} state changes across {} routes \
         ({} refreezes, {} snapshots retired)",
        s.epochs,
        s.state_changes,
        engine.route_count(),
        s.refreezes,
        engine.chain_len()
    );
    println!(
        "router serial {} == cache serial {}; incremental states verified \
         against batch revalidation ✓",
        session.router().serial(),
        session.cache().serial()
    );
}
