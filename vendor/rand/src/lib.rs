//! Vendored, offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the **subset of the rand 0.8 API it actually uses**: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_bool`, `gen_range`), [`seq::SliceRandom`]
//! (`choose`, `shuffle`) and [`seq::index::sample`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — high quality and
//! deterministic in the seed, which is all the workspace requires (every
//! consumer only ever compares runs against other runs of this same
//! implementation, never against upstream rand's stream).

#![forbid(unsafe_code)]

/// A random number generator core: the single primitive everything else
/// derives from.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types drawable uniformly from a bounded interval.
pub trait SampleUniform: Copy {
    /// A uniform draw from `lo..hi` (`inclusive` widens to `lo..=hi`).
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (uniform_u64(rng, span + 1) as $t)
                } else {
                    assert!(lo < hi, "empty range in gen_range");
                    lo + (uniform_u64(rng, (hi - lo) as u64) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges usable with [`Rng::gen_range`]. Exactly one blanket impl per
/// range shape, so `gen_range(1..=6)` infers the element type from
/// context the way upstream rand does.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// Uniform draw in `0..span` without modulo bias (rejection sampling).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience extension methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// A value of any [`Standard`]-drawable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::draw(self) < p
    }

    /// A value uniformly distributed in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers: shuffling, choosing, index sampling.

    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }

    pub mod index {
        //! Sampling of distinct indices.

        use super::super::{Rng, RngCore};

        /// The result of [`sample`]: distinct indices in `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices from `0..length`
        /// (Floyd's algorithm; order is randomized).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} of {length} indices"
            );
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = rng.gen_range(0..=j);
                if let Some(at) = chosen.iter().position(|&c| c == t) {
                    // t already chosen: j is guaranteed fresh; insert after
                    // the collision point to keep the order randomized.
                    chosen.insert(at + 1, j);
                } else {
                    chosen.push(t);
                }
            }
            IndexVec(chosen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index::sample, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
        }
        // Every value of a small range is reachable.
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_covers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let idx = sample(&mut rng, 30, 10).into_vec();
            assert_eq!(idx.len(), 10);
            assert!(idx.iter().all(|&i| i < 30));
            let mut dedup = idx.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 10, "duplicate index sampled");
        }
        // Full sample is a permutation.
        let mut all = sample(&mut rng, 8, 8).into_vec();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }
}
