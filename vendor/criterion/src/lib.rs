//! Vendored, offline stand-in for `criterion`.
//!
//! A minimal timing harness exposing the subset of the criterion 0.5 API
//! the workspace's benches use: [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, [`BenchmarkId`], [`Throughput`], [`black_box`], and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up briefly, then timed over
//! enough iterations to fill a fixed measurement window; mean
//! time/iteration and derived throughput are printed. No statistics,
//! plots, or saved baselines — run-to-run comparison is by eye, which is
//! all an offline environment supports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batch setup output is handed to the routine in
/// [`Bencher::iter_batched`]. The shim treats all variants identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Units for reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by `iter*`.
    mean_ns: f64,
    measurement: Duration,
}

impl Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter*` call
    /// (0.0 before any run). Lets benches export machine-readable
    /// records alongside the printed report.
    pub fn mean_ns(&self) -> f64 {
        self.mean_ns
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fills
        // the measurement window.
        let mut n: u64 = 1;
        let calib = loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(10) || n >= 1 << 30 {
                break dt.as_secs_f64() / n as f64;
            }
            n *= 8;
        };
        let total = (self.measurement.as_secs_f64() / calib.max(1e-9)).clamp(1.0, 1e9) as u64;
        let t = Instant::now();
        for _ in 0..total {
            black_box(routine());
        }
        self.mean_ns = t.elapsed().as_secs_f64() * 1e9 / total as f64;
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement;
        let mut spent = Duration::ZERO;
        let mut iters: u64 = 0;
        while Instant::now() < deadline || iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = spent.as_secs_f64() * 1e9 / iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mean_ns: 0.0,
            measurement: self.criterion.measurement,
        };
        f(&mut bencher);
        report(&self.name, &id.id, bencher.mean_ns, self.throughput);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mean_ns: 0.0,
            measurement: self.criterion.measurement,
        };
        f(&mut bencher, input);
        report(&self.name, &id.id, bencher.mean_ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let time = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.2} MiB/s)",
                n as f64 / mean_ns * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{group}/{id:<42} {time:>12}/iter{rate}");
}

/// The benchmark driver.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            // Short by design: CI smoke-runs every bench.
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Begins a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            mean_ns: 0.0,
            measurement: self.measurement,
        };
        f(&mut bencher);
        report("bench", name, bencher.mean_ns, None);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_mean() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        let mut observed = 0.0;
        group.bench_function(BenchmarkId::new("spin", 10), |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            observed = b.mean_ns;
        });
        group.finish();
        assert!(observed > 0.0);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim");
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 64],
                |v| v.into_iter().sum::<u32>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 5).id, "a/5");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
