//! Vendored, offline stand-in for `crossbeam`, backed by the standard
//! library: [`thread::scope`] over `std::thread::scope` and
//! [`channel`] over `std::sync::mpsc`.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with the crossbeam calling convention
    //! (`scope(|s| ...)` returning a `Result`, `s.spawn(|_| ...)`).

    use std::any::Any;

    /// A scope handle; borrowed data outliving the scope may be used by
    /// spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle awaiting one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if it
        /// panicked).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument mirrors
        /// crossbeam's nested-scope parameter; callers in this workspace
        /// ignore it (`|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before this returns. The `Result`
    /// mirrors crossbeam's signature; with every child join handled by
    /// the caller it is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! MPSC channels with the crossbeam names, over `std::sync::mpsc`.

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u32, 2, 3, 4];
        let total: u32 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_round_trip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
