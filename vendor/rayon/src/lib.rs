//! Vendored, offline stand-in for `rayon`.
//!
//! Provides the subset of the rayon API this workspace's batch paths use
//! — `par_iter()` on slices, `into_par_iter()` on ranges and vectors,
//! `map` / `sum` / `collect` / `for_each` — executed on `std::thread`
//! scoped workers with **order-preserving, statically chunked** joins.
//!
//! Two properties the workspace's determinism contracts rely on:
//!
//! * `collect::<Vec<_>>` returns results in input order, exactly as
//!   upstream rayon's indexed collect does;
//! * `sum()` folds the per-element values in input order (partial sums
//!   are computed per chunk and then folded left-to-right), so any
//!   associative `Sum` — including the integer `ValidationSummary` —
//!   reduces bit-identically to the sequential fold.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like upstream), else
//! available parallelism.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The number of worker threads parallel iterators fan out over:
/// `RAYON_NUM_THREADS` if set and positive (surrounding whitespace
/// tolerated, matching the harness knob parsers), else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs `f` over every index chunk of `0..len` on scoped workers,
/// returning the chunk results in chunk order.
fn run_chunked<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return if len == 0 {
            Vec::new()
        } else {
            vec![f(0..len)]
        };
    }
    let chunk = len.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(len)..((t + 1) * chunk).min(len))
        .filter(|r| !r.is_empty())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges.into_iter().map(|r| scope.spawn(|| f(r))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// Sources that can drive a parallel pipeline: indexed, splittable input.
pub trait ParallelSource: Sized + Sync {
    /// The element type produced.
    type Item: Send;

    /// Number of elements.
    fn par_len(&self) -> usize;

    /// The element at `index` (each index visited exactly once).
    fn par_get(&self, index: usize) -> Self::Item;
}

/// Source over a borrowed slice (public only as an associated-type
/// building block; name it never).
pub struct SliceSource<'a, T>(&'a [T]);

impl<'a, T: Sync> ParallelSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn par_get(&self, index: usize) -> &'a T {
        &self.0[index]
    }
}

/// Source over an index range (public only as an associated-type
/// building block; name it never).
pub struct RangeSource(Range<usize>);

impl ParallelSource for RangeSource {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn par_get(&self, index: usize) -> usize {
        self.0.start + index
    }
}

/// A parallel iterator: a source plus a per-element transform.
pub struct ParIter<S, F> {
    source: S,
    transform: F,
}

/// Types a parallel iterator can `collect()` into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results in input order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Vec<T> {
        v
    }
}

impl<S, F, R> ParIter<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    /// Maps every element through `f`.
    pub fn map<G, Q>(self, f: G) -> ParIter<S, impl Fn(S::Item) -> Q + Sync>
    where
        G: Fn(R) -> Q + Sync,
        Q: Send,
    {
        let prev = self.transform;
        ParIter {
            source: self.source,
            transform: move |item| f(prev(item)),
        }
    }

    /// Runs the pipeline, returning results in input order.
    fn run(self) -> Vec<R> {
        let len = self.source.par_len();
        let source = &self.source;
        let transform = &self.transform;
        run_chunked(len, |range| {
            range
                .map(|i| transform(source.par_get(i)))
                .collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Collects results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(self.run())
    }

    /// Sums the results. Per-chunk partial sums are folded in chunk
    /// order, so associative-and-commutative `Sum` types (counters,
    /// integers) reduce identically to the sequential fold.
    pub fn sum<T>(self) -> T
    where
        T: std::iter::Sum<R> + std::iter::Sum<T> + Send,
    {
        let len = self.source.par_len();
        let source = &self.source;
        let transform = &self.transform;
        run_chunked(len, |range| {
            range.map(|i| transform(source.par_get(i))).sum::<T>()
        })
        .into_iter()
        .sum()
    }

    /// Runs `f` on every result (effects only).
    pub fn for_each<G>(self, f: G)
    where
        G: Fn(R) + Sync,
    {
        let len = self.source.par_len();
        let source = &self.source;
        let transform = &self.transform;
        run_chunked(len, |range| {
            for i in range {
                f(transform(source.par_get(i)));
            }
        });
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.source.par_len()
    }

    /// `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.source.par_len() == 0
    }
}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// The iterator type (opaque in practice).
    type Iter;

    /// A parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>, fn(&'a T) -> &'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource(self),
            transform: |x| x,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>, fn(&'a T) -> &'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

/// Consuming conversion into a parallel iterator (`.into_par_iter()`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type (opaque in practice).
    type Iter;

    /// A parallel iterator consuming `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParIter<RangeSource, fn(usize) -> usize>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: RangeSource(self),
            transform: |x| x,
        }
    }
}

pub mod prelude {
    //! The traits parallel call sites need in scope.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<u64> = (0..100_000).collect();
        let par: u64 = v.par_iter().map(|x| x % 7).sum();
        let seq: u64 = v.iter().map(|x| x % 7).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[31], 961);
        assert_eq!(squares.len(), 1000);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let sum: u32 = (0..0).into_par_iter().map(|_| 1u32).sum();
        assert_eq!(sum, 0);
    }

    #[test]
    fn thread_env_respected() {
        // With any RAYON_NUM_THREADS, results must be identical.
        let v: Vec<u64> = (0..5000).collect();
        let reference: Vec<u64> = v.iter().map(|x| x + 1).collect();
        let got: Vec<u64> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(got, reference);
        assert!(super::current_num_threads() >= 1);
    }
}
