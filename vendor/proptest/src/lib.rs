//! Vendored, offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`, integer
//! range and tuple strategies, `any::<T>()`, `Just`, collection
//! strategies (`vec` / `btree_map` / `btree_set`), `prop::option::of`,
//! `prop::sample::Index`, weighted [`prop_oneof!`], the [`proptest!`]
//! test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberate for an offline shim:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   via the assertion message (all strategies used here have `Debug`
//!   inputs in scope at the call site).
//! * **String strategies ignore the regex** — a `&str` used as a
//!   strategy yields random short printable-ASCII strings, which is what
//!   every call site in this workspace (opaque text payloads) needs.
//! * Generation is deterministic per test function (seeded from the
//!   test's name), so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Run-loop configuration.

    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            // Honor the upstream `PROPTEST_CASES` env knob so CI can
            // raise the case count without touching test sources. An
            // explicit `with_cases` in a test block still wins (it never
            // calls `default`).
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.trim().parse::<u32>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(256);
            Config { cases }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// The RNG driving generation: xoshiro256** seeded per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Derives a generator from a seed (SplitMix64 expansion).
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Seeds deterministically from a test name (FNV-1a).
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            TestRng::seed_from_u64(h)
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `0..span` (rejection sampling, `span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            if span.is_power_of_two() {
                return self.next_u64() & (span - 1);
            }
            let zone = u64::MAX - (u64::MAX % span) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, for boxed strategies.
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// A strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of type-erased strategies
    /// (built by [`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must sum to a positive value.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut roll = rng.below(self.total);
            for (w, s) in &self.arms {
                if roll < *w as u64 {
                    return s.generate(rng);
                }
                roll -= *w as u64;
            }
            unreachable!("weights covered the roll")
        }
    }

    // --- integer / primitive range strategies ------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    // u128 ranges need widened arithmetic; implement separately.
    impl Strategy for core::ops::Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            self.start + wide_below(rng, span)
        }
    }

    impl Strategy for core::ops::RangeInclusive<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            if lo == 0 && hi == u128::MAX {
                return full_u128(rng);
            }
            lo + wide_below(rng, hi - lo + 1)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let unit = (rng.next_u64() >> 10) as f64 * (1.0 / ((1u64 << 54) - 1) as f64);
            lo + unit * (hi - lo)
        }
    }

    fn full_u128(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }

    fn wide_below(rng: &mut TestRng, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span <= u64::MAX as u128 {
            return rng.below(span as u64) as u128;
        }
        let zone = u128::MAX - (u128::MAX % span) - 1;
        loop {
            let v = full_u128(rng);
            if v <= zone {
                return v % span;
            }
        }
    }

    // --- tuples of strategies ---------------------------------------------

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    // --- string strategies -------------------------------------------------

    /// A `&str` used as a strategy yields short printable-ASCII strings.
    /// The regex itself is ignored (see the crate docs).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(33) as usize;
            (0..len)
                .map(|_| (0x20 + rng.below(0x5f) as u8) as char)
                .collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generates one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec`, `btree_map`, `btree_set`.

    use std::collections::{BTreeMap, BTreeSet};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes accepted by collection strategies: an exact count or a
    /// (half-open / inclusive) range.
    pub trait SizeRange: Clone {
        /// Draws a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeMap`.
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Like upstream: draw up to `size` entries; key collisions
            // collapse, so the result may be smaller.
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// A map of roughly `size` entries (key collisions collapse).
    pub fn btree_map<K, V, R>(key: K, value: V, size: R) -> BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// Strategy for `BTreeSet`.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A set of roughly `size` elements (collisions collapse).
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod option {
    //! `prop::option::of`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Upstream defaults to ~75% Some.
            if rng.below(4) < 3 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` about 75% of the time, `None` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod sample {
    //! `prop::sample::Index`.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose size is unknown at generation
    /// time; resolved against a length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a collection of `len` elements
        /// (`len` must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! Everything property tests import with `use proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` module hierarchy.
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Builds a (possibly weighted) union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@run $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let run = move || { $body };
                // A panic in one case reports which case number failed.
                let _ = case;
                run();
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 5u8..10, b in 3u32..=7, c in 0u128..=u128::MAX) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((3..=7).contains(&b));
            let _ = c;
        }

        #[test]
        fn map_and_tuples(x in arb_even(), pair in (0u8..4, any::<bool>())) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u8..255, 3..6),
            exact in prop::collection::vec(any::<u32>(), 7usize),
            m in prop::collection::btree_map(0u8..50, any::<u32>(), 0..10),
            s in prop::collection::btree_set(0u16..100, 1..5),
        ) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 7);
            prop_assert!(m.len() < 10);
            prop_assert!(!s.is_empty() || s.is_empty());
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn option_and_index(o in prop::option::of(0u8..5), at in any::<prop::sample::Index>()) {
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
            prop_assert!(at.index(10) < 10);
        }

        #[test]
        fn string_strategy_is_short_ascii(s in ".*{0,32}") {
            prop_assert!(s.len() <= 32);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_cases_respected(_x in any::<u64>()) {
            // Runs without exhausting time: 16 cases only.
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("same-name");
        let mut b = crate::test_runner::TestRng::for_test("same-name");
        let strat = prop::collection::vec(0u32..100, 0..20);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
