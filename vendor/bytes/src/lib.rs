//! Vendored, offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the bytes 1.x API the rtr stack uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with
//! big-endian integer accessors. Unlike upstream, [`Bytes`] is a plain
//! owned buffer (no reference-counted sharing) — `clone` copies, which is
//! semantically identical and irrelevant at rtr PDU sizes.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes(Vec::new())
    }

    /// Wraps a static slice (copied; upstream borrows, observably the
    /// same).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes(data.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(data.to_vec())
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.0 {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Removes and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Resizes the buffer in place, filling any new tail with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.0.resize(new_len, value);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes(self.0.clone()).fmt(f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut(v)
    }
}

/// Sequential big-endian reads from a buffer.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let v = u128::from_be_bytes(self.chunk()[..16].try_into().expect("16 bytes"));
        self.advance(16);
        v
    }

    /// Copies `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential big-endian writes into a buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u128(7);
        let frozen = buf.freeze();
        let mut view: &[u8] = &frozen;
        assert_eq!(view.remaining(), 1 + 2 + 4 + 16);
        assert_eq!(view.get_u8(), 0xAB);
        assert_eq!(view.get_u16(), 0x1234);
        assert_eq!(view.get_u32(), 0xDEAD_BEEF);
        assert_eq!(view.get_u128(), 7);
        assert_eq!(view.remaining(), 0);
    }

    #[test]
    fn split_to_takes_prefix() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"hello world");
        let head = buf.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&buf[..], b" world");
    }

    #[test]
    fn bytes_constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"abc")[..], b"abc");
        assert_eq!(Bytes::copy_from_slice(b"xy").len(), 2);
        assert_eq!(&Bytes::from(vec![1u8, 2])[..], &[1, 2]);
    }

    #[test]
    fn advance_and_copy() {
        let data = [1u8, 2, 3, 4, 5];
        let mut view: &[u8] = &data;
        view.advance(2);
        let mut out = [0u8; 2];
        view.copy_to_slice(&mut out);
        assert_eq!(out, [3, 4]);
        assert_eq!(view.remaining(), 1);
    }
}
