//! Vendored, offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the subset the workspace uses: [`Mutex`] and [`RwLock`] with
//! non-poisoning `lock`/`read`/`write` (a poisoned std lock is recovered,
//! matching parking_lot's no-poisoning semantics).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed, no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning — the poisoned state is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (std-backed, no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
