//! # maxlength-rpki
//!
//! A full reproduction of **"MaxLength Considered Harmful to the RPKI"**
//! (Gilad, Sagga, Goldberg — CoNEXT 2017) as a Rust workspace: the
//! `compress_roas` algorithm, the maxLength vulnerability analysis, ROA
//! minimalization, the full-deployment bounds, a calibrated synthetic
//! dataset generator, an AS-level BGP attack simulator, and an
//! RPKI-to-Router (RFC 6810/8210) protocol stack.
//!
//! This crate is a facade re-exporting the workspace's public API under
//! one roof:
//!
//! * [`prefix`] — IP prefix types and trie navigation,
//! * [`trie`] — the radix trie powering all indexes,
//! * [`roa`] — ROA objects, DER codec, `scan_roas`,
//! * [`rov`] — RFC 6811 route origin validation,
//! * [`core`] — `compress_roas`, minimalization, census, Table 1/Figure 3,
//! * [`bgpsim`] — BGP propagation, pluggable attacker strategies, ROV
//!   deployment models, and the attack scenario matrix,
//! * [`rtr`] — the RPKI-to-Router protocol,
//! * [`datasets`] — the calibrated snapshot generator.
//!
//! ## Quickstart
//!
//! ```
//! use maxlength_rpki::prelude::*;
//!
//! // The paper's §7 example: a minimal ROA without maxLength...
//! let pdus: Vec<Vrp> = [
//!     "87.254.32.0/19 => AS31283",
//!     "87.254.32.0/20 => AS31283",
//!     "87.254.48.0/20 => AS31283",
//!     "87.254.32.0/21 => AS31283",
//! ]
//! .iter()
//! .map(|s| s.parse().unwrap())
//! .collect();
//!
//! // ...compressed to two PDUs without losing minimality (Figure 2).
//! let compressed = compress_roas(&pdus);
//! assert_eq!(compressed.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bgpsim;
pub use maxlength_core as core;
pub use rpki_datasets as datasets;
pub use rpki_prefix as prefix;
pub use rpki_roa as roa;
pub use rpki_rov as rov;
pub use rpki_rtr as rtr;
pub use rpki_trie as trie;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use bgpsim::{
        AttackerStrategy, DeploymentModel, MatrixReport, ScenarioMatrix, TopologyFamily,
    };
    pub use maxlength_core::compress::{compress_roas, compress_roas_full};
    pub use maxlength_core::minimal::{minimalize_roas, minimalize_vrps};
    pub use maxlength_core::scenarios::{Scenario, Table1};
    pub use maxlength_core::vulnerability::{hijack_surface, MaxLengthCensus};
    pub use maxlength_core::BgpTable;
    pub use rpki_datasets::{
        ChurnConfig, ChurnGenerator, ChurnProfile, ChurnTimeline, DatasetSnapshot, GeneratorConfig,
        World,
    };
    pub use rpki_prefix::{Afi, Prefix, Prefix4, Prefix6};
    pub use rpki_roa::{Asn, Roa, RoaPrefix, RouteOrigin, Vrp};
    pub use rpki_rov::{
        ChainConfig, FrozenVrpIndex, RovPolicy, SnapshotChainEngine, ValidationState,
        ValidationSummary, VrpIndex,
    };
    pub use rpki_rtr::LiveSession;
}
