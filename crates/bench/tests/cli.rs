//! End-to-end tests of the harness binaries themselves: generate a
//! dataset on disk, analyze it, and check the figure binaries' output
//! shape — the same commands EXPERIMENTS.md documents.

use std::path::PathBuf;
use std::process::Command;

fn bin(name: &str) -> Command {
    Command::new(env!("CARGO_MANIFEST_DIR").to_string() + "/../../target/debug/" + name)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlcli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn gen_then_analyze_round_trip() {
    let dir = tmp("gen");
    let out = bin("gen_dataset")
        .args([dir.to_str().unwrap(), "0.004", "123"])
        .output()
        .expect("run gen_dataset");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let listing: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(listing.len(), 8, "one file per week");

    let snapshot = dir.join("week-7-6-1.txt");
    let out = bin("analyze")
        .arg(snapshot.to_str().unwrap())
        .output()
        .expect("run analyze");
    // The generated world contains vulnerable tuples: exit code 3.
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Today (compressed)"));
    assert!(stdout.contains("ML-FORGED-ORIGIN"));
    assert!(stdout.contains("vulnerable"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_garbage_file() {
    let dir = tmp("garbage");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.txt");
    std::fs::write(&path, "not a dataset\n").unwrap();
    let out = bin("analyze").arg(path.to_str().unwrap()).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure2_asserts_and_prints() {
    let out = bin("figure2").output().expect("run figure2");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("87.254.32.0/19-20 => AS31283"));
    assert!(stdout.contains("authorized route sets identical: true"));
}

#[test]
fn table1_small_scale_runs() {
    let out = bin("table1")
        .env("MAXLENGTH_SCALE", "0.003")
        .output()
        .expect("run table1");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for label in [
        "Today",
        "Full deployment, lower bound (max permissive ROAs)",
    ] {
        assert!(stdout.contains(label), "missing row {label}");
    }
}
