//! Shared helpers for the benchmark/reproduction harness.
pub mod harness;
