//! Regenerates the §4/§5 attack analysis: mean traffic interception for
//! every (attack, ROA configuration) pair, on a synthetic AS topology
//! under full and partial route-origin-validation adoption.
//!
//! Knobs: `MAXLENGTH_TOPOLOGY` (topology size), `MAXLENGTH_TRIALS`
//! (attacker/victim pairs per cell), `MAXLENGTH_BENCH_JSON` (append
//! machine-readable timing records), `MAXLENGTH_TOPO_N` (AS count for
//! the internet-scale memory diagnostic printed at startup).

use bgpsim::experiment::AttackExperiment;
use bgpsim::topology::TopologyConfig;
use rpki_bench::harness::{print_memory_diagnostics, record_bench_json, usize_from_env};

fn main() {
    let n = usize_from_env("MAXLENGTH_TOPOLOGY", 2000);
    let trials = usize_from_env("MAXLENGTH_TRIALS", 30);
    print_memory_diagnostics();

    for rov_fraction in [1.0, 0.5] {
        let t0 = std::time::Instant::now();
        // Per-trial seed derivation makes this bit-identical to `.run()`.
        let (report, stats) = AttackExperiment {
            topology: TopologyConfig {
                n,
                ..TopologyConfig::default()
            },
            trials,
            rov_fraction,
            seed: 99,
        }
        .run_par_with_stats();
        record_bench_json(
            &format!("attacks/experiment/rov-{rov_fraction}"),
            n as f64,
            t0.elapsed().as_nanos() as f64,
        );
        eprintln!(
            "topology n={n}, {trials} attacker/victim samples, ROV adoption {:.0}% ({:.1?})",
            rov_fraction * 100.0,
            t0.elapsed()
        );
        eprintln!(
            "speculation: {}/{} items replayed ({} footprint checks, {} cells replayed, \
             {} re-propagated)",
            stats.replayed,
            stats.items,
            stats.footprint_checks,
            stats.cells_replayed,
            stats.cells_repropagated,
        );
        println!(
            "\n=== traffic intercepted by the attacker (ROV adoption {:.0}%) ===\n",
            rov_fraction * 100.0
        );
        print!("{}", report.render());
    }

    // The adoption sweep: §2 notes few ASes filtered in 2017; show how the
    // two decisive attacks respond to growing enforcement.
    let base = AttackExperiment {
        topology: TopologyConfig {
            n,
            ..TopologyConfig::default()
        },
        trials,
        rov_fraction: 1.0,
        seed: 99,
    };
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    let t0 = std::time::Instant::now();
    // One executor plan per sweep: the topology is generated once, the
    // uniform adopter draws share one threshold pass, and sweep points
    // whose trials are RPKI-transparent are replayed, not re-propagated.
    let classic = base.adoption_sweep(
        bgpsim::AttackKind::SubprefixHijack,
        bgpsim::experiment::RoaConfig::Minimal,
        &fractions,
    );
    let forged = base.adoption_sweep(
        bgpsim::AttackKind::ForgedOriginSubprefixHijack,
        bgpsim::experiment::RoaConfig::NonMinimalMaxLen,
        &fractions,
    );
    record_bench_json(
        "attacks/adoption-sweep/pair",
        n as f64,
        t0.elapsed().as_nanos() as f64,
    );
    println!(
        "
=== mean interception vs ROV adoption ===
"
    );
    print!("{:<52}", "attack / ROA");
    for f in fractions {
        print!(" {:>6.0}%", f * 100.0);
    }
    println!();
    for (label, sweep) in [
        ("subprefix hijack vs minimal ROA", &classic),
        ("forged-origin subprefix vs non-minimal ROA", &forged),
    ] {
        print!("{label:<52}");
        for (_, v) in &sweep.points {
            print!(" {:>6.1}%", v * 100.0);
        }
        println!();
    }

    println!(
        r#"
Reading the table (paper §4-§5):
  * forged-origin SUBPREFIX hijack vs the non-minimal (maxLength) ROA is
    RPKI-valid and captures ~100% -- "as bad as a subprefix hijack";
  * the minimal ROA kills it (0%), demoting the attacker to the
    forged-origin PREFIX hijack, where traffic splits and the majority
    stays on the legitimate route;
  * classic (sub)prefix hijacks are stopped by any ROA once ROV is
    enforced, but return as ROV adoption drops;
  * the adoption sweep shows the asymmetry: deploying MORE validation
    steadily kills the classic hijack but does nothing against the
    forged-origin subprefix hijack while the ROA stays non-minimal."#
    );
}
