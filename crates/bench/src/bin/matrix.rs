//! The attack scenario matrix: every attacker strategy × ROV deployment
//! model × ROA configuration × topology family, run on the unified trial
//! executor (bit-identical to the sequential fold), then weighted by the
//! §6 census of the generated world into one expected-interception
//! figure.
//!
//! ```sh
//! MAXLENGTH_TOPOLOGY=2000 MAXLENGTH_TRIALS=30 \
//!     cargo run --release -p rpki-bench --bin matrix
//! ```
//!
//! Knobs: `MAXLENGTH_TOPOLOGY` (largest topology-family size),
//! `MAXLENGTH_TRIALS` (attacker/victim pairs per cell),
//! `MAXLENGTH_SCALE` (world scale for the census weighting),
//! `RAYON_NUM_THREADS` (worker threads), `MAXLENGTH_CSV` (write
//! `matrix.csv` + `risk.csv`), `MAXLENGTH_BENCH_JSON` (append
//! machine-readable timing records), `MAXLENGTH_TOPO_N` (AS count for
//! the internet-scale memory diagnostic printed at startup).

use bgpsim::ScenarioMatrix;
use maxlength_core::report::{matrix_csv, risk_csv};
use maxlength_core::vulnerability::{assess_risk, MaxLengthCensus};
use rpki_bench::harness::{
    final_snapshot, print_memory_diagnostics, record_bench_json, scale_from_env, threads_from_env,
    usize_from_env, world,
};

fn main() {
    let n = usize_from_env("MAXLENGTH_TOPOLOGY", 2000);
    let trials = usize_from_env("MAXLENGTH_TRIALS", 30);
    let threads = threads_from_env();
    print_memory_diagnostics();

    let matrix = ScenarioMatrix {
        topologies: bgpsim::TopologyFamily::standard(n),
        trials,
        ..ScenarioMatrix::small(2017)
    };
    eprintln!(
        "scenario matrix: {} cells ({} topologies × {} strategies × {} deployments × {} ROAs), \
         {trials} trials/cell, {threads} threads",
        matrix.cell_count(),
        matrix.topologies.len(),
        matrix.strategies.len(),
        matrix.deployments.len(),
        matrix.roas.len(),
    );

    let t0 = std::time::Instant::now();
    let (report, stats) = matrix.run_par_with_stats();
    let par = t0.elapsed();
    println!("{}", report.render());
    eprintln!(
        "matrix ({} cells) in {par:.1?} parallel — {} policy compilations \
         ({} cells would have paid one each), {}/{} items replayed as \
         deployment-independent",
        report.cells.len(),
        stats.compilations,
        matrix.cell_count(),
        stats.replayed,
        stats.items,
    );
    eprintln!(
        "speculation: {} footprint checks, {} cells replayed, {} re-propagated",
        stats.footprint_checks, stats.cells_replayed, stats.cells_repropagated,
    );
    record_bench_json(
        "matrix/grid/run_par",
        matrix.cell_count() as f64,
        par.as_nanos() as f64,
    );

    // The census weighting: what the generated world's actual ROAs imply.
    let scale = scale_from_env();
    let world = world(scale);
    let (_, vrps, bgp) = final_snapshot(&world);
    let census = MaxLengthCensus::analyze_par(&vrps, &bgp);
    let t1 = std::time::Instant::now();
    let risk = assess_risk(&census, &report);
    println!("{}", risk.render());
    record_bench_json("matrix/risk/assess", scale, t1.elapsed().as_nanos() as f64);

    if std::env::var_os("MAXLENGTH_CSV").is_some() {
        std::fs::write("matrix.csv", matrix_csv(&report)).expect("write matrix.csv");
        std::fs::write("risk.csv", risk_csv(&risk)).expect("write risk.csv");
        eprintln!("wrote matrix.csv + risk.csv");
    }

    println!(
        r#"Reading the grid (paper §4-§5, generalized):
  * the forged-origin subprefix hijack and the maxLength-gap prober
    capture ~100% against the non-minimal (maxLength) ROA in every
    deployment -- more ROV never helps while the ROA stays loose;
  * the minimal ROA zeroes the subprefix column and demotes the prober
    to the competing prefix-grained attack;
  * the route leak is RPKI-valid by construction: identical numbers in
    all three ROA columns -- origin validation is the wrong tool there;
  * deployment placement matters: stub-only validation barely moves the
    needle because transit ASes re-export what they accepted."#
    );
}
