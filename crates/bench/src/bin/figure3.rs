//! Regenerates Figure 3: PDU counts per scenario across the eight weekly
//! snapshots (4/13 … 6/1), for today's deployment (3a) and full
//! deployment (3b).

use maxlength_core::timeline::{render_series, Snapshot, Timeline};
use rpki_bench::harness::{scale_from_env, world};

fn main() {
    let scale = scale_from_env();
    eprintln!("generating {}-week world at scale {scale} ...", 8);
    let t0 = std::time::Instant::now();
    let world = world(scale);
    let snapshots: Vec<Snapshot> = world
        .snapshots()
        .into_iter()
        .map(|s| Snapshot {
            label: s.label.clone(),
            vrps: s.vrps(),
            bgp: s.routes.iter().collect(),
        })
        .collect();
    eprintln!(
        "snapshots ready ({:.1?}); computing all scenarios ...",
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let timeline = Timeline::compute(&snapshots);
    eprintln!("timeline computed in {:.1?}\n", t1.elapsed());

    println!("Figure 3a: today's RPKI deployment (paper band: 30K-55K PDUs)\n");
    print!("{}", render_series(&timeline.figure3a()));
    println!();
    println!("Figure 3b: RPKI in full deployment (paper band: 710K-780K PDUs)\n");
    print!("{}", render_series(&timeline.figure3b()));
    println!();
    println!(
        "(safe) = immune to forged-origin subprefix hijacks (solid lines in \
         the paper); (vuln) = exposed (dashed lines)."
    );

    // Optional plot-ready CSV export.
    if let Ok(dir) = std::env::var("MAXLENGTH_CSV") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create CSV directory");
        std::fs::write(
            dir.join("figure3a.csv"),
            maxlength_core::report::series_csv(&timeline.figure3a()),
        )
        .expect("write figure3a.csv");
        std::fs::write(
            dir.join("figure3b.csv"),
            maxlength_core::report::series_csv(&timeline.figure3b()),
        )
        .expect("write figure3b.csv");
        eprintln!("CSV series written to {}", dir.display());
    }
}
