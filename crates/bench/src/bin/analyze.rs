//! Runs the paper's full analysis over a dataset file: Table 1, the §6
//! census, and the §8 lint findings. Works on generated snapshots or any
//! data converted into the documented text format.
//!
//! ```sh
//! analyze <snapshot.txt> [--lint-top N]
//! ```

use std::path::PathBuf;

use maxlength_core::lint::LintReport;
use maxlength_core::{BgpTable, MaxLengthCensus, Table1};
use rpki_datasets::io;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next().map(PathBuf::from) else {
        eprintln!("usage: analyze <snapshot.txt> [--lint-top N]");
        std::process::exit(2);
    };
    let lint_top: usize = match (args.next().as_deref(), args.next()) {
        (Some("--lint-top"), Some(n)) => n.parse().unwrap_or(10),
        _ => 10,
    };

    let snap = match io::load(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let vrps = snap.vrps();
    let bgp: BgpTable = snap.routes.iter().collect();
    println!(
        "dataset {} — {} ROAs, {} tuples, {} BGP pairs\n",
        snap.label,
        snap.roa_count(),
        vrps.len(),
        bgp.len()
    );

    let census = MaxLengthCensus::analyze(&vrps, &bgp);
    println!(
        "maxLength usage: {} tuples ({:.1}%), vulnerable: {} ({:.1}% of users)\n",
        census.max_len_using,
        100.0 * census.max_len_fraction(),
        census.vulnerable,
        100.0 * census.vulnerable_fraction()
    );

    print!("{}", Table1::compute(&vrps, &bgp));

    let exposed = maxlength_core::vulnerability::exposure_by_as(&vrps, &bgp);
    if !exposed.is_empty() {
        println!("\nmost-exposed origin ASes:");
        for e in exposed.iter().take(5) {
            println!(
                "  {:<10} {} of {} tuples vulnerable, {} hijackable prefixes",
                e.asn.to_string(),
                e.vulnerable_tuples,
                e.total_tuples,
                e.exposed_prefixes
            );
        }
    }

    let report = LintReport::lint(&snap.roas, &bgp);
    println!(
        "\nlint: {} findings ({} critical)",
        report.findings.len(),
        report.at(maxlength_core::Severity::Critical).count()
    );
    for f in report.findings.iter().take(lint_top) {
        println!(
            "  {} [{}] {} — {}",
            f.severity,
            f.rule.code(),
            f.vrp,
            f.detail
        );
    }
    if report.findings.len() > lint_top {
        println!("  ... {} more", report.findings.len() - lint_top);
    }
    if report.has_critical() {
        std::process::exit(3); // CI-friendly: criticals fail the check
    }
}
