//! Generates the calibrated weekly snapshots and writes them as text
//! files, one per week, in the documented dataset format.
//!
//! ```sh
//! gen_dataset <output-dir> [scale] [seed]
//! ```

use std::path::PathBuf;

use rpki_datasets::{io, GeneratorConfig, World};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next().map(PathBuf::from) else {
        eprintln!("usage: gen_dataset <output-dir> [scale] [seed]");
        std::process::exit(2);
    };
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let seed: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(GeneratorConfig::default().seed);

    std::fs::create_dir_all(&dir).expect("create output directory");
    let world = World::generate(GeneratorConfig {
        scale,
        seed,
        ..GeneratorConfig::default()
    });
    for (week, snap) in world.snapshots().into_iter().enumerate() {
        let name = format!("week-{week}-{}.txt", snap.label.replace('/', "-"));
        let path = dir.join(name);
        io::save(&snap, &path).expect("write snapshot");
        println!(
            "{}: {} ROAs, {} tuples, {} BGP pairs",
            path.display(),
            snap.roa_count(),
            snap.vrps().len(),
            snap.route_count()
        );
    }
}
