//! The live-churn workload: a seeded VRP churn timeline replayed through
//! a real rpki-rtr session, with epoch-by-epoch incremental revalidation
//! against the frozen snapshot chain — and the naive full-revalidation
//! baseline timed alongside for the §6 router-load comparison.
//!
//! ```sh
//! MAXLENGTH_SCALE=0.05 cargo run --release -p rpki-bench --bin churn
//! ```
//!
//! Knobs: `MAXLENGTH_SCALE` (world scale), `MAXLENGTH_EPOCHS` (timeline
//! length, default 24), `MAXLENGTH_CHURN` (events per epoch, default 64).

use std::collections::BTreeSet;

use rpki_bench::harness::{final_snapshot, scale_from_env, usize_from_env, world};
use rpki_datasets::{ChurnConfig, ChurnGenerator, ChurnProfile};
use rpki_roa::Vrp;
use rpki_rov::{ChainConfig, SnapshotChainEngine, ValidationState, VrpIndex};
use rpki_rtr::LiveSession;

fn main() {
    let scale = scale_from_env();
    let epochs = usize_from_env("MAXLENGTH_EPOCHS", 24);
    let events = usize_from_env("MAXLENGTH_CHURN", 64);
    eprintln!("generating world at scale {scale} ...");
    let world = world(scale);
    let (snap, vrps, _) = final_snapshot(&world);

    let timeline = ChurnGenerator::new(
        vrps.iter().copied(),
        ChurnConfig {
            epochs,
            events_per_epoch: events,
            profile: ChurnProfile::Mixed,
            ..ChurnConfig::default()
        },
    )
    .generate();
    println!(
        "timeline          : {} epochs, {} delta records over {} initial VRPs",
        timeline.epochs.len(),
        timeline.total_events(),
        timeline.initial.len()
    );

    // The full stack: cache server ↔ router client over real PDUs, the
    // router's deltas feeding the snapshot-chain engine.
    let mut session = LiveSession::new(2017, &timeline.initial);
    session.synchronize().expect("initial synchronization");
    let mut engine = SnapshotChainEngine::new(
        snap.routes.iter().copied(),
        timeline.initial.iter().copied(),
        ChainConfig::default(),
    );
    println!(
        "engine            : {} routes indexed against {} VRPs",
        engine.route_count(),
        engine.vrp_count()
    );

    // The naive-router baseline: a plain set plus a full rebuild +
    // freeze + whole-table revalidation per epoch. No incremental
    // machinery inside the timed path, so the comparison is fair.
    let mut naive_set: BTreeSet<Vrp> = timeline.initial.iter().copied().collect();
    let mut naive_states: Vec<ValidationState> = {
        let frozen = naive_set.iter().copied().collect::<VrpIndex>().freeze();
        snap.routes.iter().map(|r| frozen.validate(r)).collect()
    };
    let mut incremental_total = std::time::Duration::ZERO;
    let mut full_total = std::time::Duration::ZERO;
    let mut wire_pdus = 0usize;
    println!("\n epoch   wire-pdus  state-chg  incremental     full-reval     speedup");
    for epoch in &timeline.epochs {
        let stats = session
            .apply_epoch(&epoch.announced, &epoch.withdrawn)
            .expect("session epoch");
        wire_pdus += stats.pdus;

        let t0 = std::time::Instant::now();
        let report = engine.apply_epoch(&epoch.announced, &epoch.withdrawn);
        let inc = t0.elapsed();
        incremental_total += inc;

        let t1 = std::time::Instant::now();
        for v in &epoch.announced {
            naive_set.insert(*v);
        }
        for v in &epoch.withdrawn {
            naive_set.remove(v);
        }
        let frozen = naive_set.iter().copied().collect::<VrpIndex>().freeze();
        let new_states: Vec<ValidationState> =
            snap.routes.iter().map(|r| frozen.validate(r)).collect();
        let full = t1.elapsed();
        full_total += full;
        let naive_changes = naive_states
            .iter()
            .zip(&new_states)
            .filter(|(old, new)| old != new)
            .count();
        naive_states = new_states;
        assert_eq!(
            naive_changes,
            report.changes.len(),
            "incremental and full paths must agree"
        );

        println!(
            " {:>5}   {:>9}  {:>9}  {:>11.2?}  {:>13.2?}  {:>9.1}x{}",
            report.epoch,
            stats.pdus,
            report.changes.len(),
            inc,
            full,
            full.as_secs_f64() / inc.as_secs_f64().max(1e-9),
            if report.refroze { "  [refroze]" } else { "" }
        );
    }

    let summary = engine.summary();
    println!(
        "\nchurn summary     : {} epochs, {} deltas, {} state changes \
         ({} -> Valid, {} -> Invalid, {} -> NotFound), {} refreezes",
        summary.epochs,
        summary.deltas,
        summary.state_changes,
        summary.to_valid,
        summary.to_invalid,
        summary.to_not_found,
        summary.refreezes
    );
    println!(
        "wire              : {} PDUs total; router at serial {} (cache {})",
        wire_pdus,
        session.router().serial(),
        session.cache().serial()
    );
    println!(
        "totals            : incremental {:.2?} vs full {:.2?} ({:.1}x over the timeline)",
        incremental_total,
        full_total,
        full_total.as_secs_f64() / incremental_total.as_secs_f64().max(1e-9)
    );

    // The acceptance check, end to end: the router's final synchronized
    // set equals the timeline's final set, and validating the table
    // against it from scratch reproduces the chain engine's states.
    let router_set: Vec<_> = session.router().vrps().iter().copied().collect();
    assert_eq!(
        router_set,
        timeline.final_vrps(),
        "router mirrors the cache"
    );
    let fresh: VrpIndex = router_set.into_iter().collect();
    let frozen = fresh.freeze();
    for (route, state) in engine.states() {
        assert_eq!(state, frozen.validate(&route), "{route}");
    }
    let naive_final: Vec<ValidationState> =
        snap.routes.iter().map(|r| frozen.validate(r)).collect();
    assert_eq!(naive_states, naive_final, "naive baseline tracked the set");
    println!(
        "differential check: chain states == batch revalidation of the \
         router's final set ({} routes) ✓",
        engine.route_count()
    );
}
