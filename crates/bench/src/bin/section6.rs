//! Regenerates the §6 measurement narrative: maxLength usage, the
//! vulnerable fraction, the minimalization cost, and the full-deployment
//! compression bound.

use maxlength_core::bounds::full_deployment_minimal;
use maxlength_core::bounds::{max_compression_ratio, max_permissive_lower_bound};
use maxlength_core::compress::compress_roas_parallel;
use maxlength_core::minimal::minimalize_vrps_par;
use maxlength_core::vulnerability::{hijack_surface, MaxLengthCensus};
use rpki_bench::harness::{final_snapshot, scale_from_env, threads_from_env, world};
use rpki_rov::FrozenVrpIndex;

fn main() {
    let scale = scale_from_env();
    let threads = threads_from_env();
    eprintln!("generating world at scale {scale} ({threads} threads) ...");
    let world = world(scale);
    let (snap, vrps, bgp) = final_snapshot(&world);
    println!(
        "dataset {}: {} ROAs, {} (prefix, maxLength, AS) tuples, {} BGP pairs\n",
        snap.label,
        snap.roa_count(),
        vrps.len(),
        bgp.len()
    );

    // --- "7.6% of pairs match a ROA" (§2) -------------------------------
    // Compile the VRP set into a frozen snapshot once, then validate the
    // whole table in parallel.
    let frozen: FrozenVrpIndex = vrps.iter().copied().collect();
    let routes: Vec<_> = bgp.iter().collect();
    let summary = frozen.validate_table_par(&routes);
    println!("RFC 6811 table validation (paper §2: 7.6% of pairs Valid):");
    println!(
        "  {} (Valid {:.1}%, Invalid {:.1}%, NotFound {:.1}%)\n",
        summary,
        100.0 * summary.valid_fraction(),
        100.0 * summary.invalid_fraction(),
        100.0 * summary.not_found_fraction(),
    );

    // --- "Using maxLength almost always creates vulnerabilities" --------
    let census = MaxLengthCensus::analyze_par(&vrps, &bgp);
    println!("maxLength census (paper: 4,630 prefixes = ~12%; 84% vulnerable):");
    println!(
        "  prefixes with maxLength > length : {:>8} ({:.1}% of tuples)",
        census.max_len_using,
        100.0 * census.max_len_fraction()
    );
    println!(
        "  of those, non-minimal (VULNERABLE): {:>8} ({:.1}%)",
        census.vulnerable,
        100.0 * census.vulnerable_fraction()
    );

    // A few concrete attack opportunities.
    println!("\nexample forged-origin subprefix hijack opportunities:");
    let mut shown = 0;
    for vrp in vrps.iter().filter(|v| v.uses_max_len()) {
        let surface = hijack_surface(vrp, &bgp, 2);
        if surface.unannounced_count > 0 {
            println!(
                "  ROA tuple {:<40} exposes {:>6} unannounced prefixes, e.g. {}",
                vrp.to_string(),
                surface.unannounced_count,
                surface
                    .examples
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            shown += 1;
            if shown == 5 {
                break;
            }
        }
    }

    // --- "Benefit? Fewer prefixes included in ROAs" ----------------------
    let minimal = minimalize_vrps_par(&vrps, &bgp);
    let added = minimal.len() as i64 - vrps.len() as i64;
    println!("\nminimalization (paper: 13K additional prefixes, +33% PDUs):");
    println!("  minimal, no-maxLength PDUs       : {:>8}", minimal.len());
    println!(
        "  change vs status quo             : {:>+8} ({:+.1}%)",
        added,
        100.0 * added as f64 / vrps.len() as f64
    );
    let minimal_compressed = compress_roas_parallel(&minimal, threads);
    println!(
        "  after compress_roas              : {:>8} ({:.2}% compression)",
        minimal_compressed.len(),
        100.0 * (1.0 - minimal_compressed.len() as f64 / minimal.len() as f64)
    );

    // --- "Benefit? Reducing load on routers" -----------------------------
    let compressed = compress_roas_parallel(&vrps, threads);
    println!("\nstatus-quo compression (paper: 39,949 -> 33,615 = 15.90%):");
    println!(
        "  {} -> {} ({:.2}% compression)",
        vrps.len(),
        compressed.len(),
        100.0 * (1.0 - compressed.len() as f64 / vrps.len() as f64)
    );

    let full = full_deployment_minimal(&bgp);
    let full_compressed = compress_roas_parallel(&full, threads);
    let bound = max_permissive_lower_bound(&bgp);
    println!("\nfull deployment (paper: 776,945 pairs; bound 729,371 = 6.2% max):");
    println!("  minimal PDUs (= announced pairs) : {:>8}", full.len());
    println!(
        "  compress_roas                    : {:>8} ({:.2}% compression)",
        full_compressed.len(),
        100.0 * (1.0 - full_compressed.len() as f64 / full.len() as f64)
    );
    println!(
        "  maximally-permissive lower bound : {:>8} ({:.2}% max compression)",
        bound.len(),
        100.0 * max_compression_ratio(&bgp)
    );
    println!(
        "  gap to bound                     : {:>8} tuples ({:.3}%)",
        full_compressed.len() - bound.len(),
        100.0 * (full_compressed.len() as f64 / bound.len() as f64 - 1.0)
    );
}
