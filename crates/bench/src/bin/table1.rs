//! Regenerates Table 1: PDU counts for the seven scenarios.

use maxlength_core::Table1;
use rpki_bench::harness::{final_snapshot, scale_from_env, threads_from_env, world};

fn main() {
    let scale = scale_from_env();
    let threads = threads_from_env();
    eprintln!("generating world at scale {scale} ({threads} threads) ...");
    let t0 = std::time::Instant::now();
    let world = world(scale);
    let (snap, vrps, bgp) = final_snapshot(&world);
    eprintln!(
        "dataset {}: {} ROAs, {} tuples, {} BGP pairs ({:.1?})",
        snap.label,
        snap.roa_count(),
        vrps.len(),
        bgp.len(),
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let table = Table1::compute_par(&vrps, &bgp, threads);
    eprintln!("computed Table 1 in {:.1?}\n", t1.elapsed());
    println!("Table 1 (paper: 39,949 / 33,615 / 52,745 / 49,308 / 776,945 / 730,008 / 729,371)\n");
    print!("{table}");

    if let Ok(dir) = std::env::var("MAXLENGTH_CSV") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create CSV directory");
        std::fs::write(
            dir.join("table1.csv"),
            maxlength_core::report::table1_csv(&table),
        )
        .expect("write table1.csv");
        std::fs::write(
            dir.join("table1.md"),
            maxlength_core::report::table1_markdown(&table),
        )
        .expect("write table1.md");
        eprintln!("table1.csv / table1.md written to {}", dir.display());
    }
}
