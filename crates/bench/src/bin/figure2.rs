//! Regenerates Figure 2: the prefix trie for AS 31283's minimal ROA
//! before and after `compress_roas`, 4 PDUs → 2 PDUs.

use maxlength_core::compress::{compress_roas, expand_authorized};
use rpki_roa::Vrp;

fn main() {
    let input: Vec<Vrp> = [
        "87.254.32.0/19 => AS31283",
        "87.254.32.0/20 => AS31283",
        "87.254.48.0/20 => AS31283",
        "87.254.32.0/21 => AS31283",
    ]
    .iter()
    .map(|s| s.parse().expect("static"))
    .collect();

    println!("Figure 2: the IPv4 prefix trie for AS 31283\n");
    println!("before compression ({} PDUs):", input.len());
    println!(
        r#"
            87.254.32.0/19 (ml 19)
             /             \
  87.254.32.0/20 (ml 20)   87.254.48.0/20 (ml 20)
       /
  87.254.32.0/21 (ml 21)
"#
    );
    for v in &input {
        println!("    {v}");
    }

    let output = compress_roas(&input);
    println!("\nafter compress_roas ({} PDUs):", output.len());
    println!(
        r#"
            87.254.32.0/19 (ml 20)   <- children merged, maxLength raised
       /
  87.254.32.0/21 (ml 21)             <- survives: exceeds parent's maxLength
"#
    );
    for v in &output {
        println!("    {v}");
    }

    assert_eq!(output.len(), 2, "the paper's 4 -> 2 reduction");
    let same = expand_authorized(&input) == expand_authorized(&output);
    println!(
        "\nauthorized route sets identical: {same} (still minimal; \
         87.254.40.0/21 remains unauthorized)"
    );
    assert!(same);
}
