//! Regenerates §7.2 "Computational overhead": wall-clock time and peak
//! memory for `compress_roas` on today's RPKI and on the full-deployment
//! scenario.
//!
//! The paper (authors' implementation, Intel i7-6700): 2.4 s / 19 MB for
//! the partially-deployed RPKI; 36 s / 290 MB for full deployment. The
//! Rust implementation is expected to be 1-2 orders of magnitude faster;
//! the *ratio* between the two scenarios (~15x) is the comparable shape.

use maxlength_core::bounds::full_deployment_minimal;
use maxlength_core::compress::{compress_roas, compress_roas_parallel};
use rpki_bench::harness::{final_snapshot, scale_from_env, threads_from_env, world};
use rpki_roa::RouteOrigin;
use rpki_rov::VrpIndex;

fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let scale = scale_from_env();
    eprintln!("generating world at scale {scale} ...");
    let world = world(scale);
    let (_, vrps, bgp) = final_snapshot(&world);

    // Scenario 1: today's (partially deployed) RPKI.
    let t0 = std::time::Instant::now();
    let compressed = compress_roas(&vrps);
    let today_time = t0.elapsed();
    println!(
        "today's RPKI      : {:>8} -> {:>8} tuples in {:>10.2?}   (paper: 2.4 s, 19 MB)",
        vrps.len(),
        compressed.len(),
        today_time
    );

    // Scenario 2: full deployment.
    let full = full_deployment_minimal(&bgp);
    let t1 = std::time::Instant::now();
    let full_compressed = compress_roas(&full);
    let full_time = t1.elapsed();
    println!(
        "full deployment   : {:>8} -> {:>8} tuples in {:>10.2?}   (paper: 36 s, 290 MB)",
        full.len(),
        full_compressed.len(),
        full_time
    );

    println!(
        "scenario ratio    : {:.1}x slower at full deployment (paper: {:.1}x)",
        full_time.as_secs_f64() / today_time.as_secs_f64().max(1e-9),
        36.0 / 2.4
    );

    // §7.2's suggested optimization: parallelize across per-(ASN, AFI)
    // tries. Output is identical; only the wall clock moves.
    let threads = threads_from_env();
    let t2 = std::time::Instant::now();
    let full_par = compress_roas_parallel(&full, threads);
    let par_time = t2.elapsed();
    assert_eq!(full_par.len(), full_compressed.len(), "parallel must match");
    println!(
        "full, {threads:>2} threads  : {:>8} -> {:>8} tuples in {:>10.2?}   ({:.1}x speedup)",
        full.len(),
        full_par.len(),
        par_time,
        full_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9)
    );

    // The validation hot path: mutable trie vs frozen snapshot vs
    // frozen + parallel, all over the same table.
    println!("\nRFC 6811 whole-table validation (same inputs, three engines):");
    let routes: Vec<RouteOrigin> = bgp.iter().collect();
    let index: VrpIndex = vrps.iter().copied().collect();
    let t3 = std::time::Instant::now();
    let seq = index.validate_table(routes.iter());
    let trie_time = t3.elapsed();
    println!(
        "mutable trie      : {:>8} routes in {:>10.2?}   ({})",
        routes.len(),
        trie_time,
        seq
    );
    let t4 = std::time::Instant::now();
    let frozen = index.freeze();
    let freeze_time = t4.elapsed();
    let t5 = std::time::Instant::now();
    let frozen_seq = frozen.validate_table(routes.iter());
    let frozen_time = t5.elapsed();
    assert_eq!(frozen_seq, seq, "frozen snapshot must agree with builder");
    println!(
        "frozen snapshot   : {:>8} routes in {:>10.2?}   (freeze took {:.2?}; {:.1}x vs trie)",
        routes.len(),
        frozen_time,
        freeze_time,
        trie_time.as_secs_f64() / frozen_time.as_secs_f64().max(1e-9)
    );
    let t6 = std::time::Instant::now();
    let frozen_par = frozen.validate_table_par(&routes);
    let par_val_time = t6.elapsed();
    assert_eq!(frozen_par, seq, "parallel reduction must agree");
    println!(
        "frozen, {threads:>2} threads: {:>8} routes in {:>10.2?}   ({:.1}x vs trie)",
        routes.len(),
        par_val_time,
        trie_time.as_secs_f64() / par_val_time.as_secs_f64().max(1e-9)
    );

    if let Some(mb) = peak_rss_mb() {
        println!("\npeak RSS          : {mb:.0} MB (whole process, including the dataset)");
    }
}
