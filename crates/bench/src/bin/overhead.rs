//! Regenerates §7.2 "Computational overhead": wall-clock time and peak
//! memory for `compress_roas` on today's RPKI and on the full-deployment
//! scenario.
//!
//! The paper (authors' implementation, Intel i7-6700): 2.4 s / 19 MB for
//! the partially-deployed RPKI; 36 s / 290 MB for full deployment. The
//! Rust implementation is expected to be 1-2 orders of magnitude faster;
//! the *ratio* between the two scenarios (~15x) is the comparable shape.

use maxlength_core::bounds::full_deployment_minimal;
use maxlength_core::compress::compress_roas;
use rpki_bench::harness::{final_snapshot, scale_from_env, world};

fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let scale = scale_from_env();
    eprintln!("generating world at scale {scale} ...");
    let world = world(scale);
    let (_, vrps, bgp) = final_snapshot(&world);

    // Scenario 1: today's (partially deployed) RPKI.
    let t0 = std::time::Instant::now();
    let compressed = compress_roas(&vrps);
    let today_time = t0.elapsed();
    println!(
        "today's RPKI      : {:>8} -> {:>8} tuples in {:>10.2?}   (paper: 2.4 s, 19 MB)",
        vrps.len(),
        compressed.len(),
        today_time
    );

    // Scenario 2: full deployment.
    let full = full_deployment_minimal(&bgp);
    let t1 = std::time::Instant::now();
    let full_compressed = compress_roas(&full);
    let full_time = t1.elapsed();
    println!(
        "full deployment   : {:>8} -> {:>8} tuples in {:>10.2?}   (paper: 36 s, 290 MB)",
        full.len(),
        full_compressed.len(),
        full_time
    );

    println!(
        "scenario ratio    : {:.1}x slower at full deployment (paper: {:.1}x)",
        full_time.as_secs_f64() / today_time.as_secs_f64().max(1e-9),
        36.0 / 2.4
    );
    if let Some(mb) = peak_rss_mb() {
        println!("peak RSS          : {mb:.0} MB (whole process, including the dataset)");
    }
}
