//! Scale and threading knobs shared by all harness binaries.

use maxlength_core::BgpTable;
use rpki_datasets::{DatasetSnapshot, GeneratorConfig, World};
use rpki_roa::Vrp;

/// Emits `message` to stderr the first time `key` is seen in this
/// process — the env knobs are read by several phases of one binary
/// (and by criterion's many iterations), and a bad value should produce
/// one warning, not a screenful.
fn warn_once(key: &str, message: String) {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(Default::default)
        .lock()
        .expect("warn set poisoned");
    if warned.insert(key.to_string()) {
        eprintln!("{message}");
    }
}

/// Reads the `MAXLENGTH_SCALE` environment variable (default 1.0 = paper
/// scale; set e.g. 0.05 for a quick run). Surrounding whitespace is
/// trimmed; anything that is not a positive finite number warns once on
/// stderr and falls back to 1.0 instead of silently running at full
/// scale (or with an empty world).
pub fn scale_from_env() -> f64 {
    match std::env::var("MAXLENGTH_SCALE") {
        Ok(raw) => match raw.trim().parse::<f64>() {
            // NaN, infinities, and non-positive values all parse as f64
            // but silently produce empty or absurd worlds — reject them
            // alongside outright garbage.
            Ok(scale) if scale.is_finite() && scale > 0.0 => scale,
            _ => {
                warn_once(
                    "MAXLENGTH_SCALE",
                    format!(
                        "warning: MAXLENGTH_SCALE={raw:?} is not a positive number; \
                         using scale 1.0"
                    ),
                );
                1.0
            }
        },
        Err(_) => 1.0,
    }
}

/// The worker-thread count for the parallel batch paths:
/// `RAYON_NUM_THREADS` if set to a positive integer (whitespace trimmed,
/// one warning on garbage, matching [`scale_from_env`]'s behaviour),
/// else the machine's available parallelism.
///
/// Delegates the actual resolution to [`rayon::current_num_threads`] —
/// the count the rayon-backed paths in the same binary use — and only
/// layers the warning on top, so the two can never diverge.
pub fn threads_from_env() -> usize {
    let threads = rayon::current_num_threads();
    if let Ok(raw) = std::env::var("RAYON_NUM_THREADS") {
        if raw.trim().parse::<usize>().map(|n| n > 0) != Ok(true) {
            warn_once(
                "RAYON_NUM_THREADS",
                format!(
                    "warning: RAYON_NUM_THREADS={raw:?} is not a positive integer; \
                     using {threads} threads"
                ),
            );
        }
    }
    threads
}

/// Reads a positive-integer knob from the environment (whitespace
/// trimmed), warning once on garbage and falling back to `default`
/// (matching [`scale_from_env`]'s behaviour) — used for
/// `MAXLENGTH_EPOCHS`, `MAXLENGTH_CHURN`, `MAXLENGTH_TOPOLOGY`, and
/// `MAXLENGTH_TRIALS`.
pub fn usize_from_env(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                warn_once(
                    var,
                    format!("warning: {var}={raw:?} is not a positive integer; using {default}"),
                );
                default
            }
        },
        Err(_) => default,
    }
}

/// The internet-scale topology size: `MAXLENGTH_TOPO_N` if set to a
/// positive integer (whitespace trimmed, one warning on garbage), else
/// 80,000 — the real AS-level internet's order of magnitude. Shared by
/// the `topology` bench and the harness bins so every internet-scale
/// path sizes its graph identically.
pub fn topo_n_from_env() -> usize {
    usize_from_env("MAXLENGTH_TOPO_N", 80_000)
}

/// Prints the internet-scale memory footprint to stderr: the CSR graph
/// and the per-thread propagation scratch at [`topo_n_from_env`] ASes,
/// measured after one full accept-all propagation (so the bucket queue
/// is grown to its working size). Called by the `matrix` and `attacks`
/// bins so a memory regression shows up in every harness run, without
/// a profiler.
pub fn print_memory_diagnostics() {
    use bgpsim::routing::Seed;
    use bgpsim::topology::{InternetConfig, Topology};
    use bgpsim::{PropagationEngine, Workspace};

    let n = topo_n_from_env();
    let topology = Topology::generate_internet(InternetConfig {
        n,
        ..InternetConfig::default()
    });
    let victim = topology.stubs()[0];
    let mut ws = Workspace::new();
    let _ = PropagationEngine::new(&topology).propagate(
        &[Seed::origin(victim, topology.asn(victim))],
        &|_: usize, _| true,
        &mut ws,
    );
    eprintln!(
        "memory: internet n={n} ({} links) topology_bytes={} workspace_bytes={} \
         ({:.1} B/AS scratch per thread)",
        topology.link_count(),
        topology.memory_bytes(),
        ws.memory_bytes(),
        ws.memory_bytes() as f64 / n as f64,
    );
}

/// Appends one machine-readable benchmark record to the file named by
/// the `MAXLENGTH_BENCH_JSON` environment variable, as a JSON line
/// `{"bench": ..., "scale": ..., "ns_per_iter": ...}` — the perf paper
/// trail PRs attach as `BENCH_*.json`. A no-op when the variable is
/// unset or empty; warns (without failing the bench) when the file
/// cannot be opened.
pub fn record_bench_json(bench: &str, scale: f64, ns_per_iter: f64) {
    let Ok(path) = std::env::var("MAXLENGTH_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut file) => {
            let escaped = bench.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(
                file,
                "{{\"bench\":\"{escaped}\",\"scale\":{scale},\"ns_per_iter\":{ns_per_iter}}}"
            );
        }
        Err(err) => {
            eprintln!("warning: cannot append to MAXLENGTH_BENCH_JSON={path:?}: {err}");
        }
    }
}

/// Generates the world at the requested scale.
pub fn world(scale: f64) -> World {
    World::generate(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
}

/// The final ("6/1") snapshot with its VRPs and indexed BGP table.
pub fn final_snapshot(world: &World) -> (DatasetSnapshot, Vec<Vrp>, BgpTable) {
    let snap = world.snapshot(world.config.weeks - 1);
    let vrps = snap.vrps();
    let bgp: BgpTable = snap.routes.iter().collect();
    (snap, vrps, bgp)
}

#[cfg(test)]
mod tests {
    /// Env-var behaviours; one test so the harness's test threads never
    /// interleave mutations of shared process environment.
    #[test]
    fn env_knobs_parse_and_fall_back() {
        std::env::remove_var("MAXLENGTH_SCALE");
        assert_eq!(super::scale_from_env(), 1.0);
        std::env::set_var("MAXLENGTH_SCALE", "0.25");
        assert_eq!(super::scale_from_env(), 0.25);
        // Surrounding whitespace (a stray shell quote artefact) is fine.
        std::env::set_var("MAXLENGTH_SCALE", " 0.25\t");
        assert_eq!(super::scale_from_env(), 0.25);
        std::env::set_var("MAXLENGTH_SCALE", "not-a-number");
        assert_eq!(super::scale_from_env(), 1.0); // warns, falls back
        for parses_but_bogus in ["nan", "inf", "-1", "0"] {
            std::env::set_var("MAXLENGTH_SCALE", parses_but_bogus);
            assert_eq!(super::scale_from_env(), 1.0, "{parses_but_bogus}");
        }
        std::env::remove_var("MAXLENGTH_SCALE");

        std::env::remove_var("RAYON_NUM_THREADS");
        assert!(super::threads_from_env() >= 1);
        std::env::set_var("RAYON_NUM_THREADS", "3");
        assert_eq!(super::threads_from_env(), 3);
        // The trimmed value must agree with what the rayon fan-outs
        // themselves resolve (the shim trims identically).
        std::env::set_var("RAYON_NUM_THREADS", " 3 ");
        assert_eq!(super::threads_from_env(), 3);
        assert_eq!(rayon::current_num_threads(), 3);
        std::env::set_var("RAYON_NUM_THREADS", "zero");
        assert!(super::threads_from_env() >= 1); // warns, falls back
        std::env::set_var("RAYON_NUM_THREADS", "0");
        assert!(super::threads_from_env() >= 1); // zero is not a thread count
        std::env::remove_var("RAYON_NUM_THREADS");

        std::env::remove_var("MAXLENGTH_EPOCHS");
        assert_eq!(super::usize_from_env("MAXLENGTH_EPOCHS", 24), 24);
        std::env::set_var("MAXLENGTH_EPOCHS", "7");
        assert_eq!(super::usize_from_env("MAXLENGTH_EPOCHS", 24), 7);
        std::env::set_var("MAXLENGTH_EPOCHS", "7 ");
        assert_eq!(super::usize_from_env("MAXLENGTH_EPOCHS", 24), 7);
        for garbage in ["banana", "0", "-3", "1.5"] {
            std::env::set_var("MAXLENGTH_EPOCHS", garbage);
            assert_eq!(
                super::usize_from_env("MAXLENGTH_EPOCHS", 24),
                24,
                "{garbage}"
            );
        }
        std::env::remove_var("MAXLENGTH_EPOCHS");

        std::env::remove_var("MAXLENGTH_TOPO_N");
        assert_eq!(super::topo_n_from_env(), 80_000);
        std::env::set_var("MAXLENGTH_TOPO_N", " 4000 ");
        assert_eq!(super::topo_n_from_env(), 4000);
        std::env::set_var("MAXLENGTH_TOPO_N", "eighty-thousand");
        assert_eq!(super::topo_n_from_env(), 80_000); // warns, falls back
        std::env::remove_var("MAXLENGTH_TOPO_N");

        // MAXLENGTH_BENCH_JSON: unset is a no-op, set appends JSON lines.
        std::env::remove_var("MAXLENGTH_BENCH_JSON");
        super::record_bench_json("noop", 1.0, 10.0); // must not create anything
        let dir = std::env::temp_dir().join(format!("bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.json");
        std::env::set_var("MAXLENGTH_BENCH_JSON", &path);
        super::record_bench_json("propagation/engine", 1000.0, 123.5);
        super::record_bench_json("odd \"name\"", 0.05, 7.0);
        std::env::remove_var("MAXLENGTH_BENCH_JSON");
        let written = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"bench\":\"propagation/engine\",\"scale\":1000,\"ns_per_iter\":123.5}"
        );
        assert!(lines[1].contains("odd \\\"name\\\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
