//! Scale handling shared by all harness binaries.

use maxlength_core::BgpTable;
use rpki_datasets::{DatasetSnapshot, GeneratorConfig, World};
use rpki_roa::Vrp;

/// Reads the `MAXLENGTH_SCALE` environment variable (default 1.0 = paper
/// scale; set e.g. 0.05 for a quick run).
pub fn scale_from_env() -> f64 {
    std::env::var("MAXLENGTH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Generates the world at the requested scale.
pub fn world(scale: f64) -> World {
    World::generate(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
}

/// The final ("6/1") snapshot with its VRPs and indexed BGP table.
pub fn final_snapshot(world: &World) -> (DatasetSnapshot, Vec<Vrp>, BgpTable) {
    let snap = world.snapshot(world.config.weeks - 1);
    let vrps = snap.vrps();
    let bgp: BgpTable = snap.routes.iter().collect();
    (snap, vrps, bgp)
}
