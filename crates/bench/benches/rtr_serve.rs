//! The fan-out service bench: one churn timeline served to a fleet of
//! concurrent RTR sessions through `rtr::server::FanoutServer`.
//!
//! Phase A (untimed, correctness): `MAXLENGTH_SESSIONS` routers (default
//! 1024) synchronize against one cache, then follow every epoch of a
//! seeded churn timeline — notify, serial query, delta — with bytes and
//! wall time recorded per epoch. Before anything is timed, every
//! router's final VRP set must be **bit-identical** to an independent
//! `CacheServer` replay of the same timeline (the model-checked oracle)
//! and to the timeline's own final set.
//!
//! Phase B (timed, gated): one epoch of fan-out + fleet catch-up under
//! the shared-image server versus the per-session baseline that
//! re-serializes the delta response for every router. Shared
//! serialization must stay ≥2x — that is the point of building the
//! images once per epoch.
//!
//! ```sh
//! MAXLENGTH_SESSIONS=4096 cargo bench -p rpki-bench --bench rtr_serve
//! ```

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use rpki_bench::harness::{record_bench_json, usize_from_env};
use rpki_datasets::{ChurnConfig, ChurnGenerator, ChurnProfile, GeneratorConfig, World};
use rpki_roa::Vrp;
use rpki_rtr::cache::CacheServer;
use rpki_rtr::pdu::{Pdu, PROTOCOL_V1};
use rpki_rtr::server::{FanoutServer, SessionId};
use rpki_rtr::wire::decode_frame;
use rpki_rtr::RouterClient;

const SESSION: u16 = 77;

fn world_vrps(scale: f64) -> Vec<Vrp> {
    World::generate(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
    .snapshot(7)
    .vrps()
}

fn encode(pdu: &Pdu) -> Vec<u8> {
    let mut out = Vec::new();
    pdu.as_wire().encode_into(PROTOCOL_V1, &mut out);
    out
}

/// One fleet member: a fan-out session id, the router state machine,
/// and its private cache→router byte pipe.
struct Member {
    id: SessionId,
    router: RouterClient,
    pipe: Vec<u8>,
}

/// Feeds every complete in-flight frame to the member's router;
/// returns `true` once an End of Data completed a response.
fn absorb(member: &mut Member) -> bool {
    let mut synced = false;
    loop {
        let Some(frame) = decode_frame(&member.pipe).expect("server output must decode") else {
            return synced;
        };
        let pdu = frame.pdu.to_owned();
        let len = frame.len;
        member.pipe.drain(..len);
        synced = member
            .router
            .handle(&pdu)
            .expect("server output must be valid");
    }
}

/// Runs one synchronization (one outstanding query at a time, like a
/// real router) and returns the bytes moved in both directions.
fn synchronize(server: &mut FanoutServer, member: &mut Member) -> usize {
    let mut bytes = 0usize;
    for _round in 0..8 {
        bytes += server.drain_output(member.id, &mut member.pipe);
        absorb(member);
        let query = encode(&member.router.query());
        bytes += query.len();
        server.receive(member.id, &query);
        bytes += server.drain_output(member.id, &mut member.pipe);
        if absorb(member) {
            return bytes;
        }
    }
    panic!("router did not converge within the retry budget");
}

fn bench_rtr_serve(c: &mut Criterion) {
    let sessions = usize_from_env("MAXLENGTH_SESSIONS", 1024);
    let epochs = usize_from_env("MAXLENGTH_EPOCHS", 8);
    let initial = world_vrps(0.02);
    let timeline = ChurnGenerator::new(
        initial.iter().copied(),
        ChurnConfig {
            epochs,
            events_per_epoch: 64,
            profile: ChurnProfile::Mixed,
            ..ChurnConfig::default()
        },
    )
    .generate();

    // ---- Phase A: fan the timeline out, bytes + time per epoch. -------
    let mut server = FanoutServer::new(CacheServer::new(SESSION, &timeline.initial));
    let mut fleet: Vec<Member> = (0..sessions)
        .map(|_| Member {
            id: server.open_session(),
            router: RouterClient::new(),
            pipe: Vec::new(),
        })
        .collect();
    for member in &mut fleet {
        synchronize(&mut server, member);
    }
    println!(
        "rtr_serve: {} sessions over {} initial VRPs, {} epochs x 64 events",
        sessions,
        timeline.initial.len(),
        timeline.epochs.len()
    );
    println!(" epoch      bytes        ms");
    let mut epoch_bytes = Vec::with_capacity(timeline.epochs.len());
    let mut epoch_ns = Vec::with_capacity(timeline.epochs.len());
    for (e, epoch) in timeline.epochs.iter().enumerate() {
        let t0 = Instant::now();
        server.update_delta_and_notify(&epoch.announced, &epoch.withdrawn);
        let mut bytes = 0usize;
        for member in &mut fleet {
            bytes += synchronize(&mut server, member);
        }
        let dt = t0.elapsed();
        println!("{e:>6} {bytes:>10} {:>9.2}", dt.as_secs_f64() * 1e3);
        epoch_bytes.push(bytes as f64);
        epoch_ns.push(dt.as_secs_f64() * 1e9);
    }

    // ---- The oracle gate: every router == independent cache replay. ----
    let mut oracle = CacheServer::new(SESSION, &timeline.initial);
    for epoch in &timeline.epochs {
        let _ = oracle.update_delta(&epoch.announced, &epoch.withdrawn);
    }
    let expect: Vec<Vrp> = oracle.vrps().copied().collect();
    assert_eq!(
        expect,
        timeline.final_vrps(),
        "oracle replay must land on the timeline's final set"
    );
    for (i, member) in fleet.iter().enumerate() {
        let got: Vec<Vrp> = member.router.vrps().iter().copied().collect();
        assert_eq!(got, expect, "router {i} final VRP set != oracle");
        assert_eq!(member.router.serial(), oracle.serial(), "router {i} serial");
    }
    let stats = server.stats();
    assert!(
        stats.images_reused >= 10 * stats.images_built.max(1),
        "fan-out must share images, not rebuild them: built {} reused {}",
        stats.images_built,
        stats.images_reused
    );
    println!(
        "oracle: {} routers bit-identical to the CacheServer replay \
         (images built {}, reused {})",
        sessions, stats.images_built, stats.images_reused
    );

    // ---- Phase B: shared-image fan-out vs per-session serialization. ---
    // A synthetic 64-record block toggles in and out so every timed
    // epoch carries the same clean delta shape on both sides.
    let block: Vec<Vrp> = (0..64u32)
        .map(|i| {
            format!("203.0.{}.0/24 => AS{}", i, 64900 + i)
                .parse()
                .unwrap()
        })
        .collect();
    let mut group = c.benchmark_group("rtr_serve");
    group.throughput(Throughput::Elements(sessions as u64));
    group.sample_size(10);
    let mut shared_ns = 0.0f64;
    let mut per_session_ns = 0.0f64;
    let mut scratch: Vec<u8> = Vec::new();
    let mut announce = true;
    group.bench_function("shared", |b| {
        b.iter(|| {
            if announce {
                server.update_delta_and_notify(&block, &[]);
            } else {
                server.update_delta_and_notify(&[], &block);
            }
            announce = !announce;
            let query = encode(&Pdu::SerialQuery {
                session_id: SESSION,
                serial: server.cache().serial().wrapping_sub(1),
            });
            scratch.clear();
            for member in &fleet {
                server.receive(member.id, &query);
                server.drain_output(member.id, &mut scratch);
            }
            scratch.len()
        });
        shared_ns = b.mean_ns();
    });
    let mut baseline = oracle.clone();
    let mut announce = true;
    group.bench_function("per_session", |b| {
        b.iter(|| {
            if announce {
                let _ = baseline.update_delta(&block, &[]);
            } else {
                let _ = baseline.update_delta(&[], &block);
            }
            announce = !announce;
            let query = Pdu::SerialQuery {
                session_id: SESSION,
                serial: baseline.serial().wrapping_sub(1),
            };
            scratch.clear();
            for _ in 0..sessions {
                // No sharing: every session re-walks the history and
                // re-encodes its own copy of the response.
                for pdu in baseline.handle(&query) {
                    pdu.as_wire().encode_into(PROTOCOL_V1, &mut scratch);
                }
            }
            scratch.len()
        });
        per_session_ns = b.mean_ns();
    });
    group.finish();

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    record_bench_json("rtr_serve/shared", sessions as f64, shared_ns);
    record_bench_json("rtr_serve/per_session", sessions as f64, per_session_ns);
    record_bench_json(
        "rtr_serve/bytes-per-epoch",
        sessions as f64,
        mean(&epoch_bytes),
    );
    record_bench_json("rtr_serve/ns-per-epoch", sessions as f64, mean(&epoch_ns));
    let speedup = per_session_ns / shared_ns;
    println!(
        "rtr_serve: shared {:.2} ms/epoch, per-session {:.2} ms/epoch -> {speedup:.2}x",
        shared_ns / 1e6,
        per_session_ns / 1e6,
    );
    assert!(
        speedup >= 2.0,
        "shared serialization regressed below 2x the per-session baseline: {speedup:.2}x"
    );
}

criterion_group!(benches, bench_rtr_serve);
criterion_main!(benches);
