//! Ablation for the live-churn pipeline: per-epoch incremental
//! revalidation over the frozen snapshot chain vs the naive router that
//! rebuilds and revalidates its whole table on every delta, on the same
//! timeline, at two world scales.
//!
//! This is the §6 router-load claim in bench form: a cache refresh
//! changes a few hundred VRPs out of tens of thousands, so revalidating
//! only the covered routes must beat re-scanning the whole table — and
//! by a growing margin as the table grows.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rpki_datasets::{
    ChurnConfig, ChurnGenerator, ChurnProfile, ChurnTimeline, GeneratorConfig, World,
};
use rpki_roa::{RouteOrigin, Vrp};
use rpki_rov::{ChainConfig, SnapshotChainEngine, ValidationState, VrpIndex};

fn fixture(scale: f64) -> (Vec<RouteOrigin>, ChurnTimeline) {
    let world = World::generate(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    });
    let snap = world.snapshot(7);
    let timeline = ChurnGenerator::new(
        snap.vrps(),
        ChurnConfig {
            epochs: 8,
            events_per_epoch: 64,
            profile: ChurnProfile::Mixed,
            ..ChurnConfig::default()
        },
    )
    .generate();
    (snap.routes, timeline)
}

fn replay_incremental(engine: &mut SnapshotChainEngine, timeline: &ChurnTimeline) -> usize {
    timeline
        .epochs
        .iter()
        .map(|e| engine.apply_epoch(&e.announced, &e.withdrawn).changes.len())
        .sum()
}

/// The naive router: apply the delta to a plain set, rebuild + freeze the
/// index, and revalidate the entire table — every epoch. No incremental
/// machinery anywhere, so the timing is a fair baseline.
fn replay_full(
    routes: &[RouteOrigin],
    timeline: &ChurnTimeline,
) -> Vec<(RouteOrigin, ValidationState)> {
    let mut set: BTreeSet<Vrp> = timeline.initial.iter().copied().collect();
    let mut states = Vec::new();
    for e in &timeline.epochs {
        for v in &e.announced {
            set.insert(*v);
        }
        for v in &e.withdrawn {
            set.remove(v);
        }
        let frozen = set.iter().copied().collect::<VrpIndex>().freeze();
        states = routes.iter().map(|r| (*r, frozen.validate(r))).collect();
    }
    states
}

fn bench_churn(c: &mut Criterion) {
    for scale in [0.05, 0.2] {
        let (routes, timeline) = fixture(scale);
        let make_engine = || {
            SnapshotChainEngine::new(
                routes.iter().copied(),
                timeline.initial.iter().copied(),
                ChainConfig::default(),
            )
        };

        // Both paths must land on identical states before we time them.
        let mut incremental = make_engine();
        replay_incremental(&mut incremental, &timeline);
        let mut naive = replay_full(&routes, &timeline);
        naive.sort_unstable_by_key(|(r, _)| *r);
        assert_eq!(
            incremental.states(),
            naive,
            "paths diverged at scale {scale}"
        );

        let mut group = c.benchmark_group(format!("churn/revalidate/scale-{scale}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(timeline.epochs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("incremental_chain", routes.len()),
            &timeline,
            |bencher, timeline| {
                bencher.iter_batched(
                    make_engine,
                    |mut engine| replay_incremental(&mut engine, timeline),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_revalidate_all", routes.len()),
            &timeline,
            |bencher, timeline| bencher.iter(|| replay_full(&routes, timeline)),
        );
        group.finish();
    }
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
