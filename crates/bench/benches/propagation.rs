//! Criterion ablation for the flat-graph propagation engine: the
//! zero-allocation bucket-queue engine vs the kept heap-based reference
//! (`propagate_reference`) on one staged hijack trial — and the
//! assertion, before any timing, that the two are **bit-identical** (the
//! contract `engine_props` pins down).
//!
//! Two filter regimes per topology size:
//!
//! * `accept-all` — isolates the structural speedup (CSR phase slices,
//!   bucket queue, reusable workspace vs per-call heap allocation);
//! * `rov-filtered` — the shape every staged trial actually runs: the
//!   engine side uses a precomputed [`OriginFilter`] (one VRP resolution
//!   per origin + a compiled adopter bitset), the reference side pays a
//!   trie validation per edge relaxation, exactly as `run_strategy` did
//!   before the engine landed.
//!
//! Set `MAXLENGTH_BENCH_JSON=path` to append machine-readable
//! `{"bench", "scale", "ns_per_iter"}` records for the PR perf trail.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bgpsim::engine::{CompiledPolicies, OriginFilter};
use bgpsim::routing::{propagate_reference, Seed};
use bgpsim::topology::{Topology, TopologyConfig};
use bgpsim::{PropagationEngine, Workspace};
use rpki_bench::harness::record_bench_json;
use rpki_prefix::Prefix;
use rpki_roa::{Asn, RouteOrigin, Vrp};
use rpki_rov::{RovPolicy, VrpIndex};

struct Trial {
    topology: Topology,
    seeds: [Seed; 2],
    vrps: VrpIndex,
    policies: Vec<RovPolicy>,
    prefix: Prefix,
}

/// One staged forged-origin trial: victim origination plus a forged
/// announcement, under a loose-maxLength ROA with ~¾ ROV adoption.
fn trial(n: usize) -> Trial {
    let topology = Topology::generate(TopologyConfig {
        n,
        ..TopologyConfig::default()
    });
    let stubs = topology.stubs();
    let (victim, attacker) = (stubs[0], stubs[stubs.len() / 2]);
    let prefix: Prefix = "168.122.0.0/16".parse().unwrap();
    let vrps: VrpIndex = [Vrp::new(prefix, 24, topology.asn(victim))]
        .into_iter()
        .collect();
    let policies: Vec<RovPolicy> = (0..topology.len())
        .map(|at| {
            if at % 4 == 0 {
                RovPolicy::AcceptAll
            } else {
                RovPolicy::DropInvalid
            }
        })
        .collect();
    let seeds = [
        Seed::origin(victim, topology.asn(victim)),
        Seed::forged(attacker, topology.asn(victim)),
    ];
    Trial {
        topology,
        seeds,
        vrps,
        policies,
        prefix,
    }
}

fn bench_propagation(c: &mut Criterion) {
    for n in [1_000usize, 10_000] {
        let t = trial(n);
        let engine = PropagationEngine::new(&t.topology);
        let compiled = CompiledPolicies::compile(&t.policies);
        let origins = [t.seeds[0].claimed_origin];
        let fast_filter = OriginFilter::new(&t.vrps, t.prefix, &origins, &compiled);
        let edge_filter = |at: usize, origin: Asn| -> bool {
            t.policies[at].permits(t.vrps.validate(&RouteOrigin::new(t.prefix, origin)))
        };

        // Equivalence before speed: engine output must be bit-identical
        // to the reference under both filter regimes.
        let mut ws = Workspace::new();
        assert_eq!(
            engine
                .propagate(&t.seeds, &|_: usize, _: Asn| true, &mut ws)
                .routes()
                .to_vec(),
            propagate_reference(&t.topology, &t.seeds, &|_, _| true).routes(),
            "engine diverged from reference (accept-all, n={n})"
        );
        assert_eq!(
            engine
                .propagate(
                    &t.seeds,
                    &|at: usize, o: Asn| fast_filter.accept(at, o),
                    &mut ws
                )
                .routes()
                .to_vec(),
            propagate_reference(&t.topology, &t.seeds, &edge_filter).routes(),
            "engine diverged from reference (rov-filtered, n={n})"
        );

        let mut speedups: Vec<(String, f64)> = Vec::new();
        for (regime, engine_side, reference_side) in [
            (
                "accept-all",
                Box::new(|ws: &mut Workspace| {
                    engine.propagate(&t.seeds, &|_: usize, _: Asn| true, ws)
                }) as Box<dyn Fn(&mut Workspace) -> bgpsim::Propagation>,
                Box::new(|| propagate_reference(&t.topology, &t.seeds, &|_, _| true))
                    as Box<dyn Fn() -> bgpsim::Propagation>,
            ),
            (
                "rov-filtered",
                Box::new(|ws: &mut Workspace| {
                    engine.propagate(&t.seeds, &|at: usize, o: Asn| fast_filter.accept(at, o), ws)
                }),
                Box::new(|| propagate_reference(&t.topology, &t.seeds, &edge_filter)),
            ),
        ] {
            let mut group = c.benchmark_group(format!("propagation/{regime}/n-{n}"));
            group.throughput(Throughput::Elements(n as u64));
            let mut engine_ns = 0.0;
            let mut reference_ns = 0.0;
            group.bench_with_input(BenchmarkId::new("engine", n), &t, |b, _| {
                let mut ws = Workspace::new();
                b.iter(|| engine_side(&mut ws));
                engine_ns = b.mean_ns();
            });
            group.bench_with_input(BenchmarkId::new("reference", n), &t, |b, _| {
                b.iter(&reference_side);
                reference_ns = b.mean_ns();
            });
            group.finish();
            record_bench_json(&format!("propagation/{regime}/engine"), n as f64, engine_ns);
            record_bench_json(
                &format!("propagation/{regime}/reference"),
                n as f64,
                reference_ns,
            );
            speedups.push((regime.to_string(), reference_ns / engine_ns));
        }
        // The full-trial regime: what `run_strategy` actually runs per
        // staged head-to-head trial — the engine side propagates and
        // tallies interception in one pass off the workspace (no
        // materialized route vector), the reference side propagates with
        // per-edge validation and then scans the routes, exactly as the
        // trial loop did before the engine landed.
        let (victim, attacker) = (t.seeds[0].at, t.seeds[1].at);
        let engine_trial = |ws: &mut Workspace| {
            engine.propagate_outcome(
                &t.seeds,
                &|at: usize, o: Asn| fast_filter.accept(at, o),
                ws,
                None,
                attacker,
                victim,
            )
        };
        let reference_trial = || {
            let prop = propagate_reference(&t.topology, &t.seeds, &edge_filter);
            let mut intercepted = 0usize;
            let mut legitimate = 0usize;
            let mut disconnected = 0usize;
            for (at, route) in prop.routes().iter().enumerate() {
                if at == attacker || at == victim {
                    continue;
                }
                match route {
                    Some(info) if info.delivers_to == attacker => intercepted += 1,
                    Some(_) => legitimate += 1,
                    None => disconnected += 1,
                }
            }
            (intercepted, legitimate, disconnected)
        };
        {
            let outcome = engine_trial(&mut ws);
            assert_eq!(
                (
                    outcome.intercepted,
                    outcome.legitimate,
                    outcome.disconnected
                ),
                reference_trial(),
                "trial tally diverged (n={n})"
            );
            let mut group = c.benchmark_group(format!("propagation/trial/n-{n}"));
            group.throughput(Throughput::Elements(n as u64));
            let mut engine_ns = 0.0;
            let mut reference_ns = 0.0;
            group.bench_with_input(BenchmarkId::new("engine", n), &t, |b, _| {
                let mut ws = Workspace::new();
                b.iter(|| engine_trial(&mut ws));
                engine_ns = b.mean_ns();
            });
            group.bench_with_input(BenchmarkId::new("reference", n), &t, |b, _| {
                b.iter(reference_trial);
                reference_ns = b.mean_ns();
            });
            group.finish();
            record_bench_json("propagation/trial/engine", n as f64, engine_ns);
            record_bench_json("propagation/trial/reference", n as f64, reference_ns);
            speedups.push(("trial".to_string(), reference_ns / engine_ns));
        }

        for (regime, speedup) in &speedups {
            println!("propagation/{regime}/n-{n}: engine is {speedup:.1}x the reference");
        }
        // The trial regime is the production path; the issue's target is
        // ≥5x at the default topology scale (n = 1000).
        if n == 1_000 {
            let (_, trial_speedup) = speedups
                .iter()
                .find(|(regime, _)| regime == "trial")
                .expect("trial regime benched");
            assert!(
                *trial_speedup >= 5.0,
                "engine speedup regressed below 5x on the trial path: {trial_speedup:.1}x"
            );
        }
    }
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
