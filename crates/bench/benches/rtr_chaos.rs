//! The chaos soak bench: recovery latency of the RFC 8210 timer layer
//! under seeded fault injection.
//!
//! Phase A (untimed, correctness): for every fault profile
//! (none/light/heavy) and a spread of seeds, a `ChaosSession` follows a
//! seeded churn timeline and every settle must uphold the
//! convergence-or-Stale invariant against an independent `CacheServer`
//! replay — zero panics, zero livelocks (the settle loop's hard cap
//! turns a livelock into a failure). One seed is replayed to assert the
//! recovery trace is deterministic byte for byte.
//!
//! Phase B (timed): one churn epoch plus full settle under the light
//! fault profile — the steady-state cost of running the fleet behind
//! the fault-tolerant recovery loop rather than a bare synchronize.
//!
//! Recorded to the JSON trail: the timed settle cost, plus three soak
//! metrics from the heavy-profile sweep — mean attempts per epoch,
//! mean virtual recovery time, and the convergence rate.
//!
//! ```sh
//! MAXLENGTH_CHAOS_SEEDS=64 cargo bench -p rpki-bench --bench rtr_chaos
//! ```

use criterion::{criterion_group, criterion_main, Criterion};

use rpki_bench::harness::{record_bench_json, usize_from_env};
use rpki_datasets::{ChurnConfig, ChurnGenerator, ChurnProfile};
use rpki_roa::Vrp;
use rpki_rtr::cache::CacheServer;
use rpki_rtr::faults::{ChaosOptions, ChaosSession, FaultConfig};

const SESSION: u16 = 78;

/// The soak world: small enough that a full Reset Query rebuild (one
/// frame per VRP) has a real chance of crossing a faulty pipe intact.
/// Fault rates here are *per frame*, so survival of an n-frame response
/// is `(1 - rate)^n` — tuning is against this curve, not intuition.
fn initial_vrps() -> Vec<Vrp> {
    (0..48u32)
        .map(|i| {
            format!(
                "10.{}.{}.0/24 => AS{}",
                (i >> 8) & 0xFF,
                i & 0xFF,
                64496 + i
            )
            .parse()
            .unwrap()
        })
        .collect()
}

/// Scales every per-frame fault rate, mapping the small-epoch test
/// profiles onto soak-sized responses (tens of frames per exchange).
fn scaled(config: FaultConfig, by: f64) -> FaultConfig {
    FaultConfig {
        drop: config.drop * by,
        truncate: config.truncate * by,
        corrupt: config.corrupt * by,
        garbage: config.garbage * by,
        stall: config.stall * by,
        disconnect: config.disconnect * by,
    }
}

/// Soak counters from one full chaos run.
#[derive(Debug, Default, Clone, Copy)]
struct Soak {
    epochs: usize,
    attempts: u64,
    virtual_ns: f64,
    converged: usize,
}

/// Runs one seeded chaos session over the timeline, asserting the
/// invariant and the oracle identity at every epoch.
fn run_chaos(
    seed: u64,
    profile: FaultConfig,
    initial: &[Vrp],
    epochs: &[(Vec<Vrp>, Vec<Vrp>)],
) -> (Soak, Vec<rpki_rtr::TraceEvent>) {
    let mut soak = Soak::default();
    let mut oracle = CacheServer::new(SESSION, initial);
    let mut chaos =
        ChaosSession::with_options(SESSION, initial, seed, profile, ChaosOptions::default());
    for (announced, withdrawn) in epochs {
        oracle.update_delta(announced, withdrawn);
        chaos.apply_epoch(announced, withdrawn);
        let settled = chaos.settle();
        assert!(
            settled.invariant_holds(),
            "seed {seed}: chaos invariant violated (converged={}, freshness={:?})",
            settled.converged,
            settled.freshness
        );
        if settled.converged {
            assert!(
                chaos.router().vrps().iter().eq(oracle.vrps())
                    && chaos.router().serial() == oracle.serial(),
                "seed {seed}: converged router diverges from the oracle replay"
            );
            soak.converged += 1;
        }
        soak.epochs += 1;
        soak.attempts += u64::from(settled.attempts);
        soak.virtual_ns += settled.virtual_elapsed.as_nanos() as f64;
    }
    (soak, chaos.trace().to_vec())
}

fn bench_rtr_chaos(c: &mut Criterion) {
    let seeds = usize_from_env("MAXLENGTH_CHAOS_SEEDS", 20);
    let epochs = usize_from_env("MAXLENGTH_EPOCHS", 6);
    let initial = initial_vrps();
    let timeline = ChurnGenerator::new(
        initial.iter().copied(),
        ChurnConfig {
            epochs,
            events_per_epoch: 16,
            profile: ChurnProfile::Mixed,
            ..ChurnConfig::default()
        },
    )
    .generate();
    let deltas: Vec<(Vec<Vrp>, Vec<Vrp>)> = timeline
        .epochs
        .iter()
        .map(|e| (e.announced.clone(), e.withdrawn.clone()))
        .collect();

    // ---- Phase A: the invariant sweep across profiles and seeds. ------
    println!(
        "rtr_chaos: {} seeds x {} epochs over {} initial VRPs",
        seeds,
        deltas.len(),
        timeline.initial.len()
    );
    let mut heavy = Soak::default();
    for (name, profile) in [
        ("none", FaultConfig::none()),
        ("light", scaled(FaultConfig::light(), 0.1)),
        ("heavy", scaled(FaultConfig::heavy(), 0.1)),
    ] {
        let mut total = Soak::default();
        for seed in 0..seeds as u64 {
            let (soak, _) = run_chaos(seed, profile, &timeline.initial, &deltas);
            total.epochs += soak.epochs;
            total.attempts += soak.attempts;
            total.virtual_ns += soak.virtual_ns;
            total.converged += soak.converged;
        }
        println!(
            " {name:>5}: {:.2} attempts/epoch, {:.1}s virtual recovery/epoch, \
             {:.1}% converged",
            total.attempts as f64 / total.epochs as f64,
            total.virtual_ns / total.epochs as f64 / 1e9,
            100.0 * total.converged as f64 / total.epochs as f64,
        );
        if name == "none" {
            assert_eq!(
                total.converged, total.epochs,
                "the fault-free profile must always converge"
            );
        }
        if name == "heavy" {
            heavy = total;
        }
    }

    // ---- The determinism gate: one seed, two runs, identical traces. --
    let soak_heavy = scaled(FaultConfig::heavy(), 0.1);
    let (_, trace_a) = run_chaos(7, soak_heavy, &timeline.initial, &deltas);
    let (_, trace_b) = run_chaos(7, soak_heavy, &timeline.initial, &deltas);
    assert_eq!(
        trace_a, trace_b,
        "the same seed must replay the same recovery trace"
    );
    println!(
        "determinism: seed 7 replays {} trace events byte-for-byte",
        trace_a.len()
    );

    // ---- Phase B: timed epoch + settle under the light profile. -------
    let block: Vec<Vrp> = (0..16u32)
        .map(|i| {
            format!("203.0.{}.0/24 => AS{}", i, 64900 + i)
                .parse()
                .unwrap()
        })
        .collect();
    let mut chaos = ChaosSession::with_options(
        SESSION,
        &timeline.initial,
        11,
        scaled(FaultConfig::light(), 0.1),
        ChaosOptions::default(),
    );
    assert!(chaos.settle().invariant_holds());
    let mut group = c.benchmark_group("rtr_chaos");
    group.sample_size(10);
    let mut settle_ns = 0.0f64;
    let mut announce = true;
    group.bench_function("settle", |b| {
        b.iter(|| {
            if announce {
                chaos.apply_epoch(&block, &[]);
            } else {
                chaos.apply_epoch(&[], &block);
            }
            announce = !announce;
            let settled = chaos.settle();
            assert!(settled.invariant_holds());
            settled.attempts
        });
        settle_ns = b.mean_ns();
    });
    group.finish();

    record_bench_json("rtr_chaos/settle", seeds as f64, settle_ns);
    record_bench_json(
        "rtr_chaos/attempts-per-epoch",
        seeds as f64,
        heavy.attempts as f64 / heavy.epochs as f64,
    );
    record_bench_json(
        "rtr_chaos/virtual-recovery-ns",
        seeds as f64,
        heavy.virtual_ns / heavy.epochs as f64,
    );
    record_bench_json(
        "rtr_chaos/converged-rate",
        seeds as f64,
        heavy.converged as f64 / heavy.epochs as f64,
    );
    println!(
        "rtr_chaos: settle {:.2} ms/epoch under light faults; heavy profile \
         {:.2} attempts/epoch, {:.1}% converged",
        settle_ns / 1e6,
        heavy.attempts as f64 / heavy.epochs as f64,
        100.0 * heavy.converged as f64 / heavy.epochs as f64,
    );
}

criterion_group!(benches, bench_rtr_chaos);
criterion_main!(benches);
