//! Ablation: trie-backed route origin validation vs a linear VRP scan.
//!
//! RFC 6811 validation is on every BGP update's hot path; this bench
//! justifies the radix-trie `VrpIndex` over the obvious `Vec` scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rpki_datasets::{GeneratorConfig, World};
use rpki_roa::{RouteOrigin, Vrp};
use rpki_rov::{ValidationState, VrpIndex};

fn linear_validate(vrps: &[Vrp], route: &RouteOrigin) -> ValidationState {
    if vrps.iter().any(|v| v.matches(route)) {
        ValidationState::Valid
    } else if vrps.iter().any(|v| v.covers(route)) {
        ValidationState::Invalid
    } else {
        ValidationState::NotFound
    }
}

fn bench_validation(c: &mut Criterion) {
    let world = World::generate(GeneratorConfig {
        scale: 0.05,
        ..GeneratorConfig::default()
    });
    let snap = world.snapshot(7);
    let vrps = snap.vrps();
    let index: VrpIndex = vrps.iter().copied().collect();
    // Validate a slice of the real table: mixed Valid/Invalid/NotFound.
    let routes: Vec<RouteOrigin> = snap.routes.iter().step_by(97).copied().collect();

    let mut group = c.benchmark_group("ablation/rov");
    group.throughput(Throughput::Elements(routes.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("trie_index", vrps.len()),
        &routes,
        |b, routes| {
            b.iter(|| {
                routes
                    .iter()
                    .filter(|r| index.validate(r) == ValidationState::Valid)
                    .count()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("linear_scan", vrps.len()),
        &routes,
        |b, routes| {
            b.iter(|| {
                routes
                    .iter()
                    .filter(|r| linear_validate(&vrps, r) == ValidationState::Valid)
                    .count()
            })
        },
    );
    group.finish();
}

fn bench_table_validation(c: &mut Criterion) {
    // The tentpole comparison: the same whole-table validation on the
    // mutable trie, on the frozen snapshot, and on the frozen snapshot
    // with the parallel reduction — at two world scales.
    for scale in [0.05, 0.2] {
        let world = World::generate(GeneratorConfig {
            scale,
            ..GeneratorConfig::default()
        });
        let snap = world.snapshot(7);
        let vrps = snap.vrps();
        let index: VrpIndex = vrps.iter().copied().collect();
        let frozen = index.freeze();
        let routes: Vec<RouteOrigin> = snap.routes.clone();

        // All three engines must tally identically before we time them.
        let expect = index.validate_table(routes.iter());
        assert_eq!(frozen.validate_table(routes.iter()), expect);
        assert_eq!(frozen.validate_table_par(&routes), expect);

        let mut group = c.benchmark_group(format!("rov/validate_table/scale-{scale}"));
        group.throughput(Throughput::Elements(routes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("sequential_trie", routes.len()),
            &routes,
            |b, routes| b.iter(|| index.validate_table(routes.iter())),
        );
        group.bench_with_input(
            BenchmarkId::new("frozen", routes.len()),
            &routes,
            |b, routes| b.iter(|| frozen.validate_table(routes.iter())),
        );
        group.bench_with_input(
            BenchmarkId::new("frozen_parallel", routes.len()),
            &routes,
            |b, routes| b.iter(|| frozen.validate_table_par(routes)),
        );
        group.finish();
    }
}

fn bench_index_build(c: &mut Criterion) {
    let world = World::generate(GeneratorConfig {
        scale: 0.05,
        ..GeneratorConfig::default()
    });
    let vrps = world.snapshot(7).vrps();
    let mut group = c.benchmark_group("rov/index_build");
    group.throughput(Throughput::Elements(vrps.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(vrps.len()), |b| {
        b.iter(|| vrps.iter().copied().collect::<VrpIndex>())
    });
    group.finish();
}

fn bench_revalidation(c: &mut Criterion) {
    use rpki_rov::RevalidationEngine;
    // RFC 6811 revalidation on VRP change: incremental (affected subtree
    // only) vs naive full-table revalidation.
    let world = World::generate(GeneratorConfig {
        scale: 0.02,
        ..GeneratorConfig::default()
    });
    let snap = world.snapshot(7);
    let vrps = snap.vrps();
    let delta: Vrp = "10.0.0.0/8-24 => AS424242".parse().unwrap();

    let mut group = c.benchmark_group("ablation/revalidation");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("incremental", snap.routes.len()), |b| {
        b.iter_batched(
            || RevalidationEngine::new(snap.routes.iter().copied(), vrps.iter().copied()),
            |mut engine| engine.announce_vrp(delta),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("full_table", snap.routes.len()), |b| {
        b.iter_batched(
            || {
                let mut engine =
                    RevalidationEngine::new(snap.routes.iter().copied(), vrps.iter().copied());
                engine.announce_vrp(delta);
                engine
            },
            |mut engine| engine.revalidate_all(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_validation,
    bench_table_validation,
    bench_index_build,
    bench_revalidation
);
criterion_main!(benches);
