//! Internet-scale gate: propagation at n = 80,000 ASes / ~500k links —
//! the real AS-level internet's order of magnitude, which the
//! paper-scale grids (n ≤ 10k) cannot show.
//!
//! Before any timing the bench asserts the internet-scale contracts the
//! proptests cannot reach at this size (the heap-based reference is too
//! slow to differentially test against 80k ASes):
//!
//! * the generator is **deterministic**: two builds from one seed
//!   produce byte-identical CSR arrays;
//! * the link count lands in the realistic band (~6 links per AS);
//! * a destination-sampled [`TrialPlan`] over the full graph is
//!   **seq-vs-par bit-identical** (the engine's 80k bit-identity gate).
//!
//! Timed regimes, recorded via `MAXLENGTH_BENCH_JSON`:
//!
//! * `topology/generate` — full graph construction (CSR flatten included);
//! * `topology/trial` — one staged forged-origin trial (propagate +
//!   tally) at internet scale: the headline per-trial cost;
//! * `topology/workspace-bytes` and `topology/topology-bytes` — the
//!   resident scratch and graph footprints (bytes in the `ns_per_iter`
//!   field), so memory regressions land in the same trail as time.
//!
//! `MAXLENGTH_TOPO_N` overrides the AS count (CI smokes at full n with
//! `MAXLENGTH_TRIALS`-reduced destination sampling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bgpsim::engine::{CompiledPolicies, OriginFilter};
use bgpsim::exec::{PlanTopology, TrialPlan};
use bgpsim::routing::Seed;
use bgpsim::topology::{InternetConfig, Topology};
use bgpsim::{
    AttackKind, CellAccumulator, DeploymentModel, DestinationSampler, Executor, PropagationEngine,
    RoaConfig, Workspace,
};
use rpki_bench::harness::{record_bench_json, topo_n_from_env, usize_from_env};
use rpki_prefix::Prefix;
use rpki_roa::{Asn, Vrp};
use rpki_rov::VrpIndex;

fn bench_topology(c: &mut Criterion) {
    let n = topo_n_from_env();
    let config = InternetConfig {
        n,
        ..InternetConfig::default()
    };

    // Determinism gate at full scale: same seed ⇒ byte-identical CSR.
    let topology = Topology::generate_internet(config);
    let again = Topology::generate_internet(config);
    assert_eq!(
        topology.csr_arrays(),
        again.csr_arrays(),
        "generator is not byte-identical across builds (n={n})"
    );
    drop(again);
    let links = topology.link_count();
    if n >= 10_000 {
        // ~6.2 links/AS at the default shape; a broad band so knob
        // tweaks don't trip it, tight enough to catch a broken phase.
        assert!(
            links >= 4 * n && links <= 9 * n,
            "link count {links} is outside the internet-like band for n={n}"
        );
    }
    println!(
        "topology: n={n} links={links} stubs={} topology_bytes={}",
        topology.stubs().len(),
        topology.memory_bytes()
    );

    // One staged forged-origin trial at internet scale: loose-maxLength
    // ROA, ~¾ ROV adoption, the engine's precomputed filter path.
    let stubs = topology.stubs();
    let (victim, attacker) = (stubs[0], stubs[stubs.len() / 2]);
    let prefix: Prefix = "168.122.0.0/16".parse().unwrap();
    let victim_asn = topology.asn(victim);
    let vrps: VrpIndex = [Vrp::new(prefix, 24, victim_asn)].into_iter().collect();
    let policies = DeploymentModel::Uniform { p: 0.75 }.policies(&topology, config.seed);
    let compiled = CompiledPolicies::compile(&policies);
    let filter = OriginFilter::new(&vrps, prefix, &[victim_asn], &compiled);
    let seeds = [
        Seed::origin(victim, victim_asn),
        Seed::forged(attacker, victim_asn),
    ];
    let engine = PropagationEngine::new(&topology);
    let engine_trial = |ws: &mut Workspace| {
        engine.propagate_outcome(
            &seeds,
            &|at: usize, o: Asn| filter.accept(at, o),
            ws,
            None,
            attacker,
            victim,
        )
    };
    let mut ws = Workspace::new();
    let outcome = engine_trial(&mut ws);
    assert_eq!(
        outcome.intercepted + outcome.legitimate + outcome.disconnected,
        n - 2,
        "trial tally must cover every non-party AS"
    );
    let workspace_bytes = ws.memory_bytes();
    println!("topology: workspace_bytes={workspace_bytes} (n={n})");

    // Seq-vs-par bit-identity at internet scale, through the whole
    // executor stack on a destination-sampled plan (the reference
    // implementation is far too slow to differentially test here).
    let destinations = usize_from_env("MAXLENGTH_TRIALS", 8);
    let strategy = AttackKind::ForgedOriginSubprefixHijack;
    let plan = TrialPlan::new(
        vec![PlanTopology {
            label: format!("internet-{n}"),
            topology: &topology,
        }],
        vec![&strategy],
        vec![DeploymentModel::Uniform { p: 0.75 }],
        vec![RoaConfig::NonMinimalMaxLen],
        1,
        config.seed,
    )
    .with_destination_sampler(&DestinationSampler {
        count: destinations,
        seed: config.seed,
    });
    let seq: Vec<CellAccumulator> = Executor::sequential().run(&plan);
    let par: Vec<CellAccumulator> = Executor::parallel().run(&plan);
    assert_eq!(
        seq, par,
        "sequential and parallel executors diverged at n={n}"
    );

    let mut group = c.benchmark_group(format!("topology/generate/n-{n}"));
    group.throughput(Throughput::Elements(n as u64));
    let mut generate_ns = 0.0;
    group.bench_with_input(BenchmarkId::new("generate", n), &config, |b, &cfg| {
        b.iter(|| Topology::generate_internet(cfg));
        generate_ns = b.mean_ns();
    });
    group.finish();

    let mut group = c.benchmark_group(format!("topology/trial/n-{n}"));
    group.throughput(Throughput::Elements(n as u64));
    let mut trial_ns = 0.0;
    group.bench_with_input(BenchmarkId::new("trial", n), &(), |b, _| {
        let mut ws = Workspace::new();
        b.iter(|| engine_trial(&mut ws));
        trial_ns = b.mean_ns();
    });
    group.finish();

    record_bench_json("topology/generate", n as f64, generate_ns);
    record_bench_json("topology/trial", n as f64, trial_ns);
    record_bench_json("topology/workspace-bytes", n as f64, workspace_bytes as f64);
    record_bench_json(
        "topology/topology-bytes",
        n as f64,
        topology.memory_bytes() as f64,
    );
    println!(
        "topology/trial/n-{n}: {:.2} ms per staged trial, {:.1} bytes of workspace per AS",
        trial_ns / 1e6,
        workspace_bytes as f64 / n as f64
    );
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
