//! Criterion benches for `compress_roas` (§7.2) and the compression
//! ablations called out in DESIGN.md:
//!
//! 1. trie level-sweep (Algorithm 1) vs the naive quadratic fixpoint;
//! 2. Algorithm 1 vs the domination-eliminating `compress_roas_full`;
//! 3. sorted vs shuffled input order (the algorithm must be insensitive;
//!    this measures the cache cost only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use maxlength_core::bounds::full_deployment_minimal;
use maxlength_core::compress::{
    compress_roas, compress_roas_full, compress_roas_naive, compress_roas_parallel,
};
use maxlength_core::BgpTable;
use rpki_datasets::{GeneratorConfig, World};
use rpki_roa::Vrp;

fn dataset(scale: f64) -> (Vec<Vrp>, BgpTable) {
    let world = World::generate(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    });
    let snap = world.snapshot(7);
    (snap.vrps(), snap.routes.iter().collect())
}

fn bench_compress_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_roas/today");
    for scale in [0.01, 0.05, 0.25] {
        let (vrps, _) = dataset(scale);
        group.throughput(Throughput::Elements(vrps.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(vrps.len()), &vrps, |b, vrps| {
            b.iter(|| compress_roas(vrps))
        });
    }
    group.finish();
}

fn bench_compress_full_deployment(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_roas/full_deployment");
    group.sample_size(10);
    for scale in [0.05, 0.25] {
        let (_, bgp) = dataset(scale);
        let full = full_deployment_minimal(&bgp);
        group.throughput(Throughput::Elements(full.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(full.len()), &full, |b, full| {
            b.iter(|| compress_roas(full))
        });
    }
    group.finish();
}

fn bench_ablation_naive(c: &mut Criterion) {
    // The naive oracle is quadratic: keep it tiny.
    let (vrps, _) = dataset(0.003);
    let mut group = c.benchmark_group("ablation/algorithm");
    group.throughput(Throughput::Elements(vrps.len() as u64));
    group.bench_function("trie_sweep", |b| b.iter(|| compress_roas(&vrps)));
    group.bench_function("naive_fixpoint", |b| b.iter(|| compress_roas_naive(&vrps)));
    group.bench_function("full_with_domination", |b| {
        b.iter(|| compress_roas_full(&vrps))
    });
    group.finish();
}

fn bench_ablation_input_order(c: &mut Criterion) {
    let (mut vrps, _) = dataset(0.05);
    let mut group = c.benchmark_group("ablation/input_order");
    vrps.sort_unstable();
    group.bench_function("sorted", {
        let vrps = vrps.clone();
        move |b| b.iter(|| compress_roas(&vrps))
    });
    // Deterministic shuffle.
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in (1..vrps.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        vrps.swap(i, (state % (i as u64 + 1)) as usize);
    }
    group.bench_function("shuffled", move |b| b.iter(|| compress_roas(&vrps)));
    group.finish();
}

fn bench_ablation_parallel(c: &mut Criterion) {
    // §7.2's suggested optimization: parallelize across the independent
    // per-(ASN, AFI) tries.
    let (_, bgp) = dataset(0.25);
    let full = maxlength_core::bounds::full_deployment_minimal(&bgp);
    let mut group = c.benchmark_group("ablation/parallel_compress");
    group.sample_size(10);
    group.throughput(Throughput::Elements(full.len() as u64));
    group.bench_function("serial", |b| b.iter(|| compress_roas(&full)));
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| compress_roas_parallel(&full, threads)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compress_scaling,
    bench_compress_full_deployment,
    bench_ablation_naive,
    bench_ablation_input_order,
    bench_ablation_parallel
);
criterion_main!(benches);
