//! Benches for the rpki-rtr channel of Figure 1: PDU codec throughput,
//! the zero-copy cursor decoder against the legacy allocating decoder
//! (gated — the rewrite must stay ≥1.5x on the allocation-heavy
//! adversarial stream), and the serial-diff vs full-reset ablation (how
//! much the incremental protocol saves as the VRP set churns).

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rpki_bench::harness::record_bench_json;
use rpki_datasets::{GeneratorConfig, World};
use rpki_roa::Vrp;
use rpki_rtr::cache::CacheServer;
use rpki_rtr::pdu::{legacy, ErrorCode, Pdu};
use rpki_rtr::wire;

fn vrps(scale: f64) -> Vec<Vrp> {
    World::generate(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
    .snapshot(7)
    .vrps()
}

fn bench_codec(c: &mut Criterion) {
    let set = vrps(0.02);
    let cache = CacheServer::new(1, &set);
    let pdus = cache.handle(&Pdu::ResetQuery);
    let mut encoded = BytesMut::new();
    for p in &pdus {
        p.encode(&mut encoded);
    }
    let encoded = encoded.freeze();

    let mut group = c.benchmark_group("rtr/codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function(BenchmarkId::new("encode", pdus.len()), |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(encoded.len());
            for p in &pdus {
                p.encode(&mut buf);
            }
            buf
        })
    });
    group.bench_function(BenchmarkId::new("decode", pdus.len()), |b| {
        b.iter(|| {
            let mut view: &[u8] = &encoded;
            let mut n = 0usize;
            while let Some((_, used)) = Pdu::decode(view).expect("valid stream") {
                n += 1;
                view = &view[used..];
            }
            n
        })
    });
    group.finish();
}

/// Decodes a whole stream with the zero-copy wire layer, touching each
/// frame so the borrow is not optimized away.
fn decode_stream_wire(mut view: &[u8]) -> usize {
    let mut n = 0usize;
    while let Some(frame) = wire::decode_frame(view).expect("valid stream") {
        n += frame.pdu.type_code() as usize;
        view = &view[frame.len..];
    }
    n
}

/// The same walk through the legacy allocating decoder.
fn decode_stream_legacy(mut view: &[u8]) -> usize {
    let mut n = 0usize;
    while let Some((pdu, used, _)) = legacy::decode_versioned(view).expect("valid stream") {
        n += pdu.type_code() as usize;
        view = &view[used..];
    }
    n
}

/// Old decoder vs new on two stream shapes: the adversarial
/// Error-Report-heavy stream where zero-copy pays hardest (each legacy
/// decode allocates the embedded PDU and the diagnostic text; the wire
/// layer borrows both), and the ordinary prefix-sync stream. The
/// Error-Report comparison is the gate.
fn bench_codec_differential(c: &mut Criterion) {
    // ~512 Error Reports with a realistic embedded PDU and a chunky
    // diagnostic — the robustness-path traffic a hostile router feeds a
    // cache.
    let embedded = Pdu::Prefix {
        flags: rpki_rtr::pdu::Flags::Announce,
        vrp: Vrp::new("192.0.2.0/24".parse().unwrap(), 24, rpki_roa::Asn(64500)),
    }
    .to_bytes();
    let mut reports = BytesMut::new();
    for i in 0..512u32 {
        Pdu::ErrorReport {
            code: ErrorCode::CorruptData,
            pdu: Bytes::from(embedded.to_vec()),
            text: format!("corrupt frame #{i}: {}", "x".repeat(160)),
        }
        .encode(&mut reports);
    }
    let reports = reports.freeze();

    let set = vrps(0.02);
    let cache = CacheServer::new(1, &set);
    let mut prefixes = BytesMut::new();
    for p in cache.handle(&Pdu::ResetQuery) {
        p.encode(&mut prefixes);
    }
    let prefixes = prefixes.freeze();

    let mut group = c.benchmark_group("rtr/codec_differential");
    let mut ns = [0.0f64; 4];
    for (slot, (label, stream)) in [("error_reports", &reports), ("prefixes", &prefixes)]
        .into_iter()
        .enumerate()
    {
        group.throughput(Throughput::Bytes(stream.len() as u64));
        group.bench_function(BenchmarkId::new("wire", label), |b| {
            b.iter(|| decode_stream_wire(stream));
            ns[2 * slot] = b.mean_ns();
        });
        group.bench_function(BenchmarkId::new("legacy", label), |b| {
            b.iter(|| decode_stream_legacy(stream));
            ns[2 * slot + 1] = b.mean_ns();
        });
    }
    group.finish();

    let [wire_er, legacy_er, wire_px, legacy_px] = ns;
    record_bench_json("rtr/codec/error_reports/wire", 512.0, wire_er);
    record_bench_json("rtr/codec/error_reports/legacy", 512.0, legacy_er);
    record_bench_json("rtr/codec/prefixes/wire", set.len() as f64, wire_px);
    record_bench_json("rtr/codec/prefixes/legacy", set.len() as f64, legacy_px);
    println!(
        "rtr/codec decode: error_reports {:.2}x, prefixes {:.2}x (wire over legacy)",
        legacy_er / wire_er,
        legacy_px / wire_px,
    );
    let speedup = legacy_er / wire_er;
    assert!(
        speedup >= 1.5,
        "zero-copy decode regressed below 1.5x legacy on the error-report stream: {speedup:.2}x"
    );
}

/// Ablation: with `churn` of the set changing, compare the bytes a router
/// must process for a serial (delta) sync vs a full reset.
fn bench_delta_vs_reset(c: &mut Criterion) {
    let initial = vrps(0.02);
    let mut group = c.benchmark_group("ablation/rtr_sync");
    for churn_pct in [1usize, 10, 50] {
        let mut updated = initial.clone();
        let n_changed = updated.len() * churn_pct / 100;
        updated.truncate(updated.len() - n_changed); // withdrawals
        let mut cache = CacheServer::new(1, &initial);
        cache.update(&updated);

        group.bench_with_input(
            BenchmarkId::new("serial_delta", churn_pct),
            &cache,
            |b, cache| {
                b.iter(|| {
                    cache.handle(&Pdu::SerialQuery {
                        session_id: 1,
                        serial: 0,
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_reset", churn_pct),
            &cache,
            |b, cache| b.iter(|| cache.handle(&Pdu::ResetQuery)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_codec_differential,
    bench_delta_vs_reset
);
criterion_main!(benches);
