//! Benches for the rpki-rtr channel of Figure 1: PDU codec throughput and
//! the serial-diff vs full-reset ablation (how much the incremental
//! protocol saves as the VRP set churns).

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rpki_datasets::{GeneratorConfig, World};
use rpki_roa::Vrp;
use rpki_rtr::cache::CacheServer;
use rpki_rtr::pdu::Pdu;

fn vrps(scale: f64) -> Vec<Vrp> {
    World::generate(GeneratorConfig {
        scale,
        ..GeneratorConfig::default()
    })
    .snapshot(7)
    .vrps()
}

fn bench_codec(c: &mut Criterion) {
    let set = vrps(0.02);
    let cache = CacheServer::new(1, &set);
    let pdus = cache.handle(&Pdu::ResetQuery);
    let mut encoded = BytesMut::new();
    for p in &pdus {
        p.encode(&mut encoded);
    }
    let encoded = encoded.freeze();

    let mut group = c.benchmark_group("rtr/codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function(BenchmarkId::new("encode", pdus.len()), |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(encoded.len());
            for p in &pdus {
                p.encode(&mut buf);
            }
            buf
        })
    });
    group.bench_function(BenchmarkId::new("decode", pdus.len()), |b| {
        b.iter(|| {
            let mut view: &[u8] = &encoded;
            let mut n = 0usize;
            while let Some((_, used)) = Pdu::decode(view).expect("valid stream") {
                n += 1;
                view = &view[used..];
            }
            n
        })
    });
    group.finish();
}

/// Ablation: with `churn` of the set changing, compare the bytes a router
/// must process for a serial (delta) sync vs a full reset.
fn bench_delta_vs_reset(c: &mut Criterion) {
    let initial = vrps(0.02);
    let mut group = c.benchmark_group("ablation/rtr_sync");
    for churn_pct in [1usize, 10, 50] {
        let mut updated = initial.clone();
        let n_changed = updated.len() * churn_pct / 100;
        updated.truncate(updated.len() - n_changed); // withdrawals
        let mut cache = CacheServer::new(1, &initial);
        cache.update(&updated);

        group.bench_with_input(
            BenchmarkId::new("serial_delta", churn_pct),
            &cache,
            |b, cache| {
                b.iter(|| {
                    cache.handle(&Pdu::SerialQuery {
                        session_id: 1,
                        serial: 0,
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_reset", churn_pct),
            &cache,
            |b, cache| b.iter(|| cache.handle(&Pdu::ResetQuery)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_delta_vs_reset);
criterion_main!(benches);
