//! Criterion ablation for the unified trial executor on the scenario
//! matrix: the executor (deployment-keyed policy cache, shared
//! baselines, cross-deployment outcome replay, streaming accumulators)
//! vs the kept pre-executor collect-then-fold orchestration
//! (`ScenarioMatrix::run_collected`) — and the assertion, before any
//! timing, that executor, parallel executor, and reference are
//! **bit-identical** (the contract the golden fixture and `exec_props`
//! pin down).
//!
//! The `run/*/executor`-vs-`reference` gap is the orchestration win the
//! trial-executor PR claims (≥1.5x on the default grid, asserted below);
//! the `parallel` row adds the rayon fan-out on top.
//!
//! Set `MAXLENGTH_BENCH_JSON=path` to append machine-readable
//! `{"bench", "scale", "ns_per_iter"}` records for the PR perf trail
//! (`BENCH_matrix.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bgpsim::experiment::RoaConfig;
use bgpsim::matrix::{ScenarioMatrix, TopologyFamily};
use bgpsim::{DeploymentModel, TopologyConfig};
use rpki_bench::harness::record_bench_json;

fn matrix(n: usize) -> ScenarioMatrix {
    ScenarioMatrix {
        topologies: vec![TopologyFamily::new(TopologyConfig {
            n,
            tier1: 5,
            ..TopologyConfig::default()
        })],
        strategies: ScenarioMatrix::standard_strategies(),
        deployments: vec![
            DeploymentModel::Uniform { p: 1.0 },
            DeploymentModel::TopIspsFirst { p: 0.3 },
        ],
        roas: RoaConfig::ALL.to_vec(),
        trials: 4,
        seed: 2017,
    }
}

fn bench_matrix(c: &mut Criterion) {
    for n in [200, 500] {
        let m = matrix(n);
        // Equivalence before speed: the executor must reproduce the
        // collect-then-fold reference bit-for-bit, sequentially and in
        // parallel.
        let reference = m.run_collected();
        assert_eq!(reference, m.run(), "executor diverged at n={n}");
        assert_eq!(reference, m.run_par(), "parallel diverged at n={n}");

        let cells = m.cell_count() as u64;
        let mut group = c.benchmark_group(format!("matrix/run/n-{n}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(cells));
        let mut executor_ns = 0.0;
        let mut reference_ns = 0.0;
        let mut parallel_ns = 0.0;
        group.bench_with_input(BenchmarkId::new("executor", cells), &m, |b, m| {
            b.iter(|| m.run());
            executor_ns = b.mean_ns();
        });
        group.bench_with_input(BenchmarkId::new("reference", cells), &m, |b, m| {
            b.iter(|| m.run_collected());
            reference_ns = b.mean_ns();
        });
        group.bench_with_input(BenchmarkId::new("parallel", cells), &m, |b, m| {
            b.iter(|| m.run_par());
            parallel_ns = b.mean_ns();
        });
        group.finish();
        record_bench_json("matrix/grid/executor", n as f64, executor_ns);
        record_bench_json("matrix/grid/reference", n as f64, reference_ns);
        record_bench_json("matrix/grid/parallel", n as f64, parallel_ns);

        let speedup = reference_ns / executor_ns;
        println!(
            "matrix/run/n-{n}: executor is {speedup:.1}x the collect-then-fold reference \
             (parallel {:.1}x)",
            reference_ns / parallel_ns
        );
        // The default-grid gate of the trial-executor PR: the unified
        // orchestration (policy cache + shared baselines + replay) must
        // hold a ≥1.5x single-thread wall-clock win over the
        // pre-executor loops.
        assert!(
            speedup >= 1.5,
            "executor win regressed below 1.5x on the default grid: {speedup:.2}x at n={n}"
        );
    }
}

/// The default wide-deployment grid the speculative executor targets:
/// one topology, the standard strategies, eight uniform ROV adoption
/// columns (several in the high-adoption regime, where a trial's
/// filter footprint is small and validation almost always passes),
/// all three ROA configurations.
fn wide_matrix(n: usize) -> ScenarioMatrix {
    ScenarioMatrix {
        topologies: vec![TopologyFamily::new(TopologyConfig {
            n,
            tier1: 5,
            ..TopologyConfig::default()
        })],
        strategies: ScenarioMatrix::standard_strategies(),
        deployments: [1.0, 0.95, 0.9, 0.85, 0.8, 0.6, 0.4, 0.2]
            .iter()
            .map(|&p| DeploymentModel::Uniform { p })
            .collect(),
        roas: RoaConfig::ALL.to_vec(),
        trials: 4,
        seed: 2017,
    }
}

/// The speculation gate: footprint-validated replay across the
/// deployment axis must hold a ≥2x wall-clock win over the per-cell
/// executor (`run_plan_collected`, which re-propagates every cell) on
/// the default wide-deployment grid — after asserting both produce the
/// same report bit-for-bit.
fn bench_speculative(c: &mut Criterion) {
    let n = 300;
    let m = wide_matrix(n);
    let reference = m.run_collected();
    assert_eq!(reference, m.run(), "speculative executor diverged at n={n}");

    let cells = m.cell_count() as u64;
    let mut group = c.benchmark_group(format!("matrix/speculative/n-{n}"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));
    let mut speculative_ns = 0.0;
    let mut percell_ns = 0.0;
    group.bench_with_input(BenchmarkId::new("speculative", cells), &m, |b, m| {
        b.iter(|| m.run());
        speculative_ns = b.mean_ns();
    });
    group.bench_with_input(BenchmarkId::new("percell", cells), &m, |b, m| {
        b.iter(|| m.run_collected());
        percell_ns = b.mean_ns();
    });
    group.finish();
    record_bench_json("matrix/grid/speculative", n as f64, speculative_ns);
    record_bench_json("matrix/grid/percell", n as f64, percell_ns);

    let speedup = percell_ns / speculative_ns;
    println!(
        "matrix/speculative/n-{n}: footprint-validated replay is {speedup:.1}x \
         the per-cell executor on the wide-deployment grid"
    );
    assert!(
        speedup >= 2.0,
        "speculative win regressed below 2x on the wide-deployment grid: {speedup:.2}x at n={n}"
    );
}

criterion_group!(benches, bench_matrix, bench_speculative);
criterion_main!(benches);
