//! Criterion ablation for the scenario-matrix runner: the parallel
//! `(cell × trial)` fan-out vs the sequential fold on the same matrix —
//! and the assertion, before any timing, that the two are bit-identical
//! (the contract the golden fixture and `routing_props` pin down).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bgpsim::experiment::RoaConfig;
use bgpsim::matrix::{ScenarioMatrix, TopologyFamily};
use bgpsim::{DeploymentModel, TopologyConfig};

fn matrix(n: usize) -> ScenarioMatrix {
    ScenarioMatrix {
        topologies: vec![TopologyFamily::new(TopologyConfig {
            n,
            tier1: 5,
            ..TopologyConfig::default()
        })],
        strategies: ScenarioMatrix::standard_strategies(),
        deployments: vec![
            DeploymentModel::Uniform { p: 1.0 },
            DeploymentModel::TopIspsFirst { p: 0.3 },
        ],
        roas: RoaConfig::ALL.to_vec(),
        trials: 4,
        seed: 2017,
    }
}

fn bench_matrix(c: &mut Criterion) {
    for n in [200, 500] {
        let m = matrix(n);
        // Equivalence before speed.
        assert_eq!(m.run(), m.run_par(), "parallel diverged at n={n}");

        let cells = m.cell_count() as u64;
        let mut group = c.benchmark_group(format!("matrix/run/n-{n}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(BenchmarkId::new("sequential", cells), &m, |b, m| {
            b.iter(|| m.run())
        });
        group.bench_with_input(BenchmarkId::new("parallel", cells), &m, |b, m| {
            b.iter(|| m.run_par())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
