//! Model-based session test: a reference state machine (full VRP sets
//! remembered per serial, no clever diffing) predicts every `CacheServer`
//! response — serials, session ids, delta contents, Cache Reset aging —
//! across randomized interleavings of cache updates and router queries,
//! including routers reconnecting with stale serials.
//!
//! Because the model stores whole sets and answers a serial query with
//! the *set difference* between endpoints, it independently cross-checks
//! the cache's incremental history coalescing: announce-then-withdraw
//! across the window must cancel, and a dirty update (the same VRP in
//! both lists) must resolve exactly like the rov engines do —
//! announcements first, withdrawals winning — with at most one history
//! record per VRP.
//!
//! Every request and response additionally makes a round trip through
//! the strict wire codec at a generated protocol version (v0 or v1), so
//! the model checks the byte layer's canonicality along the way.

use std::collections::{BTreeSet, VecDeque};

use bytes::BytesMut;
use proptest::prelude::*;
use rpki_roa::{Asn, Vrp};
use rpki_rtr::cache::{CacheServer, HISTORY_WINDOW};
use rpki_rtr::pdu::{Flags, Pdu, PROTOCOL_V0, PROTOCOL_V1};
use rpki_rtr::RouterClient;

const SESSION: u16 = 600;

/// Pushes one PDU through the wire codec at `version` — encode, strict
/// decode, canonicality check — and hands back what the peer would see.
/// Running the whole model over this (at both protocol versions) makes
/// the reference machine exercise the real byte layer, not a
/// function-call shortcut; at v0 an End of Data loses its timing to the
/// RFC 8210 defaults, which `classify` deliberately ignores.
fn via_wire(pdu: &Pdu, version: u8) -> Pdu {
    let mut buf = BytesMut::new();
    pdu.encode_versioned(version, &mut buf);
    let (back, used, v) = Pdu::decode_versioned(&buf)
        .expect("cache output must decode strictly")
        .expect("cache output is a complete frame");
    assert_eq!((used, v), (buf.len(), version), "framing must round-trip");
    let mut re = BytesMut::new();
    back.encode_versioned(version, &mut re);
    assert_eq!(re, buf, "cache output must re-encode canonically");
    back
}

fn handle_via_wire(cache: &CacheServer, request: &Pdu, version: u8) -> Vec<Pdu> {
    let request = via_wire(request, version);
    cache
        .handle(&request)
        .iter()
        .map(|p| via_wire(p, version))
        .collect()
}

fn arb_wire_version() -> impl Strategy<Value = u8> {
    prop_oneof![Just(PROTOCOL_V0), Just(PROTOCOL_V1)]
}

/// The reference machine: full sets per serial, window-aged like the
/// implementation.
struct ModelCache {
    serial: u32,
    /// `sets.back()` is the current set; the front is the oldest serial
    /// still answerable with a delta.
    sets: VecDeque<BTreeSet<Vrp>>,
}

impl ModelCache {
    fn new(initial: &BTreeSet<Vrp>) -> ModelCache {
        let mut sets = VecDeque::new();
        sets.push_back(initial.clone());
        ModelCache { serial: 0, sets }
    }

    fn current(&self) -> &BTreeSet<Vrp> {
        self.sets.back().expect("always one set")
    }

    fn update(&mut self, announced: &[Vrp], withdrawn: &[Vrp]) {
        let mut next = self.current().clone();
        // Announce-then-withdraw: a VRP in both lists resolves to the
        // withdrawal (the update_delta contract, matching the rov
        // engines' apply order).
        for v in announced {
            next.insert(*v);
        }
        for v in withdrawn {
            next.remove(v);
        }
        self.sets.push_back(next);
        self.serial = self.serial.wrapping_add(1);
        while self.sets.len() > HISTORY_WINDOW + 1 {
            self.sets.pop_front();
        }
    }

    /// The set the cache held at `serial`, if still inside the window.
    fn set_at(&self, serial: u32) -> Option<&BTreeSet<Vrp>> {
        let behind = self.serial.wrapping_sub(serial) as usize;
        if behind >= self.sets.len() {
            return None;
        }
        Some(&self.sets[self.sets.len() - 1 - behind])
    }
}

/// Splits a response into its prefix payload, checking the framing and
/// returning `(announced, withdrawn)` — or `None` for a Cache Reset.
fn classify(response: &[Pdu], want_serial: u32) -> Option<(BTreeSet<Vrp>, BTreeSet<Vrp>)> {
    if response == [Pdu::CacheReset] {
        return None;
    }
    assert!(
        matches!(response.first(), Some(Pdu::CacheResponse { session_id }) if *session_id == SESSION),
        "response must open with CacheResponse for the session: {response:?}"
    );
    assert!(
        matches!(
            response.last(),
            Some(Pdu::EndOfData { session_id, serial, .. })
                if *session_id == SESSION && *serial == want_serial
        ),
        "response must close with EndOfData at serial {want_serial}: {response:?}"
    );
    let mut announced = BTreeSet::new();
    let mut withdrawn = BTreeSet::new();
    for pdu in &response[1..response.len() - 1] {
        match pdu {
            Pdu::Prefix {
                flags: Flags::Announce,
                vrp,
            } => assert!(announced.insert(*vrp), "duplicate announce {vrp}"),
            Pdu::Prefix {
                flags: Flags::Withdraw,
                vrp,
            } => assert!(withdrawn.insert(*vrp), "duplicate withdraw {vrp}"),
            other => panic!("unexpected PDU in payload: {other:?}"),
        }
    }
    assert!(
        announced.is_disjoint(&withdrawn),
        "a VRP must never be announced and withdrawn in one response"
    );
    Some((announced, withdrawn))
}

/// A small universe of distinct VRPs; deltas pick indices into it.
fn universe() -> Vec<Vrp> {
    let mut out = Vec::new();
    for i in 0u32..16 {
        out.push(Vrp::new(
            format!("10.{i}.0.0/16").parse().unwrap(),
            16 + (i % 4) as u8,
            Asn(100 + i),
        ));
    }
    for i in 0u32..8 {
        out.push(Vrp::new(
            format!("2001:db8:{i:x}::/48").parse().unwrap(),
            48,
            Asn(200 + i),
        ));
    }
    out
}

/// One scripted operation against the cache.
#[derive(Debug, Clone)]
enum Op {
    /// Apply a delta built from universe indices (may be dirty: overlaps
    /// with the current set or between the two lists are allowed).
    Update {
        announce: Vec<u8>,
        withdraw: Vec<u8>,
    },
    /// A Serial Query lagging the current serial by `lag`.
    Query { lag: u8 },
    /// A full Reset Query.
    Reset,
    /// A Serial Query with the wrong session id.
    WrongSession,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (
            prop::collection::vec(0u8..24, 0..6),
            prop::collection::vec(0u8..24, 0..6),
        )
            .prop_map(|(announce, withdraw)| Op::Update { announce, withdraw }),
        3 => (0u8..24).prop_map(|lag| Op::Query { lag }),
        1 => Just(Op::Reset),
        1 => Just(Op::WrongSession),
    ]
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(48))]

    #[test]
    fn cache_matches_reference_model(
        initial_idx in prop::collection::vec(0u8..24, 0..12),
        ops in prop::collection::vec(arb_op(), 1..40),
        version in arb_wire_version(),
    ) {
        let universe = universe();
        let initial: BTreeSet<Vrp> =
            initial_idx.iter().map(|&i| universe[i as usize]).collect();
        let initial_vec: Vec<Vrp> = initial.iter().copied().collect();
        let mut cache = CacheServer::new(SESSION, &initial_vec);
        let mut model = ModelCache::new(&initial);

        for op in &ops {
            match op {
                Op::Update { announce, withdraw } => {
                    let a: Vec<Vrp> =
                        announce.iter().map(|&i| universe[i as usize]).collect();
                    let w: Vec<Vrp> =
                        withdraw.iter().map(|&i| universe[i as usize]).collect();
                    let notify = via_wire(&cache.update_delta(&a, &w), version);
                    model.update(&a, &w);
                    prop_assert_eq!(cache.serial(), model.serial);
                    prop_assert_eq!(notify, Pdu::SerialNotify {
                        session_id: SESSION,
                        serial: model.serial,
                    });
                    let served: BTreeSet<Vrp> = cache.vrps().copied().collect();
                    prop_assert_eq!(&served, model.current());
                }
                Op::Query { lag } => {
                    let serial = model.serial.wrapping_sub(*lag as u32);
                    let response = handle_via_wire(&cache, &Pdu::SerialQuery {
                        session_id: SESSION,
                        serial,
                    }, version);
                    match (classify(&response, model.serial), model.set_at(serial)) {
                        (Some((announced, withdrawn)), Some(old)) => {
                            let expect_a: BTreeSet<Vrp> =
                                model.current().difference(old).copied().collect();
                            let expect_w: BTreeSet<Vrp> =
                                old.difference(model.current()).copied().collect();
                            prop_assert_eq!(announced, expect_a, "lag {}", lag);
                            prop_assert_eq!(withdrawn, expect_w, "lag {}", lag);
                        }
                        (None, None) => {} // both aged out: Cache Reset
                        (got, expect) => {
                            prop_assert!(
                                false,
                                "lag {}: cache answered with {}, model with {}",
                                lag,
                                if got.is_some() { "a delta" } else { "Cache Reset" },
                                if expect.is_some() { "a delta" } else { "Cache Reset" },
                            );
                        }
                    }
                }
                Op::Reset => {
                    let response = handle_via_wire(&cache, &Pdu::ResetQuery, version);
                    let (announced, withdrawn) =
                        classify(&response, model.serial).expect("reset never Cache Reset");
                    prop_assert_eq!(&announced, model.current());
                    prop_assert!(withdrawn.is_empty());
                }
                Op::WrongSession => {
                    let response = handle_via_wire(&cache, &Pdu::SerialQuery {
                        session_id: SESSION ^ 1,
                        serial: model.serial,
                    }, version);
                    prop_assert_eq!(response, vec![Pdu::CacheReset]);
                }
            }
        }
    }

    #[test]
    fn stale_router_reconnect_recovers_full_state(
        warmup in prop::collection::vec(
            (prop::collection::vec(0u8..24, 0..4), prop::collection::vec(0u8..24, 0..4)),
            1..8,
        ),
        aging in (HISTORY_WINDOW + 1)..(2 * HISTORY_WINDOW),
        version in arb_wire_version(),
    ) {
        let universe = universe();
        let mut cache = CacheServer::new(SESSION, &[]);
        let mut model = ModelCache::new(&BTreeSet::new());

        // A router synchronizes fully, then goes quiet.
        let mut router = RouterClient::with_version(version);
        for pdu in handle_via_wire(&cache, &Pdu::ResetQuery, version) {
            router.handle(&pdu).unwrap();
        }
        for (a_idx, w_idx) in &warmup {
            let a: Vec<Vrp> = a_idx.iter().map(|&i| universe[i as usize]).collect();
            let w: Vec<Vrp> = w_idx.iter().map(|&i| universe[i as usize]).collect();
            cache.update_delta(&a, &w);
            model.update(&a, &w);
            for pdu in handle_via_wire(&cache, &router.query(), version) {
                router.handle(&pdu).unwrap();
            }
        }
        let stale_serial = router.serial();

        // The cache churns past the history window while the router naps.
        for i in 0..aging {
            let v = universe[i % universe.len()];
            // Alternate announce/withdraw so every update is non-empty.
            if model.current().contains(&v) {
                cache.update_delta(&[], &[v]);
                model.update(&[], &[v]);
            } else {
                cache.update_delta(&[v], &[]);
                model.update(&[v], &[]);
            }
        }

        // Reconnecting with the stale serial must get a Cache Reset ...
        let response = handle_via_wire(&cache, &Pdu::SerialQuery {
            session_id: SESSION,
            serial: stale_serial,
        }, version);
        prop_assert_eq!(&response, &vec![Pdu::CacheReset]);
        for pdu in &response {
            router.handle(pdu).unwrap();
        }
        // ... and the RFC 8210 §8 fallback (Reset Query) rebuilds the
        // exact current set at the current serial.
        prop_assert_eq!(router.query(), Pdu::ResetQuery);
        for pdu in handle_via_wire(&cache, &Pdu::ResetQuery, version) {
            router.handle(&pdu).unwrap();
        }
        prop_assert_eq!(router.serial(), model.serial);
        let got: BTreeSet<Vrp> = router.vrps().iter().copied().collect();
        prop_assert_eq!(&got, model.current());
    }
}
