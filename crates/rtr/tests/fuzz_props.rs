//! Adversarial fuzzing + round-trip battery for the zero-copy wire codec.
//!
//! Three families of properties, all driven through the *public* entry
//! points ([`rpki_rtr::decode_frame`], [`Pdu::decode_versioned`],
//! [`CacheServer::handle_wire`]):
//!
//! 1. **Mutation fuzz** — valid frames put through truncation,
//!    length-field lies, version/type/flag/AFI garbage, and random byte
//!    flips. The decoder must never panic, must classify every rejection
//!    into the [`PduError`] taxonomy, and anything it *accepts* must
//!    re-encode bit-identically (the canonical-decode invariant, which
//!    rules out misparses).
//! 2. **Round-trip** — every PDU variant, both protocol versions,
//!    including the 65 536-byte maximum Error Report and multi-byte
//!    UTF-8 diagnostic text: `decode(encode(p)) == p` and
//!    `encode(decode(bytes)) == bytes`.
//! 3. **Server agreement** — [`CacheServer::handle_wire`] must mirror the
//!    decoder exactly: incomplete input ⇒ `NeedBytes`, a decodable
//!    request ⇒ `Responded`, a classified error ⇒ `Teardown` carrying the
//!    same error, with an on-wire Error Report at the error's RFC code.
//!
//! CI runs this suite with `PROPTEST_CASES` raised well beyond the local
//! default; see `.github/workflows/ci.yml`.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use rpki_prefix::{Prefix, Prefix4, Prefix6};
use rpki_roa::{Asn, Vrp};
use rpki_rtr::cache::{CacheServer, WireOutcome};
use rpki_rtr::pdu::{ErrorCode, Flags, Pdu, Timing, PROTOCOL_V0, PROTOCOL_V1};
use rpki_rtr::wire::{self, ErrorClass, PduError, HEADER_LEN, MAX_PDU_LEN};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_vrp() -> impl Strategy<Value = Vrp> {
    prop_oneof![
        (any::<u32>(), 0u8..=32, 0u8..=8, any::<u32>()).prop_map(|(b, l, e, a)| {
            let p = Prefix::V4(Prefix4::new_truncated(b, l));
            Vrp::new(p, l.saturating_add(e), Asn(a))
        }),
        (any::<u128>(), 0u8..=128, 0u8..=8, any::<u32>()).prop_map(|(b, l, e, a)| {
            let p = Prefix::V6(Prefix6::new_truncated(b, l));
            Vrp::new(p, l.saturating_add(e), Asn(a))
        }),
    ]
}

/// UTF-8 edge material: ASCII, 2/3/4-byte scalars, combining marks, a
/// zero-width joiner, and a noncharacter that is still valid UTF-8.
const UTF8_EDGES: &[char] = &[
    'a',
    'Z',
    '\0',
    '\u{7f}',
    'é',
    'ß',
    '\u{7ff}',
    '€',
    '\u{800}',
    '\u{fffd}',
    '\u{ffff}',
    '𝄞',
    '🦀',
    '\u{10FFFF}',
    '\u{0301}',
    '\u{200d}',
];

fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..UTF8_EDGES.len(), 0..24)
        .prop_map(|idx| idx.into_iter().map(|i| UTF8_EDGES[i]).collect())
}

/// Inner bytes for an Error Report: arbitrary, but steered away from an
/// encapsulated Error Report (forbidden by RFC 8210 §5.10).
fn arb_inner() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..64).prop_map(|mut inner| {
        if inner.len() >= 2 && inner[1] == 10 {
            inner[1] = 0;
        }
        Bytes::from(inner)
    })
}

/// All nine RFC 8210 error codes.
const ERROR_CODES: &[ErrorCode] = &[
    ErrorCode::CorruptData,
    ErrorCode::InternalError,
    ErrorCode::NoDataAvailable,
    ErrorCode::InvalidRequest,
    ErrorCode::UnsupportedVersion,
    ErrorCode::UnsupportedPduType,
    ErrorCode::WithdrawalOfUnknown,
    ErrorCode::DuplicateAnnouncement,
    ErrorCode::UnexpectedVersion,
];

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    (0usize..ERROR_CODES.len()).prop_map(|i| ERROR_CODES[i])
}

/// Every PDU variant the codec speaks.
fn arb_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialNotify {
            session_id: s,
            serial: n
        }),
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialQuery {
            session_id: s,
            serial: n
        }),
        Just(Pdu::ResetQuery),
        any::<u16>().prop_map(|s| Pdu::CacheResponse { session_id: s }),
        (any::<bool>(), arb_vrp()).prop_map(|(a, vrp)| Pdu::Prefix {
            flags: if a { Flags::Announce } else { Flags::Withdraw },
            vrp,
        }),
        (
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(s, n, r, t, e)| Pdu::EndOfData {
                session_id: s,
                serial: n,
                timing: Timing {
                    refresh: r,
                    retry: t,
                    expire: e
                },
            }),
        Just(Pdu::CacheReset),
        (arb_error_code(), arb_inner(), arb_text())
            .prop_map(|(code, pdu, text)| { Pdu::ErrorReport { code, pdu, text } }),
    ]
}

fn arb_version() -> impl Strategy<Value = u8> {
    prop_oneof![Just(PROTOCOL_V0), Just(PROTOCOL_V1)]
}

fn encode(pdu: &Pdu, version: u8) -> Vec<u8> {
    let mut buf = BytesMut::new();
    pdu.encode_versioned(version, &mut buf);
    buf.to_vec()
}

/// What a lossless decode at `version` should hand back: v0 has no
/// timing fields, so End of Data timing collapses to the RFC 8210
/// defaults on the way through the wire.
fn normalize(pdu: &Pdu, version: u8) -> Pdu {
    match pdu {
        Pdu::EndOfData {
            session_id, serial, ..
        } if version == PROTOCOL_V0 => Pdu::EndOfData {
            session_id: *session_id,
            serial: *serial,
            timing: Timing::default(),
        },
        other => other.clone(),
    }
}

/// Asserts the canonical-decode invariant on an accepted frame: the
/// decoded PDU re-encodes to exactly the bytes that were accepted.
fn assert_canonical(data: &[u8]) {
    if let Ok(Some(frame)) = wire::decode_frame(data) {
        let mut out = Vec::new();
        frame.pdu.encode_into(frame.version, &mut out);
        assert_eq!(
            out,
            &data[..frame.len],
            "accepted frame must re-encode bit-identically: input {:02x?}",
            &data[..frame.len]
        );
    }
}

// ---------------------------------------------------------------------
// Deterministic edges
// ---------------------------------------------------------------------

/// The largest legal Error Report: declared length exactly
/// `MAX_PDU_LEN`, payload split between embedded PDU and UTF-8 text.
#[test]
fn max_length_error_report_round_trips() {
    let payload = MAX_PDU_LEN - HEADER_LEN - 4 - 4;
    let inner_len = payload / 2;
    let text_len = payload - inner_len;
    let pdu = Pdu::ErrorReport {
        code: ErrorCode::CorruptData,
        pdu: Bytes::from(vec![0u8; inner_len]),
        text: "x".repeat(text_len),
    };
    for version in [PROTOCOL_V0, PROTOCOL_V1] {
        let bytes = encode(&pdu, version);
        assert_eq!(bytes.len(), MAX_PDU_LEN);
        let (back, used, v) = Pdu::decode_versioned(&bytes).unwrap().unwrap();
        assert_eq!((used, v), (bytes.len(), version));
        assert_eq!(back, pdu);
        assert_canonical(&bytes);
    }
}

/// One byte over the line: declared length `MAX_PDU_LEN + 1` must be a
/// classified error, not an allocation attempt.
#[test]
fn oversized_declared_length_is_rejected() {
    let mut frame = vec![1u8, 10, 0, 0, 0, 0, 0, 0];
    let len = (MAX_PDU_LEN + 1) as u32;
    frame[4..8].copy_from_slice(&len.to_be_bytes());
    match wire::decode_frame(&frame) {
        Err(PduError::BadLength {
            type_code: 10,
            length,
        }) => {
            assert_eq!(length, MAX_PDU_LEN + 1);
        }
        other => panic!("expected BadLength, got {other:?}"),
    }
}

/// A v0 End of Data is 12 bytes and surfaces the RFC 8210 default
/// timing; a v1 one is 24 bytes and carries its own.
#[test]
fn end_of_data_version_layouts() {
    let pdu = Pdu::EndOfData {
        session_id: 7,
        serial: 42,
        timing: Timing {
            refresh: 1,
            retry: 2,
            expire: 3,
        },
    };
    let v0 = encode(&pdu, PROTOCOL_V0);
    let v1 = encode(&pdu, PROTOCOL_V1);
    assert_eq!((v0.len(), v1.len()), (12, 24));
    let (back0, _, _) = Pdu::decode_versioned(&v0).unwrap().unwrap();
    assert_eq!(back0, normalize(&pdu, PROTOCOL_V0));
    assert!(
        matches!(back0, Pdu::EndOfData { timing, .. } if timing == Timing::default()),
        "v0 End of Data must surface default timing"
    );
    let (back1, _, _) = Pdu::decode_versioned(&v1).unwrap().unwrap();
    assert_eq!(back1, pdu);
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    /// `decode(encode(p)) == p` for every variant at both versions (up
    /// to the v0 timing collapse), and the encoding is canonical.
    #[test]
    fn round_trip_both_versions(pdu in arb_pdu(), version in arb_version()) {
        let bytes = encode(&pdu, version);
        prop_assert_eq!(bytes.len(), pdu.wire_len(version));
        let (back, used, v) = Pdu::decode_versioned(&bytes).unwrap().unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(v, version);
        prop_assert_eq!(back, normalize(&pdu, version));
        assert_canonical(&bytes);
    }

    /// `encode(decode(bytes)) == bytes` on arbitrary input: whatever the
    /// strict decoder accepts, it accepts canonically.
    #[test]
    fn arbitrary_accepted_bytes_are_canonical(data in prop::collection::vec(any::<u8>(), 0..128)) {
        assert_canonical(&data);
    }

    /// Truncating a valid frame anywhere short of its end is always
    /// "incomplete", never an error and never a different PDU.
    #[test]
    fn truncation_is_incomplete(pdu in arb_pdu(), version in arb_version(), cut_frac in 0.0f64..1.0) {
        let bytes = encode(&pdu, version);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert_eq!(wire::decode_frame(&bytes[..cut]).unwrap().map(|_| ()), None);
        }
    }

    /// Lying in the length field must never panic and never smuggle a
    /// misparse past the canonical-decode check.
    #[test]
    fn length_field_lies_are_classified(pdu in arb_pdu(), version in arb_version(), lie in any::<u32>()) {
        let mut bytes = encode(&pdu, version);
        bytes[4..8].copy_from_slice(&lie.to_be_bytes());
        match wire::decode_frame(&bytes) {
            Ok(None) => {
                // Plausible-but-larger length: must actually be larger
                // than what we buffered, and within the frame cap.
                prop_assert!((lie as usize) > bytes.len() && (lie as usize) <= MAX_PDU_LEN);
            }
            Ok(Some(_)) => assert_canonical(&bytes),
            Err(e) => prop_assert_eq!(e.class(), ErrorClass::Fatal),
        }
    }

    /// Garbage in the version byte: only 0 and 1 exist; anything above
    /// is the one *recoverable* error (version negotiation).
    #[test]
    fn version_garbage_is_classified(pdu in arb_pdu(), version in arb_version(), garbage in 2u8..=255) {
        let mut bytes = encode(&pdu, version);
        bytes[0] = garbage;
        match wire::decode_frame(&bytes) {
            Err(PduError::BadVersion(v)) => {
                prop_assert_eq!(v, garbage);
                prop_assert_eq!(PduError::BadVersion(v).class(), ErrorClass::Recoverable);
            }
            other => prop_assert!(false, "expected BadVersion, got {:?}", other),
        }
    }

    /// Garbage in the type byte never panics; unknown and unimplemented
    /// types classify as fatal `BadType`.
    #[test]
    fn type_garbage_is_classified(pdu in arb_pdu(), version in arb_version(), garbage in any::<u8>()) {
        let mut bytes = encode(&pdu, version);
        bytes[1] = garbage;
        match wire::decode_frame(&bytes) {
            Ok(Some(_)) => assert_canonical(&bytes),
            Ok(None) => {}
            Err(e) => {
                prop_assert_eq!(e.class(), ErrorClass::Fatal);
                if !matches!(garbage, 0..=8 | 10) {
                    prop_assert_eq!(e, PduError::BadType(garbage));
                }
            }
        }
    }

    /// Garbage in a Prefix PDU's flags or AFI-determined fields: byte 8
    /// is the flags slot, byte 11 the reserved slot — both strictly
    /// checked.
    #[test]
    fn prefix_flag_and_reserved_garbage(vrp in arb_vrp(), version in arb_version(), flags in 2u8..=255, reserved in 1u8..=255) {
        let pdu = Pdu::Prefix { flags: Flags::Announce, vrp };
        let mut bytes = encode(&pdu, version);
        bytes[8] = flags;
        prop_assert_eq!(wire::decode_frame(&bytes), Err(PduError::BadFlags(flags)));
        bytes[8] = 1;
        bytes[11] = reserved;
        let type_code = pdu.type_code();
        prop_assert_eq!(
            wire::decode_frame(&bytes),
            Err(PduError::NonZeroReserved { type_code, offset: 11 })
        );
    }

    /// Arbitrary byte flips anywhere in a valid frame: never a panic,
    /// never a non-canonical accept, always a classified error.
    #[test]
    fn random_byte_flips_never_panic(
        pdu in arb_pdu(),
        version in arb_version(),
        flips in prop::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = encode(&pdu, version);
        let n = bytes.len();
        for (pos, val) in flips {
            bytes[pos as usize % n] = val;
        }
        match wire::decode_frame(&bytes) {
            Ok(Some(_)) => assert_canonical(&bytes),
            Ok(None) => {}
            Err(e) => {
                // Every rejection is a member of the taxonomy with a
                // reportable RFC code and a definite class.
                let _ = e.error_code();
                let _ = e.class();
            }
        }
    }

    /// The server's wire loop agrees with the decoder on arbitrary
    /// bytes: incomplete ⇒ `NeedBytes`, error ⇒ `Teardown` with the same
    /// classified error and an on-wire Error Report at its RFC code.
    #[test]
    fn handle_wire_matches_decoder(data in prop::collection::vec(any::<u8>(), 0..96)) {
        let cache = CacheServer::new(77, &[]);
        let mut negotiation = cache.negotiation();
        let mut out = Vec::new();
        let outcome = cache.handle_wire(&data, &mut negotiation, &mut out);
        match wire::decode_frame(&data) {
            Ok(None) => prop_assert_eq!(outcome, WireOutcome::NeedBytes),
            Ok(Some(frame)) => match outcome {
                WireOutcome::Responded { consumed } => prop_assert_eq!(consumed, frame.len),
                other => prop_assert!(false, "decodable frame but {:?}", other),
            },
            Err(e) => match outcome {
                WireOutcome::Teardown { error, .. } => {
                    prop_assert_eq!(&error, &e);
                    // The teardown report is itself a valid frame
                    // carrying the error's RFC code.
                    let (report, used, _) = Pdu::decode_versioned(&out).unwrap().unwrap();
                    prop_assert_eq!(used, out.len());
                    match report {
                        Pdu::ErrorReport { code, .. } => prop_assert_eq!(code, e.error_code()),
                        other => prop_assert!(false, "teardown must report an error: {:?}", other),
                    }
                }
                other => prop_assert!(false, "decode error {:?} but {:?}", e, other),
            },
        }
    }

    /// Mutated *valid* traffic through the server: a fatal error tears
    /// the session down; everything accepted keeps it open.
    #[test]
    fn handle_wire_teardown_iff_fatal_or_mismatch(
        pdu in arb_pdu(),
        version in arb_version(),
        flips in prop::collection::vec((any::<u16>(), any::<u8>()), 0..4),
    ) {
        let mut bytes = encode(&pdu, version);
        let n = bytes.len();
        for (pos, val) in flips {
            bytes[pos as usize % n] = val;
        }
        let cache = CacheServer::new(9, &[]);
        let mut negotiation = cache.negotiation();
        let mut out = Vec::new();
        match cache.handle_wire(&bytes, &mut negotiation, &mut out) {
            WireOutcome::Teardown { error, .. } => {
                // Teardown exactly when the decoder rejects (the v1 cache
                // accepts both versions, so negotiation can't fail here
                // on a first frame).
                prop_assert_eq!(wire::decode_frame(&bytes), Err(error));
            }
            WireOutcome::Responded { consumed } => {
                let frame = wire::decode_frame(&bytes).unwrap().unwrap();
                prop_assert_eq!(consumed, frame.len);
                prop_assert_eq!(negotiation.version(), Some(frame.version));
            }
            WireOutcome::NeedBytes => {
                prop_assert_eq!(wire::decode_frame(&bytes).unwrap().map(|_| ()), None);
            }
        }
    }

    /// Version pinning under fuzz: once a session speaks `version`, a
    /// frame at the other version is a fatal `VersionMismatch` teardown.
    #[test]
    fn pinned_session_rejects_other_version(pdu in arb_pdu(), version in arb_version()) {
        let cache = CacheServer::new(5, &[]);
        let mut negotiation = cache.negotiation();
        let mut out = Vec::new();
        let first = encode(&Pdu::ResetQuery, version);
        let outcome = cache.handle_wire(&first, &mut negotiation, &mut out);
        prop_assert!(matches!(outcome, WireOutcome::Responded { .. }));
        let other_version = 1 - version;
        out.clear();
        let second = encode(&pdu, other_version);
        match cache.handle_wire(&second, &mut negotiation, &mut out) {
            WireOutcome::Teardown { error, .. } => {
                prop_assert_eq!(
                    error,
                    PduError::VersionMismatch { negotiated: version, got: other_version }
                );
                prop_assert_eq!(
                    PduError::VersionMismatch { negotiated: version, got: other_version }.class(),
                    ErrorClass::Fatal
                );
            }
            other => prop_assert!(false, "pinned session must tear down: {:?}", other),
        }
    }
}
