//! Fan-out server properties: the model-checked [`CacheServer`] is the
//! bit-identity oracle for everything [`FanoutServer`] serves.
//!
//! * **Differential oracle** — for randomized interleavings of epochs
//!   and queries, the bytes a fan-out session drains are exactly the
//!   bytes [`CacheServer::handle_wire`] would have produced for the
//!   same requests. The shared-image layer may change *when* responses
//!   are serialized, never *what*.
//! * **Fleet convergence** — sessions that skip epochs, fall out of the
//!   history window, or hit outbox backpressure all converge to the
//!   oracle's final VRP set through the RFC-shaped recovery paths
//!   (delta, Cache Reset, full resync).
//! * **Serial arithmetic at the u32 boundary** — the whole
//!   notify/query/delta cycle crosses `u32::MAX` without a spurious
//!   reset, and a stale session straddling the wrap still recovers.

use proptest::prelude::*;
use rpki_roa::Vrp;
use rpki_rtr::cache::{CacheServer, HISTORY_WINDOW};
use rpki_rtr::pdu::{Pdu, PROTOCOL_V0, PROTOCOL_V1};
use rpki_rtr::server::{FanoutServer, ServerConfig, SessionId};
use rpki_rtr::wire::decode_frame;
use rpki_rtr::RouterClient;

const SESSION: u16 = 600;

fn vrp(i: u32) -> Vrp {
    format!(
        "10.{}.{}.0/24 => AS{}",
        (i >> 8) & 0xFF,
        i & 0xFF,
        64496 + (i % 16)
    )
    .parse()
    .unwrap()
}

fn encode(pdu: &Pdu, version: u8) -> Vec<u8> {
    let mut out = Vec::new();
    pdu.as_wire().encode_into(version, &mut out);
    out
}

/// Feeds every complete in-flight frame to the router, returning the
/// result of the last `handle` call (`true` once an End of Data
/// completed a response).
fn absorb(pipe: &mut Vec<u8>, router: &mut RouterClient) -> bool {
    let mut synced = false;
    loop {
        let Some(frame) = decode_frame(pipe).expect("server output must decode") else {
            return synced;
        };
        let pdu = frame.pdu.to_owned();
        let len = frame.len;
        pipe.drain(..len);
        synced = router.handle(&pdu).expect("server output must be valid");
    }
}

/// Runs one full router synchronization against a fan-out session with
/// the RFC discipline of one outstanding query: everything already in
/// flight (notifies, a backpressure Cache Reset) is consumed *before*
/// the next query goes out. Panics if the router does not converge
/// within the retry budget.
fn synchronize(server: &mut FanoutServer, id: SessionId, router: &mut RouterClient) {
    let mut pipe = Vec::new();
    for _round in 0..8 {
        server.drain_output(id, &mut pipe);
        absorb(&mut pipe, router);
        server.receive(id, &encode(&router.query(), router.version()));
        server.drain_output(id, &mut pipe);
        if absorb(&mut pipe, router) {
            return;
        }
        // A Cache Reset (or a notify burst) ended the round without an
        // End of Data: loop, letting the router fall back to the query
        // its new state calls for.
    }
    panic!("router did not converge within the retry budget");
}

/// One step of the randomized differential schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Full reset flow.
    Reset,
    /// Serial query `lag` serials behind the cache's current serial
    /// (large lags land outside the window; the subtraction wraps, so
    /// this also generates serials "from the future").
    Serial(u32),
    /// A churn epoch: announce `announce` fresh VRPs, withdraw up to
    /// `withdraw` existing ones.
    Epoch { announce: u8, withdraw: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Reset),
        4 => (0u32..=2 * HISTORY_WINDOW as u32).prop_map(Op::Serial),
        2 => prop_oneof![
            Just(Op::Serial(u32::MAX)),
            Just(Op::Serial(1 << 31)),
            Just(Op::Serial(u32::MAX - HISTORY_WINDOW as u32)),
        ],
        4 => (1u8..4, 0u8..3).prop_map(|(announce, withdraw)| Op::Epoch { announce, withdraw }),
    ]
}

proptest! {
    /// Every response a fan-out session drains is byte-identical to
    /// what `CacheServer::handle_wire` answers for the same request —
    /// shared images included, out-of-window serials included.
    #[test]
    fn shared_images_match_the_wire_oracle(
        ops in proptest::collection::vec(arb_op(), 1..32),
        version in prop_oneof![Just(PROTOCOL_V0), Just(PROTOCOL_V1)],
    ) {
        let initial: Vec<Vrp> = (0..8).map(vrp).collect();
        let mut server = FanoutServer::new(CacheServer::new(SESSION, &initial));
        let id = server.open_session();
        let mut oracle_negotiation = server.cache().negotiation();
        let mut fresh = 100u32;

        // Pin both negotiations with one reset flow so epoch notifies
        // have a defined version on both sides.
        let opening = encode(&Pdu::ResetQuery, version);
        server.receive(id, &opening);
        let mut got = Vec::new();
        server.drain_output(id, &mut got);
        let mut expect = Vec::new();
        let _ = server.cache().clone().handle_wire(&opening, &mut oracle_negotiation, &mut expect);
        prop_assert_eq!(&got, &expect, "opening reset flow");

        for op in ops {
            match op {
                Op::Epoch { announce, withdraw } => {
                    let announced: Vec<Vrp> = (0..announce as u32)
                        .map(|k| {
                            fresh += 1;
                            vrp(fresh + k)
                        })
                        .collect();
                    let withdrawn: Vec<Vrp> = server
                        .cache()
                        .vrps()
                        .take(withdraw as usize)
                        .cloned()
                        .collect();
                    server.update_delta_and_notify(&announced, &withdrawn);
                    // The only fan-out side effect is the notify.
                    let mut note = Vec::new();
                    server.drain_output(id, &mut note);
                    let notify = Pdu::SerialNotify {
                        session_id: SESSION,
                        serial: server.cache().serial(),
                    };
                    prop_assert_eq!(note, encode(&notify, version));
                }
                Op::Reset | Op::Serial(_) => {
                    let request = match op {
                        Op::Reset => Pdu::ResetQuery,
                        Op::Serial(lag) => Pdu::SerialQuery {
                            session_id: SESSION,
                            serial: server.cache().serial().wrapping_sub(lag),
                        },
                        Op::Epoch { .. } => unreachable!(),
                    };
                    let input = encode(&request, version);
                    server.receive(id, &input);
                    let mut got = Vec::new();
                    server.drain_output(id, &mut got);
                    let mut expect = Vec::new();
                    let mut negotiation = oracle_negotiation;
                    let _ = server
                        .cache()
                        .clone()
                        .handle_wire(&input, &mut negotiation, &mut expect);
                    oracle_negotiation = negotiation;
                    prop_assert_eq!(&got, &expect, "request {:?}", &request);
                }
            }
        }
        // Sharing happened: without it, built >= served responses.
        let stats = server.stats();
        prop_assert!(stats.images_built + stats.images_reused > 0);
    }
}

/// A deterministic xorshift so the fleet schedule is reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn fleet_converges_under_ragged_drain_schedules() {
    let initial: Vec<Vrp> = (0..16).map(vrp).collect();
    let mut server = FanoutServer::new(CacheServer::new(SESSION, &initial));
    let mut oracle = CacheServer::new(SESSION, &initial);
    let mut fleet: Vec<(SessionId, RouterClient)> = (0..24)
        .map(|_| (server.open_session(), RouterClient::new()))
        .collect();
    for (id, router) in &mut fleet {
        synchronize(&mut server, *id, router);
    }
    let mut rng = Rng(0x9E3779B97F4A7C15);
    let mut fresh = 1000u32;
    // 40 epochs with ragged participation: each session catches up only
    // ~1 epoch in 3, so lags spread from 0 to past HISTORY_WINDOW and
    // both the delta and the Cache Reset recovery paths run.
    for _epoch in 0..40 {
        fresh += 1;
        let announced = [vrp(fresh)];
        let withdrawn: Vec<Vrp> = server.cache().vrps().take(1).cloned().collect();
        server.update_delta_and_notify(&announced, &withdrawn);
        let _ = oracle.update_delta(&announced, &withdrawn);
        for (id, router) in &mut fleet {
            if rng.next().is_multiple_of(3) {
                synchronize(&mut server, *id, router);
            }
        }
    }
    for (id, router) in &mut fleet {
        synchronize(&mut server, *id, router);
    }
    let expect: Vec<Vrp> = oracle.vrps().cloned().collect();
    assert_eq!(
        server.cache().vrps().cloned().collect::<Vec<_>>(),
        expect,
        "fan-out cache must replay identically to the standalone oracle"
    );
    for (i, (_, router)) in fleet.iter().enumerate() {
        let got: Vec<Vrp> = router.vrps().iter().cloned().collect();
        assert_eq!(got, expect, "router {i} final VRP set");
        assert_eq!(router.serial(), oracle.serial(), "router {i} serial");
    }
}

#[test]
fn backpressured_sessions_recover_through_cache_reset() {
    let initial: Vec<Vrp> = (0..8).map(vrp).collect();
    let config = ServerConfig {
        outbox_limit: 64,
        ..ServerConfig::default()
    };
    let mut server = FanoutServer::with_config(CacheServer::new(SESSION, &initial), config);
    let mut oracle = CacheServer::new(SESSION, &initial);
    let id = server.open_session();
    let mut router = RouterClient::new();
    synchronize(&mut server, id, &mut router);
    // The session queues a delta request but never drains, while epochs
    // keep arriving: the outbox must stay bounded, and the queued
    // response gives way to a Cache Reset.
    for e in 0..6u32 {
        let announced = [vrp(5000 + e)];
        server.update_delta_and_notify(&announced, &[]);
        let _ = oracle.update_delta(&announced, &[]);
        server.receive(id, &encode(&router.query(), router.version()));
        assert!(
            server.pending_output(id) <= config.outbox_limit + 64,
            "outbox must stay near its bound, held {}",
            server.pending_output(id)
        );
    }
    let stats = server.stats();
    assert!(stats.overflow_drops > 0, "the schedule must overflow");
    assert!(stats.overflow_resets > 0, "a dropped response owes a reset");
    assert!(stats.dropped_bytes > 0);
    // Once the consumer drains again, the reset flow rebuilds the exact
    // oracle set.
    synchronize(&mut server, id, &mut router);
    let got: Vec<Vrp> = router.vrps().iter().cloned().collect();
    let expect: Vec<Vrp> = oracle.vrps().cloned().collect();
    assert_eq!(got, expect);
    assert_eq!(router.serial(), oracle.serial());
}

#[test]
fn notify_query_delta_cycle_survives_the_u32_wrap() {
    let initial: Vec<Vrp> = (0..4).map(vrp).collect();
    let mut server = FanoutServer::new(CacheServer::with_initial_serial(
        SESSION,
        &initial,
        u32::MAX - 2,
    ));
    let mut oracle = CacheServer::with_initial_serial(SESSION, &initial, u32::MAX - 2);
    let live = server.open_session();
    let mut live_router = RouterClient::new();
    synchronize(&mut server, live, &mut live_router);
    let stale = server.open_session();
    let mut stale_router = RouterClient::new();
    synchronize(&mut server, stale, &mut stale_router);
    assert_eq!(live_router.serial(), u32::MAX - 2);
    // Six epochs walk the serial across u32::MAX to 3. The live router
    // follows each delta; the stale one sleeps through all of them.
    for e in 0..6u32 {
        let announced = [vrp(7000 + e)];
        server.update_delta_and_notify(&announced, &[]);
        let _ = oracle.update_delta(&announced, &[]);
        let stats_before = server.stats();
        synchronize(&mut server, live, &mut live_router);
        assert_eq!(
            server.stats().teardowns,
            stats_before.teardowns,
            "wrap must not tear anything down"
        );
    }
    assert_eq!(server.cache().serial(), 3, "the serial crossed the wrap");
    assert_eq!(live_router.serial(), 3);
    let expect: Vec<Vrp> = oracle.vrps().cloned().collect();
    assert_eq!(
        live_router.vrps().iter().cloned().collect::<Vec<_>>(),
        expect,
        "delta path across the wrap"
    );
    // The stale router's serial (u32::MAX - 2) is 5 behind — still in
    // window, so it recovers via deltas; a second sleeper pinned before
    // the window opened would get the Cache Reset flow instead, which
    // `fleet_converges_under_ragged_drain_schedules` covers.
    synchronize(&mut server, stale, &mut stale_router);
    assert_eq!(
        stale_router.vrps().iter().cloned().collect::<Vec<_>>(),
        expect,
        "catch-up path across the wrap"
    );
    assert_eq!(stale_router.serial(), 3);
}
