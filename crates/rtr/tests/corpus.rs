//! Pinned regression frames for the strict wire decoder.
//!
//! Every file in `tests/corpus/` is one wire frame with its expected
//! strict verdict, in a tiny text format:
//!
//! ```text
//! # comment lines
//! expect: ok <type_code>           — accepted; must re-encode canonically
//! expect: incomplete               — needs more bytes, never an error
//! expect: error <rfc_code> <class> — classified rejection (class is
//!                                    `fatal` or `recoverable`)
//! legacy: accepts                  — optional: the legacy codec waved
//!                                    this frame through (the strictness
//!                                    delta the frame pins)
//! <hex bytes, whitespace separated>
//! ```
//!
//! Each frame documents either a strict-decode gap fixed in this layer
//! (with `legacy: accepts` showing the old behavior) or an
//! adversarial-input class the fuzzer covers probabilistically that we
//! want pinned deterministically.

use rpki_rtr::pdu::{legacy, ErrorCode};
use rpki_rtr::wire::{self, ErrorClass};

/// Numeric RFC 8210 error code (the crate keeps the conversion
/// internal; the corpus format speaks raw codes).
fn code_num(code: ErrorCode) -> u16 {
    match code {
        ErrorCode::CorruptData => 0,
        ErrorCode::InternalError => 1,
        ErrorCode::NoDataAvailable => 2,
        ErrorCode::InvalidRequest => 3,
        ErrorCode::UnsupportedVersion => 4,
        ErrorCode::UnsupportedPduType => 5,
        ErrorCode::WithdrawalOfUnknown => 6,
        ErrorCode::DuplicateAnnouncement => 7,
        ErrorCode::UnexpectedVersion => 8,
    }
}

#[derive(Debug, PartialEq)]
enum Expect {
    Ok { type_code: u8 },
    Incomplete,
    Error { rfc_code: u16, recoverable: bool },
}

struct Case {
    name: String,
    expect: Expect,
    legacy_accepts: bool,
    bytes: Vec<u8>,
}

fn parse_case(name: &str, content: &str) -> Case {
    let mut expect = None;
    let mut legacy_accepts = false;
    let mut bytes = Vec::new();
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("expect:") {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            expect = Some(match fields.as_slice() {
                ["ok", t] => Expect::Ok {
                    type_code: t.parse().expect("type code"),
                },
                ["incomplete"] => Expect::Incomplete,
                ["error", code, class] => Expect::Error {
                    rfc_code: code.parse().expect("rfc code"),
                    recoverable: match *class {
                        "recoverable" => true,
                        "fatal" => false,
                        other => panic!("{name}: unknown class {other:?}"),
                    },
                },
                other => panic!("{name}: malformed expect line {other:?}"),
            });
        } else if let Some(rest) = line.strip_prefix("legacy:") {
            assert_eq!(rest.trim(), "accepts", "{name}: malformed legacy line");
            legacy_accepts = true;
        } else {
            for tok in line.split_whitespace() {
                bytes.push(u8::from_str_radix(tok, 16).unwrap_or_else(|_| {
                    panic!("{name}: bad hex token {tok:?}");
                }));
            }
        }
    }
    Case {
        name: name.to_string(),
        expect: expect.unwrap_or_else(|| panic!("{name}: missing expect line")),
        legacy_accepts,
        bytes,
    }
}

fn load_corpus() -> Vec<Case> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut cases = Vec::new();
    for entry in std::fs::read_dir(dir).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("hex") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let content = std::fs::read_to_string(&path).expect("corpus file");
        cases.push(parse_case(&name, &content));
    }
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(cases.len() >= 20, "corpus must not silently shrink");
    cases
}

#[test]
fn corpus_frames_decode_to_pinned_verdicts() {
    for case in load_corpus() {
        let name = &case.name;
        match wire::decode_frame(&case.bytes) {
            Ok(None) => assert_eq!(
                case.expect,
                Expect::Incomplete,
                "{name}: decoder said incomplete"
            ),
            Ok(Some(frame)) => {
                assert_eq!(
                    case.expect,
                    Expect::Ok {
                        type_code: frame.pdu.type_code()
                    },
                    "{name}: decoder accepted type {}",
                    frame.pdu.type_code()
                );
                assert_eq!(frame.len, case.bytes.len(), "{name}: frame length");
                // The canonical-decode invariant, pinned per frame.
                let mut out = Vec::new();
                frame.pdu.encode_into(frame.version, &mut out);
                assert_eq!(out, case.bytes, "{name}: accepted frame must re-encode");
            }
            Err(e) => assert_eq!(
                case.expect,
                Expect::Error {
                    rfc_code: code_num(e.error_code()),
                    recoverable: e.class() == ErrorClass::Recoverable,
                },
                "{name}: decoder rejected with {e:?}"
            ),
        }
    }
}

/// The frames marked `legacy: accepts` are exactly the strictness gap
/// between the codecs: the legacy decoder parses them, the wire layer
/// classifies them.
#[test]
fn legacy_gap_frames_still_decode_under_legacy() {
    let mut gap = 0;
    for case in load_corpus() {
        if !case.legacy_accepts {
            continue;
        }
        gap += 1;
        assert!(
            matches!(case.expect, Expect::Error { .. }),
            "{}: legacy-gap frames are strict-decode rejections",
            case.name
        );
        let legacy_verdict = legacy::decode_versioned(&case.bytes);
        assert!(
            matches!(legacy_verdict, Ok(Some(_))),
            "{}: legacy codec was expected to accept, got {legacy_verdict:?}",
            case.name
        );
    }
    assert!(gap >= 5, "the pinned strictness gap spans several frames");
}
