//! The chaos battery: randomized fault schedules over churn timelines,
//! gated on the convergence-or-Stale invariant.
//!
//! For arbitrary seeds, fault profiles, and churn timelines, every
//! settle must leave the router either **bit-identical to an
//! independent [`CacheServer`] oracle replay** or honestly reporting
//! itself non-`Fresh` — with zero panics and zero livelocks (the
//! settle loop's hard cap converts a livelock into a test failure).
//! And because the whole harness is a pure function of its seed, the
//! same seed must replay the same recovery trace element for element.
//!
//! Run with `PROPTEST_CASES=4096` in CI for the deep sweep.

use proptest::prelude::*;
use rpki_roa::Vrp;
use rpki_rtr::cache::CacheServer;
use rpki_rtr::client::Freshness;
use rpki_rtr::faults::{ChaosOptions, ChaosSession, FaultConfig, TraceEvent};
use rpki_rtr::pdu::{PROTOCOL_V0, PROTOCOL_V1};

const SESSION: u16 = 700;

fn vrp(i: u32) -> Vrp {
    format!(
        "10.{}.{}.0/24 => AS{}",
        (i >> 8) & 0xFF,
        i & 0xFF,
        64496 + (i % 16)
    )
    .parse()
    .unwrap()
}

/// One churn epoch: how many fresh VRPs to announce and how many of
/// the oldest live ones to withdraw.
#[derive(Debug, Clone, Copy)]
struct Epoch {
    announce: u8,
    withdraw: u8,
}

fn arb_epoch() -> impl Strategy<Value = Epoch> {
    (1u8..4, 0u8..3).prop_map(|(announce, withdraw)| Epoch { announce, withdraw })
}

fn arb_profile() -> impl Strategy<Value = FaultConfig> {
    prop_oneof![
        1 => Just(FaultConfig::none()),
        3 => Just(FaultConfig::light()),
        3 => Just(FaultConfig::heavy()),
    ]
}

/// Computes the delta for `epoch` against the oracle's current state:
/// fresh announcements from a monotone counter, withdrawals of the
/// oldest live VRPs. The same delta is applied to both the oracle and
/// the chaos cache, so they evolve in lockstep by construction.
fn epoch_delta(oracle: &CacheServer, next_vrp: &mut u32, epoch: Epoch) -> (Vec<Vrp>, Vec<Vrp>) {
    let announced: Vec<Vrp> = (0..epoch.announce)
        .map(|_| {
            let v = vrp(*next_vrp);
            *next_vrp += 1;
            v
        })
        .collect();
    let withdrawn: Vec<Vrp> = oracle
        .vrps()
        .take(epoch.withdraw as usize)
        .cloned()
        .collect();
    (announced, withdrawn)
}

/// Drives one full chaos run and checks every invariant along the way.
/// Returns the trace for determinism comparisons.
fn run_chaos(
    seed: u64,
    profile: FaultConfig,
    epochs: &[Epoch],
    options: ChaosOptions,
) -> Vec<TraceEvent> {
    let initial: Vec<Vrp> = (0..4).map(vrp).collect();
    let mut oracle = CacheServer::with_version(SESSION, &initial, options.cache_version);
    let mut chaos = ChaosSession::with_options(SESSION, &initial, seed, profile, options);
    let mut next_vrp = 1000;

    for epoch in epochs {
        let (announced, withdrawn) = epoch_delta(&oracle, &mut next_vrp, *epoch);
        oracle.update_delta(&announced, &withdrawn);
        chaos.apply_epoch(&announced, &withdrawn);

        let settled = chaos.settle();
        assert!(
            settled.invariant_holds(),
            "seed {seed}: converged={} freshness={:?}",
            settled.converged,
            settled.freshness
        );
        // The chaos cache and the oracle evolve in lockstep; a
        // converged router must match the *independent* replay
        // bit for bit.
        assert_eq!(chaos.cache().serial(), oracle.serial());
        if settled.converged {
            assert_eq!(chaos.router().serial(), oracle.serial());
            assert!(
                chaos.router().vrps().iter().eq(oracle.vrps()),
                "seed {seed}: converged router diverges from the oracle replay"
            );
            assert_eq!(settled.freshness, Freshness::Fresh);
        }
    }
    chaos.trace().to_vec()
}

proptest! {
    /// The headline invariant: arbitrary fault schedules over arbitrary
    /// churn, and the router always converges to the oracle replay or
    /// honestly reports itself non-fresh. No panics, no livelocks.
    #[test]
    fn chaos_converges_or_degrades_honestly(
        seed in any::<u64>(),
        profile in arb_profile(),
        epochs in proptest::collection::vec(arb_epoch(), 1..8),
    ) {
        run_chaos(seed, profile, &epochs, ChaosOptions::default());
    }

    /// Determinism: the same seed replays the same recovery trace,
    /// element for element.
    #[test]
    fn same_seed_replays_the_same_trace(
        seed in any::<u64>(),
        epochs in proptest::collection::vec(arb_epoch(), 1..5),
    ) {
        let a = run_chaos(seed, FaultConfig::heavy(), &epochs, ChaosOptions::default());
        let b = run_chaos(seed, FaultConfig::heavy(), &epochs, ChaosOptions::default());
        prop_assert_eq!(a, b);
    }

    /// Version renegotiation after a faulted reconnect: a v1 router on
    /// a v0 cache is downgraded per-connection, so every fresh
    /// connection must re-open at the preferred v1 and renegotiate from
    /// scratch — the downgrade must never stick across connections.
    #[test]
    fn downgrades_never_stick_across_reconnects(
        seed in any::<u64>(),
        epochs in proptest::collection::vec(arb_epoch(), 1..6),
    ) {
        let options = ChaosOptions {
            cache_version: PROTOCOL_V0,
            router_version: PROTOCOL_V1,
            ..ChaosOptions::default()
        };
        let trace = run_chaos(seed, FaultConfig::heavy(), &epochs, options);
        // Every reconnect re-opens at the preferred version…
        for event in &trace {
            if let TraceEvent::Reconnect { version } = event {
                prop_assert_eq!(*version, PROTOCOL_V1);
            }
        }
        // …and each connection that then completed a sync was
        // downgraded anew: a Synced after a Reconnect implies a
        // Downgrade in between.
        let mut reconnected = false;
        for event in &trace {
            match event {
                TraceEvent::Reconnect { .. } => reconnected = true,
                TraceEvent::Downgrade { from, to } => {
                    prop_assert_eq!((*from, *to), (PROTOCOL_V1, PROTOCOL_V0));
                    reconnected = false;
                }
                TraceEvent::Synced { .. } => {
                    prop_assert!(
                        !reconnected,
                        "sync completed on a reconnected v1 connection with no renegotiation"
                    );
                }
                _ => {}
            }
        }
    }
}
