//! Cross-module rtr tests: cache restarts, session changes, and recovery
//! behaviour a production router must survive.

use std::thread;

use rpki_roa::Vrp;
use rpki_rtr::cache::CacheServer;
use rpki_rtr::client::{ClientState, RouterClient};
use rpki_rtr::transport::{memory_pair, Transport};

fn vrps(list: &[&str]) -> Vec<Vrp> {
    list.iter().map(|s| s.parse().unwrap()).collect()
}

#[test]
fn router_recovers_from_cache_restart() {
    // Phase 1: sync against cache A (session 1).
    let set_a = vrps(&["10.0.0.0/8 => AS1", "11.0.0.0/8 => AS2"]);
    let mut cache_a = CacheServer::new(1, &set_a);
    let mut router = RouterClient::new();
    {
        let (mut router_side, mut cache_side) = memory_pair();
        let t = thread::spawn(move || {
            cache_a.serve_one(&mut cache_side).unwrap();
        });
        router.synchronize(&mut router_side).unwrap();
        t.join().unwrap();
    }
    assert_eq!(router.vrps().len(), 2);
    assert_eq!(router.state(), ClientState::Synchronized);

    // Phase 2: the cache dies and restarts as session 2 with new data.
    // The router's serial query must be answered with Cache Reset, after
    // which it resets and pulls the full new set.
    let set_b = vrps(&["12.0.0.0/8 => AS3"]);
    let mut cache_b = CacheServer::new(2, &set_b);
    {
        let (mut router_side, mut cache_side) = memory_pair();
        let t = thread::spawn(move || {
            // Serve two requests: the doomed serial query, then the reset.
            cache_b.serve_one(&mut cache_side).unwrap();
            cache_b.serve_one(&mut cache_side).unwrap();
        });
        router.synchronize(&mut router_side).unwrap();
        t.join().unwrap();
    }
    assert_eq!(router.state(), ClientState::Synchronized);
    assert_eq!(router.vrps().len(), 1);
    assert!(router.vrps().contains(&vrps(&["12.0.0.0/8 => AS3"])[0]));
}

#[test]
fn router_survives_many_incremental_updates() {
    let mut cache = CacheServer::new(5, &vrps(&["10.0.0.0/8 => AS1"]));
    let mut router = RouterClient::new();

    // Initial full sync.
    let (mut router_side, mut cache_side) = memory_pair();
    for pdu in cache.handle(&rpki_rtr::pdu::Pdu::ResetQuery) {
        cache_side.send(&pdu).unwrap();
    }
    router.synchronize(&mut router_side).unwrap();

    // Twelve updates, each followed by a delta sync, exercising the
    // history window and delta coalescing.
    for i in 0..12u32 {
        let mut set = vrps(&["10.0.0.0/8 => AS1"]);
        set.extend(vrps(&[&format!("10.{}.0.0/16 => AS1", i % 4)]));
        if i % 3 == 0 {
            set.push(format!("172.16.{}.0/24 => AS9", i).parse().unwrap());
        }
        cache.update(&set);
        for pdu in cache.handle(&router.query()) {
            router.handle(&pdu).unwrap();
        }
        assert_eq!(router.serial(), cache.serial());
        let expect: std::collections::BTreeSet<Vrp> = set.into_iter().collect();
        assert_eq!(router.vrps(), &expect, "update {i}");
    }
}

#[test]
fn concurrent_routers_share_one_cache_state() {
    use parking_lot::Mutex;
    use std::sync::Arc;

    let cache = Arc::new(Mutex::new(CacheServer::new(
        9,
        &vrps(&["10.0.0.0/8 => AS1", "2001:db8::/32 => AS2"]),
    )));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let cache = Arc::clone(&cache);
        handles.push(thread::spawn(move || {
            let mut router = RouterClient::new();
            let response = cache.lock().handle(&rpki_rtr::pdu::Pdu::ResetQuery);
            for pdu in response {
                router.handle(&pdu).unwrap();
            }
            router.vrps().len()
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 2);
    }
}
