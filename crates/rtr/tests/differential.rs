//! Differential battery: the zero-copy cursor codec against the legacy
//! allocating codec it replaced.
//!
//! On **valid** PDUs the two codecs must be indistinguishable — same
//! bytes out of the encoder, same PDU back from the decoder, at both
//! protocol versions, one frame at a time and concatenated into streams.
//! The corpus is a deterministic edge-value sweep of every variant plus
//! a randomized layer on top.
//!
//! (On *malformed* input the codecs intentionally differ — the strict
//! decoder rejects what the legacy one waved through; those frames live
//! in `tests/corpus/` with the strict verdict pinned.)

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use rpki_prefix::{Prefix, Prefix4, Prefix6};
use rpki_roa::{Asn, Vrp};
use rpki_rtr::pdu::{legacy, ErrorCode, Flags, Pdu, Timing, PROTOCOL_V0, PROTOCOL_V1};

fn v4(bits: u32, len: u8, max_len: u8, asn: u32) -> Vrp {
    Vrp::new(
        Prefix::V4(Prefix4::new(bits, len).unwrap()),
        max_len,
        Asn(asn),
    )
}

fn v6(bits: u128, len: u8, max_len: u8, asn: u32) -> Vrp {
    Vrp::new(
        Prefix::V6(Prefix6::new(bits, len).unwrap()),
        max_len,
        Asn(asn),
    )
}

/// Every PDU variant at its edge values: zero/max ids and serials,
/// host-route and default-route prefixes, maxLength at both ends of its
/// window, empty / embedded / multi-byte-UTF-8 Error Reports.
fn deterministic_corpus() -> Vec<Pdu> {
    let mut out = vec![
        Pdu::SerialNotify {
            session_id: 0,
            serial: 0,
        },
        Pdu::SerialNotify {
            session_id: u16::MAX,
            serial: u32::MAX,
        },
        Pdu::SerialQuery {
            session_id: 0x1234,
            serial: 0x8000_0000,
        },
        Pdu::ResetQuery,
        Pdu::CacheResponse { session_id: 0 },
        Pdu::CacheResponse {
            session_id: u16::MAX,
        },
        Pdu::CacheReset,
        Pdu::EndOfData {
            session_id: 7,
            serial: 42,
            timing: Timing::default(),
        },
        Pdu::EndOfData {
            session_id: u16::MAX,
            serial: u32::MAX,
            timing: Timing {
                refresh: 0,
                retry: 0,
                expire: 0,
            },
        },
    ];
    for flags in [Flags::Announce, Flags::Withdraw] {
        out.push(Pdu::Prefix {
            flags,
            vrp: v4(0, 0, 0, 0),
        });
        out.push(Pdu::Prefix {
            flags,
            vrp: v4(0, 0, 32, u32::MAX),
        });
        out.push(Pdu::Prefix {
            flags,
            vrp: v4(0xffff_ffff, 32, 32, 64512),
        });
        out.push(Pdu::Prefix {
            flags,
            vrp: v4(0x0a00_0000, 8, 24, 65001),
        });
        out.push(Pdu::Prefix {
            flags,
            vrp: v6(0, 0, 0, 1),
        });
        out.push(Pdu::Prefix {
            flags,
            vrp: v6(u128::MAX, 128, 128, 2),
        });
        out.push(Pdu::Prefix {
            flags,
            vrp: v6(0x2001_0db8 << 96, 32, 48, 3),
        });
    }
    for (inner, text) in [
        (vec![], String::new()),
        (vec![], "plain ascii diagnostic".to_string()),
        (
            Pdu::ResetQuery.to_bytes().to_vec(),
            "reset query rejected".to_string(),
        ),
        (vec![0u8; 3], "é€𝄞🦀 multi-byte".to_string()),
        (vec![0xff; 40], "\u{10FFFF}\u{0301}".to_string()),
    ] {
        for code in [
            ErrorCode::CorruptData,
            ErrorCode::InternalError,
            ErrorCode::NoDataAvailable,
            ErrorCode::InvalidRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnsupportedPduType,
            ErrorCode::WithdrawalOfUnknown,
            ErrorCode::DuplicateAnnouncement,
            ErrorCode::UnexpectedVersion,
        ] {
            out.push(Pdu::ErrorReport {
                code,
                pdu: Bytes::from(inner.clone()),
                text: text.clone(),
            });
        }
    }
    out
}

fn encode_new(pdu: &Pdu, version: u8) -> Vec<u8> {
    let mut buf = BytesMut::new();
    pdu.encode_versioned(version, &mut buf);
    buf.to_vec()
}

fn encode_old(pdu: &Pdu, version: u8) -> Vec<u8> {
    let mut buf = BytesMut::new();
    legacy::encode_versioned(pdu, version, &mut buf);
    buf.to_vec()
}

/// Asserts full codec agreement on one valid PDU at one version.
fn assert_agreement(pdu: &Pdu, version: u8) {
    let new_bytes = encode_new(pdu, version);
    let old_bytes = encode_old(pdu, version);
    assert_eq!(
        new_bytes, old_bytes,
        "encoders must agree on {pdu:?} at v{version}"
    );
    let (new_pdu, new_used, new_v) = Pdu::decode_versioned(&new_bytes)
        .expect("strict decode of a valid frame")
        .expect("complete frame");
    let (old_pdu, old_used, old_v) = legacy::decode_versioned(&new_bytes)
        .expect("legacy decode of a valid frame")
        .expect("complete frame");
    assert_eq!((new_used, new_v), (old_used, old_v), "framing must agree");
    assert_eq!(
        new_pdu, old_pdu,
        "decoders must agree on {pdu:?} at v{version}"
    );
}

#[test]
fn codecs_agree_on_deterministic_corpus() {
    let corpus = deterministic_corpus();
    assert!(corpus.len() > 60, "the edge sweep covers every variant");
    for version in [PROTOCOL_V0, PROTOCOL_V1] {
        for pdu in &corpus {
            assert_agreement(pdu, version);
        }
    }
}

#[test]
fn codecs_agree_on_concatenated_corpus_stream() {
    // The whole corpus as one byte stream, decoded frame by frame with
    // both codecs walking in lockstep.
    let corpus = deterministic_corpus();
    for version in [PROTOCOL_V0, PROTOCOL_V1] {
        let mut stream = Vec::new();
        for pdu in &corpus {
            stream.extend_from_slice(&encode_new(pdu, version));
        }
        let mut view: &[u8] = &stream;
        let mut count = 0;
        while !view.is_empty() {
            let (new_pdu, new_used, _) = Pdu::decode_versioned(view).unwrap().unwrap();
            let (old_pdu, old_used, _) = legacy::decode_versioned(view).unwrap().unwrap();
            assert_eq!(new_pdu, old_pdu);
            assert_eq!(new_used, old_used);
            view = &view[new_used..];
            count += 1;
        }
        assert_eq!(count, corpus.len());
    }
}

// ---------------------------------------------------------------------
// Randomized layer
// ---------------------------------------------------------------------

fn arb_vrp() -> impl Strategy<Value = Vrp> {
    prop_oneof![
        (any::<u32>(), 0u8..=32, 0u8..=8, any::<u32>()).prop_map(|(b, l, e, a)| {
            let p = Prefix::V4(Prefix4::new_truncated(b, l));
            Vrp::new(p, l.saturating_add(e), Asn(a))
        }),
        (any::<u128>(), 0u8..=128, 0u8..=8, any::<u32>()).prop_map(|(b, l, e, a)| {
            let p = Prefix::V6(Prefix6::new_truncated(b, l));
            Vrp::new(p, l.saturating_add(e), Asn(a))
        }),
    ]
}

fn arb_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialNotify {
            session_id: s,
            serial: n
        }),
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialQuery {
            session_id: s,
            serial: n
        }),
        Just(Pdu::ResetQuery),
        any::<u16>().prop_map(|s| Pdu::CacheResponse { session_id: s }),
        (any::<bool>(), arb_vrp()).prop_map(|(a, vrp)| Pdu::Prefix {
            flags: if a { Flags::Announce } else { Flags::Withdraw },
            vrp,
        }),
        (
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(s, n, r, t, e)| Pdu::EndOfData {
                session_id: s,
                serial: n,
                timing: Timing {
                    refresh: r,
                    retry: t,
                    expire: e
                },
            }),
        Just(Pdu::CacheReset),
        (prop::collection::vec(any::<u8>(), 0..64), ".*{0,32}").prop_map(|(mut inner, text)| {
            // RFC 8210 §5.10: no nested Error Reports in valid traffic.
            if inner.len() >= 2 && inner[1] == 10 {
                inner[1] = 0;
            }
            Pdu::ErrorReport {
                code: ErrorCode::CorruptData,
                pdu: Bytes::from(inner),
                text,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn codecs_agree_on_random_pdus(pdu in arb_pdu(), v1 in any::<bool>()) {
        let version = if v1 { PROTOCOL_V1 } else { PROTOCOL_V0 };
        assert_agreement(&pdu, version);
    }

    /// Streams of random valid PDUs decode identically under both
    /// codecs, at both versions.
    #[test]
    fn codecs_agree_on_random_streams(pdus in prop::collection::vec(arb_pdu(), 0..12), v1 in any::<bool>()) {
        let version = if v1 { PROTOCOL_V1 } else { PROTOCOL_V0 };
        let mut stream = Vec::new();
        for pdu in &pdus {
            stream.extend_from_slice(&encode_new(pdu, version));
        }
        let mut view: &[u8] = &stream;
        let mut decoded = 0usize;
        while !view.is_empty() {
            let (new_pdu, new_used, _) = Pdu::decode_versioned(view).unwrap().unwrap();
            let (old_pdu, old_used, _) = legacy::decode_versioned(view).unwrap().unwrap();
            prop_assert_eq!(new_pdu, old_pdu);
            prop_assert_eq!(new_used, old_used);
            view = &view[new_used..];
            decoded += 1;
        }
        prop_assert_eq!(decoded, pdus.len());
    }
}
