//! Property tests for the rpki-rtr wire codec and the cache/client pair.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use rpki_prefix::{Prefix, Prefix4, Prefix6};
use rpki_roa::{Asn, Vrp};
use rpki_rtr::cache::CacheServer;
use rpki_rtr::client::RouterClient;
use rpki_rtr::pdu::{ErrorCode, Flags, Pdu, Timing};

fn arb_vrp() -> impl Strategy<Value = Vrp> {
    prop_oneof![
        (any::<u32>(), 0u8..=32, 0u8..=8, any::<u32>()).prop_map(|(b, l, e, a)| {
            let p = Prefix::V4(Prefix4::new_truncated(b, l));
            Vrp::new(p, l.saturating_add(e), Asn(a))
        }),
        (any::<u128>(), 0u8..=128, 0u8..=8, any::<u32>()).prop_map(|(b, l, e, a)| {
            let p = Prefix::V6(Prefix6::new_truncated(b, l));
            Vrp::new(p, l.saturating_add(e), Asn(a))
        }),
    ]
}

fn arb_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialNotify {
            session_id: s,
            serial: n
        }),
        (any::<u16>(), any::<u32>()).prop_map(|(s, n)| Pdu::SerialQuery {
            session_id: s,
            serial: n
        }),
        Just(Pdu::ResetQuery),
        any::<u16>().prop_map(|s| Pdu::CacheResponse { session_id: s }),
        (any::<bool>(), arb_vrp()).prop_map(|(a, vrp)| Pdu::Prefix {
            flags: if a { Flags::Announce } else { Flags::Withdraw },
            vrp,
        }),
        (
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(s, n, r, t, e)| Pdu::EndOfData {
                session_id: s,
                serial: n,
                timing: Timing {
                    refresh: r,
                    retry: t,
                    expire: e
                },
            }),
        Just(Pdu::CacheReset),
        (prop::collection::vec(any::<u8>(), 0..64), ".*{0,32}").prop_map(|(mut inner, text)| {
            // An Error Report must not encapsulate an Error Report
            // (RFC 8210 §5.10) — steer the arbitrary inner bytes away
            // from type code 10 so the generated PDU is encodable.
            if inner.len() >= 2 && inner[1] == 10 {
                inner[1] = 0;
            }
            Pdu::ErrorReport {
                code: ErrorCode::CorruptData,
                pdu: Bytes::from(inner),
                text,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn pdu_round_trip(pdu in arb_pdu()) {
        let bytes = pdu.to_bytes();
        let (back, used) = Pdu::decode(&bytes).unwrap().unwrap();
        prop_assert_eq!(back, pdu);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn concatenated_stream_decodes(pdus in prop::collection::vec(arb_pdu(), 0..10)) {
        let mut buf = BytesMut::new();
        for p in &pdus {
            p.encode(&mut buf);
        }
        let mut decoded = Vec::new();
        let mut view: &[u8] = &buf;
        while let Some((p, used)) = Pdu::decode(view).unwrap() {
            decoded.push(p);
            view = &view[used..];
        }
        prop_assert!(view.is_empty());
        prop_assert_eq!(decoded, pdus);
    }

    #[test]
    fn decoder_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Pdu::decode(&data);
    }

    #[test]
    fn truncated_pdu_is_incomplete_not_error(pdu in arb_pdu(), cut_frac in 0.0f64..1.0) {
        let bytes = pdu.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            // A prefix of a valid PDU must never decode to a *different*
            // PDU; it is either incomplete (None) or (if the header got
            // cut inside the length field) an error — never a wrong value.
            match Pdu::decode(&bytes[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some((decoded, _))) => prop_assert_eq!(decoded, pdu),
            }
        }
    }

    /// A router fully synchronized over the protocol holds exactly the
    /// cache's set, whatever that set is.
    #[test]
    fn sync_transfers_exact_set(vrps in prop::collection::btree_set(arb_vrp(), 0..50)) {
        let list: Vec<Vrp> = vrps.iter().copied().collect();
        let cache = CacheServer::new(9, &list);
        let mut router = RouterClient::new();
        for pdu in cache.handle(&Pdu::ResetQuery) {
            router.handle(&pdu).unwrap();
        }
        prop_assert_eq!(router.vrps(), &vrps);
    }

    /// Updating the cache and replaying the delta leaves the router with
    /// the new set.
    #[test]
    fn delta_sync_converges(
        initial in prop::collection::btree_set(arb_vrp(), 0..30),
        updated in prop::collection::btree_set(arb_vrp(), 0..30),
    ) {
        let initial_list: Vec<Vrp> = initial.iter().copied().collect();
        let updated_list: Vec<Vrp> = updated.iter().copied().collect();
        let mut cache = CacheServer::new(4, &initial_list);
        let mut router = RouterClient::new();
        for pdu in cache.handle(&Pdu::ResetQuery) {
            router.handle(&pdu).unwrap();
        }
        cache.update(&updated_list);
        for pdu in cache.handle(&router.query()) {
            router.handle(&pdu).unwrap();
        }
        prop_assert_eq!(router.vrps(), &updated);
        prop_assert_eq!(router.serial(), cache.serial());
    }
}
