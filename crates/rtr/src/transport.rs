//! Blocking transports carrying rpki-rtr PDUs.
//!
//! The protocol machines in [`cache`](crate::cache) and
//! [`client`](crate::client) are sans-io; a [`Transport`] is the thin
//! blocking pipe between them. Two implementations:
//!
//! * [`memory_pair`] — an in-process duplex channel (tests, examples).
//!   The channel carries **encoded frames**, not `Pdu` clones, so every
//!   memory-transport test exercises the canonical wire codec and the
//!   per-end version negotiation exactly like a socket would.
//! * [`TcpTransport`] — a real socket for the router (client) side.
//!
//! The concurrent cache-side server lives in [`crate::server`]: a
//! non-blocking event loop fanning shared response images to every
//! session, replacing the old thread-per-connection server.

use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::pdu::{Pdu, PduError, PROTOCOL_V0, PROTOCOL_V1};
use crate::wire::{self, Negotiation, HEADER_LEN, MAX_PDU_LEN};

/// Transport failures.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the connection.
    Closed,
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Protocol(PduError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Io(e) => write!(f, "I/O error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<PduError> for TransportError {
    fn from(e: PduError) -> Self {
        TransportError::Protocol(e)
    }
}

impl PartialEq for TransportError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (TransportError::Closed, TransportError::Closed) => true,
            (TransportError::Protocol(a), TransportError::Protocol(b)) => a == b,
            _ => false,
        }
    }
}

/// A blocking, message-oriented PDU pipe.
pub trait Transport {
    /// Sends one PDU.
    fn send(&mut self, pdu: &Pdu) -> Result<(), TransportError>;
    /// Receives the next PDU, blocking until one arrives.
    fn recv(&mut self) -> Result<Pdu, TransportError>;
}

/// One end of an in-memory duplex transport.
///
/// Sends travel the channel as encoded wire frames at the end's
/// protocol version; receives run the zero-copy decoder and a real
/// per-end [`Negotiation`] — the same codec path a socket exercises, so
/// a PDU that cannot survive the wire cannot sneak through an in-memory
/// test either.
#[derive(Debug)]
pub struct MemoryTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Received frame bytes not yet decoded (a sender always ships whole
    /// frames, but the decoder must not rely on that).
    buf: Vec<u8>,
    version: u8,
    negotiation: Negotiation,
}

/// Creates a connected pair of in-memory transports at protocol
/// version 1.
pub fn memory_pair() -> (MemoryTransport, MemoryTransport) {
    memory_pair_with_version(PROTOCOL_V1)
}

/// Creates a connected pair of in-memory transports pinned to
/// `version` on both ends.
///
/// # Panics
///
/// Panics on unknown versions.
pub fn memory_pair_with_version(version: u8) -> (MemoryTransport, MemoryTransport) {
    assert!(
        version == PROTOCOL_V0 || version == PROTOCOL_V1,
        "unknown protocol version {version}"
    );
    let (tx_a, rx_a) = unbounded();
    let (tx_b, rx_b) = unbounded();
    let end = |tx, rx| MemoryTransport {
        tx,
        rx,
        buf: Vec::new(),
        version,
        negotiation: Negotiation::with_max(version),
    };
    (end(tx_a, rx_b), end(tx_b, rx_a))
}

impl Transport for MemoryTransport {
    fn send(&mut self, pdu: &Pdu) -> Result<(), TransportError> {
        let mut frame = Vec::new();
        pdu.as_wire().encode_into(self.version, &mut frame);
        self.tx.send(frame).map_err(|_| TransportError::Closed)
    }

    fn recv(&mut self) -> Result<Pdu, TransportError> {
        loop {
            if let Some(frame) = wire::decode_frame(&self.buf)? {
                self.negotiation.accept(frame.version)?;
                let pdu = frame.pdu.to_owned();
                let used = frame.len;
                self.buf.drain(..used);
                return Ok(pdu);
            }
            match self.rx.recv() {
                Ok(chunk) => self.buf.extend_from_slice(&chunk),
                Err(_) if self.buf.is_empty() => return Err(TransportError::Closed),
                Err(_) => {
                    // The peer hung up mid-frame: a truncation, not a
                    // clean close.
                    return Err(TransportError::Protocol(PduError::BadLength {
                        type_code: 0xFF,
                        length: self.buf.len(),
                    }));
                }
            }
        }
    }
}

/// A PDU transport over a TCP stream, buffering partial frames.
///
/// Sends at the transport's protocol version and checks every received
/// frame against a per-connection [`Negotiation`]: the first inbound
/// frame pins the session, later frames at another version fail with
/// the fatal Unexpected-Version error.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    buf: BytesMut,
    version: u8,
    negotiation: Negotiation,
}

impl TcpTransport {
    /// Wraps a connected stream, speaking protocol version 1.
    pub fn new(stream: TcpStream) -> TcpTransport {
        TcpTransport::with_version(stream, PROTOCOL_V1)
    }

    /// Wraps a connected stream speaking exactly `version` on the wire —
    /// the reconnect path after a downgrade
    /// ([`crate::RouterClient::downgrade_to`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown versions.
    pub fn with_version(stream: TcpStream, version: u8) -> TcpTransport {
        assert!(
            version == PROTOCOL_V0 || version == PROTOCOL_V1,
            "unknown protocol version {version}"
        );
        TcpTransport {
            stream,
            buf: BytesMut::with_capacity(4096),
            version,
            // Accept responses up to our own version; a frame above it is
            // the recoverable BadVersion, below it the fatal mismatch
            // once pinned.
            negotiation: Negotiation::with_max(version),
        }
    }

    /// Connects to a cache server at protocol version 1.
    pub fn connect(addr: SocketAddr) -> Result<TcpTransport, TransportError> {
        Ok(TcpTransport::new(TcpStream::connect(addr)?))
    }

    /// Connects at a specific protocol version.
    pub fn connect_with_version(
        addr: SocketAddr,
        version: u8,
    ) -> Result<TcpTransport, TransportError> {
        Ok(TcpTransport::with_version(
            TcpStream::connect(addr)?,
            version,
        ))
    }

    /// The protocol version this transport encodes with.
    pub fn version(&self) -> u8 {
        self.version
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, pdu: &Pdu) -> Result<(), TransportError> {
        let mut bytes = BytesMut::new();
        pdu.encode_versioned(self.version, &mut bytes);
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Pdu, TransportError> {
        loop {
            // Fail fast on a hostile length claim: the moment the 8-byte
            // header is in, a declared frame length outside the legal
            // PDU range is a CorruptData-class protocol error — the
            // buffer must never grow toward a 4 GiB promise waiting for
            // the decoder to see the "complete" frame.
            if self.buf.len() >= HEADER_LEN {
                let declared =
                    u32::from_be_bytes(self.buf[4..8].try_into().expect("4 bytes")) as usize;
                if !(HEADER_LEN..=MAX_PDU_LEN).contains(&declared) {
                    return Err(TransportError::Protocol(PduError::BadLength {
                        type_code: self.buf[1],
                        length: declared,
                    }));
                }
            }
            // Zero-copy decode straight from the receive buffer; the
            // owned Pdu is only materialized for accepted frames.
            if let Some(frame) = wire::decode_frame(&self.buf)? {
                self.negotiation.accept(frame.version)?;
                let pdu = frame.pdu.to_owned();
                let used = frame.len;
                let _ = self.buf.split_to(used);
                return Ok(pdu);
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return if self.buf.is_empty() {
                    Err(TransportError::Closed)
                } else {
                    Err(TransportError::Protocol(PduError::BadLength {
                        type_code: 0xFF,
                        length: self.buf.len(),
                    }))
                };
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheServer;
    use crate::client::RouterClient;
    use rpki_roa::Vrp;
    use std::net::TcpListener;
    use std::thread;

    fn vrps(list: &[&str]) -> Vec<Vrp> {
        list.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn memory_pair_moves_pdus() {
        let (mut a, mut b) = memory_pair();
        a.send(&Pdu::ResetQuery).unwrap();
        assert_eq!(b.recv().unwrap(), Pdu::ResetQuery);
        b.send(&Pdu::CacheReset).unwrap();
        assert_eq!(a.recv().unwrap(), Pdu::CacheReset);
    }

    #[test]
    fn memory_sync_end_to_end() {
        let set = vrps(&["10.0.0.0/8 => AS1", "2001:db8::/32-48 => AS2"]);
        let mut cache = CacheServer::new(5, &set);
        let (mut router_side, mut cache_side) = memory_pair();
        let server = thread::spawn(move || cache.serve_one(&mut cache_side));
        let mut router = RouterClient::new();
        router.synchronize(&mut router_side).unwrap();
        server.join().unwrap().unwrap();
        assert_eq!(router.vrps().len(), 2);
    }

    // The channel carries frames, not Pdu clones: a PDU that cannot
    // encode must fail at `send`, inside the codec, not arrive pristine
    // on the other side. A nested Error Report is exactly the shape the
    // encoder's nesting guard rejects (RFC 8210 §5.10) — the PR 7 panic
    // a clone-passing channel would have hidden. The guard is a
    // debug_assert, hence the cfg.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must not encapsulate an error report")]
    fn memory_pair_exercises_the_wire_codec() {
        let inner = Pdu::ErrorReport {
            code: crate::pdu::ErrorCode::CorruptData,
            pdu: bytes::Bytes::new(),
            text: "inner".into(),
        };
        let nested = Pdu::ErrorReport {
            code: crate::pdu::ErrorCode::CorruptData,
            pdu: inner.to_bytes(),
            text: "outer".into(),
        };
        let (mut a, _b) = memory_pair();
        let _ = a.send(&nested);
    }

    #[test]
    fn memory_pair_pins_version_like_a_socket() {
        // A v0 end must reject a v1 frame exactly as the TCP transport
        // would: the negotiation runs on the receive path.
        let (mut v1, _keep) = memory_pair();
        let (_other, mut v0) = memory_pair_with_version(PROTOCOL_V0);
        // Graft the v1 sender onto the v0 receiver's channel.
        v0.buf.clear();
        let mut frame = Vec::new();
        Pdu::ResetQuery
            .as_wire()
            .encode_into(PROTOCOL_V1, &mut frame);
        v0.buf.extend_from_slice(&frame);
        assert!(matches!(v0.recv(), Err(TransportError::Protocol(_))));
        // And the v1 end happily receives its own version.
        let mut echo = Vec::new();
        Pdu::ResetQuery
            .as_wire()
            .encode_into(PROTOCOL_V1, &mut echo);
        v1.buf.extend_from_slice(&echo);
        assert_eq!(v1.recv().unwrap(), Pdu::ResetQuery);
    }

    #[test]
    fn tcp_partial_frames_reassembled() {
        // Write a PDU byte by byte; the receiver must reassemble.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let bytes = Pdu::SerialNotify {
                session_id: 2,
                serial: 9,
            }
            .to_bytes();
            for b in bytes.iter() {
                s.write_all(&[*b]).unwrap();
                s.flush().unwrap();
            }
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream);
        assert_eq!(
            t.recv().unwrap(),
            Pdu::SerialNotify {
                session_id: 2,
                serial: 9
            }
        );
        writer.join().unwrap();
    }

    #[test]
    fn tcp_hostile_length_claim_fails_fast() {
        // An adversarial peer declares a ~4 GiB frame. The transport
        // must reject it the moment the header arrives — with a
        // CorruptData-class protocol error and without buffering toward
        // the declared length.
        use crate::pdu::ErrorCode;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // version 1, type 4 (Prefix), zero field, length u32::MAX.
            s.write_all(&[1, 4, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
            s
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream);
        match t.recv() {
            Err(TransportError::Protocol(e)) => {
                assert!(
                    matches!(
                        e,
                        PduError::BadLength {
                            length: 0xFFFF_FFFF,
                            ..
                        }
                    ),
                    "expected the hostile length in the error, got {e:?}"
                );
                assert_eq!(e.error_code(), ErrorCode::CorruptData);
            }
            other => panic!("expected fail-fast protocol error, got {other:?}"),
        }
        // The 8 header bytes are all the transport ever held.
        assert!(
            t.buf.len() <= 8,
            "buffer must not grow toward the declared length (held {})",
            t.buf.len()
        );
        drop(writer.join().unwrap());
    }

    #[test]
    fn tcp_mid_pdu_close_is_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let bytes = Pdu::CacheReset.to_bytes();
            s.write_all(&bytes[..4]).unwrap(); // half a header
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream);
        assert!(matches!(t.recv(), Err(TransportError::Protocol(_))));
        writer.join().unwrap();
    }

    #[test]
    fn closed_memory_channel() {
        let (mut a, b) = memory_pair();
        drop(b);
        assert_eq!(a.send(&Pdu::ResetQuery), Err(TransportError::Closed));
        assert_eq!(a.recv().unwrap_err(), TransportError::Closed);
    }
}
