//! Blocking transports carrying rpki-rtr PDUs.
//!
//! The protocol machines in [`cache`](crate::cache) and
//! [`client`](crate::client) are sans-io; a [`Transport`] is the thin
//! blocking pipe between them. Two implementations:
//!
//! * [`memory_pair`] — an in-process duplex channel (tests, examples);
//! * [`TcpTransport`] — a real socket, one thread per connection, exactly
//!   how a local cache daemon serves its routers.

use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::cache::{CacheServer, WireOutcome};
use crate::pdu::{ErrorCode, Pdu, PduError, PROTOCOL_V0, PROTOCOL_V1};
use crate::wire::{self, Negotiation};

/// Transport failures.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the connection.
    Closed,
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Protocol(PduError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Io(e) => write!(f, "I/O error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<PduError> for TransportError {
    fn from(e: PduError) -> Self {
        TransportError::Protocol(e)
    }
}

impl PartialEq for TransportError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (TransportError::Closed, TransportError::Closed) => true,
            (TransportError::Protocol(a), TransportError::Protocol(b)) => a == b,
            _ => false,
        }
    }
}

/// A blocking, message-oriented PDU pipe.
pub trait Transport {
    /// Sends one PDU.
    fn send(&mut self, pdu: &Pdu) -> Result<(), TransportError>;
    /// Receives the next PDU, blocking until one arrives.
    fn recv(&mut self) -> Result<Pdu, TransportError>;
}

/// One end of an in-memory duplex transport.
#[derive(Debug)]
pub struct MemoryTransport {
    tx: Sender<Pdu>,
    rx: Receiver<Pdu>,
}

/// Creates a connected pair of in-memory transports.
pub fn memory_pair() -> (MemoryTransport, MemoryTransport) {
    let (tx_a, rx_a) = unbounded();
    let (tx_b, rx_b) = unbounded();
    (
        MemoryTransport { tx: tx_a, rx: rx_b },
        MemoryTransport { tx: tx_b, rx: rx_a },
    )
}

impl Transport for MemoryTransport {
    fn send(&mut self, pdu: &Pdu) -> Result<(), TransportError> {
        self.tx
            .send(pdu.clone())
            .map_err(|_| TransportError::Closed)
    }

    fn recv(&mut self) -> Result<Pdu, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Closed)
    }
}

/// A PDU transport over a TCP stream, buffering partial frames.
///
/// Sends at the transport's protocol version and checks every received
/// frame against a per-connection [`Negotiation`]: the first inbound
/// frame pins the session, later frames at another version fail with
/// the fatal Unexpected-Version error.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    buf: BytesMut,
    version: u8,
    negotiation: Negotiation,
}

impl TcpTransport {
    /// Wraps a connected stream, speaking protocol version 1.
    pub fn new(stream: TcpStream) -> TcpTransport {
        TcpTransport::with_version(stream, PROTOCOL_V1)
    }

    /// Wraps a connected stream speaking exactly `version` on the wire —
    /// the reconnect path after a downgrade
    /// ([`crate::RouterClient::downgrade_to`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown versions.
    pub fn with_version(stream: TcpStream, version: u8) -> TcpTransport {
        assert!(
            version == PROTOCOL_V0 || version == PROTOCOL_V1,
            "unknown protocol version {version}"
        );
        TcpTransport {
            stream,
            buf: BytesMut::with_capacity(4096),
            version,
            // Accept responses up to our own version; a frame above it is
            // the recoverable BadVersion, below it the fatal mismatch
            // once pinned.
            negotiation: Negotiation::with_max(version),
        }
    }

    /// Connects to a cache server at protocol version 1.
    pub fn connect(addr: SocketAddr) -> Result<TcpTransport, TransportError> {
        Ok(TcpTransport::new(TcpStream::connect(addr)?))
    }

    /// Connects at a specific protocol version.
    pub fn connect_with_version(
        addr: SocketAddr,
        version: u8,
    ) -> Result<TcpTransport, TransportError> {
        Ok(TcpTransport::with_version(
            TcpStream::connect(addr)?,
            version,
        ))
    }

    /// The protocol version this transport encodes with.
    pub fn version(&self) -> u8 {
        self.version
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, pdu: &Pdu) -> Result<(), TransportError> {
        let mut bytes = BytesMut::new();
        pdu.encode_versioned(self.version, &mut bytes);
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Pdu, TransportError> {
        loop {
            // Zero-copy decode straight from the receive buffer; the
            // owned Pdu is only materialized for accepted frames.
            if let Some(frame) = wire::decode_frame(&self.buf)? {
                self.negotiation.accept(frame.version)?;
                let pdu = frame.pdu.to_owned();
                let used = frame.len;
                let _ = self.buf.split_to(used);
                return Ok(pdu);
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return if self.buf.is_empty() {
                    Err(TransportError::Closed)
                } else {
                    Err(TransportError::Protocol(PduError::BadLength {
                        type_code: 0xFF,
                        length: self.buf.len(),
                    }))
                };
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// A router connection's write handle paired with its negotiation
/// state, so Serial Notify pushes go out at the version each session
/// actually speaks.
type Notifier = (TcpStream, Arc<Mutex<Negotiation>>);

/// A threaded TCP cache server: the daemon on Figure 1's local cache,
/// serving the VRP/PDU list to any number of routers.
pub struct TcpCacheServer {
    listener: TcpListener,
    cache: Arc<Mutex<CacheServer>>,
    notifiers: Arc<Mutex<Vec<Notifier>>>,
}

impl TcpCacheServer {
    /// Binds a listener and wraps the cache state.
    pub fn bind(addr: SocketAddr, cache: CacheServer) -> Result<TcpCacheServer, TransportError> {
        Ok(TcpCacheServer {
            listener: TcpListener::bind(addr)?,
            cache: Arc::new(Mutex::new(cache)),
            notifiers: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Shared handle to the cache state, e.g. to run
    /// [`CacheServer::update`] while serving.
    pub fn cache(&self) -> Arc<Mutex<CacheServer>> {
        Arc::clone(&self.cache)
    }

    /// Replaces the cache's VRP set and pushes the resulting Serial Notify
    /// to every connected router (RFC 8210 §5.2), pruning dead
    /// connections. Each notify is encoded at the version that router's
    /// session negotiated (a session that has not pinned yet gets the
    /// cache's maximum). Returns the number of routers notified.
    pub fn update_and_notify(&self, vrps: &[rpki_roa::Vrp]) -> usize {
        let (notify, max_version) = {
            let mut cache = self.cache.lock();
            (cache.update(vrps), cache.version())
        };
        let mut notifiers = self.notifiers.lock();
        notifiers.retain_mut(|(stream, negotiation)| {
            let version = negotiation.lock().version().unwrap_or(max_version);
            let mut bytes = BytesMut::new();
            notify.encode_versioned(version, &mut bytes);
            stream.write_all(&bytes).is_ok()
        });
        notifiers.len()
    }

    /// Accepts exactly `n` connections, serving each on its own thread,
    /// then returns the join handles. (A production daemon would loop
    /// forever; tests and examples want bounded accept counts.)
    ///
    /// Each connection runs the byte-level loop over
    /// [`CacheServer::handle_wire`]: requests decode zero-copy out of
    /// the receive buffer, responses encode at the session's negotiated
    /// version, and a malformed frame or negotiation violation gets the
    /// closing Error Report [`handle_wire`](CacheServer::handle_wire)
    /// built (RFC 8210 §10) before the thread hangs up.
    pub fn serve_connections(
        &self,
        n: usize,
    ) -> Vec<thread::JoinHandle<Result<(), TransportError>>> {
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    let negotiation = Arc::new(Mutex::new(self.cache.lock().negotiation()));
                    if let Ok(clone) = stream.try_clone() {
                        self.notifiers
                            .lock()
                            .push((clone, Arc::clone(&negotiation)));
                    }
                    let cache = Arc::clone(&self.cache);
                    handles.push(thread::spawn(move || {
                        let is_hangup = |e: &std::io::Error| {
                            matches!(
                                e.kind(),
                                std::io::ErrorKind::ConnectionReset
                                    | std::io::ErrorKind::BrokenPipe
                            )
                        };
                        let mut buf = BytesMut::with_capacity(4096);
                        let mut out = Vec::with_capacity(4096);
                        loop {
                            let outcome = {
                                let cache = cache.lock();
                                let mut negotiation = negotiation.lock();
                                cache.handle_wire(&buf, &mut negotiation, &mut out)
                            };
                            match outcome {
                                WireOutcome::NeedBytes => {
                                    let mut chunk = [0u8; 4096];
                                    let n = match stream.read(&mut chunk) {
                                        Ok(n) => n,
                                        // A peer that vanishes mid-session
                                        // (RST, broken pipe) is a normal
                                        // hangup, not a server error.
                                        Err(e) if is_hangup(&e) => return Ok(()),
                                        Err(e) => return Err(TransportError::Io(e)),
                                    };
                                    if n == 0 {
                                        if !buf.is_empty() {
                                            // Mid-frame EOF: report the
                                            // truncation; the peer may
                                            // already be gone, so the
                                            // write is best-effort.
                                            let version = negotiation
                                                .lock()
                                                .version()
                                                .unwrap_or_else(|| cache.lock().version());
                                            let report = Pdu::ErrorReport {
                                                code: ErrorCode::CorruptData,
                                                pdu: bytes::Bytes::new(),
                                                text: "truncated frame at end of stream".into(),
                                            };
                                            let mut bytes = BytesMut::new();
                                            report.encode_versioned(version, &mut bytes);
                                            let _ = stream.write_all(&bytes);
                                        }
                                        return Ok(());
                                    }
                                    buf.extend_from_slice(&chunk[..n]);
                                }
                                WireOutcome::Responded { consumed } => {
                                    let _ = buf.split_to(consumed);
                                    match stream.write_all(&out) {
                                        Ok(()) => {}
                                        Err(e) if is_hangup(&e) => return Ok(()),
                                        Err(e) => return Err(TransportError::Io(e)),
                                    }
                                    out.clear();
                                }
                                WireOutcome::Teardown { .. } => {
                                    // RFC 8210 §10: the Error Report is
                                    // already in `out`; send it, then
                                    // drop the session.
                                    let _ = stream.write_all(&out);
                                    return Ok(());
                                }
                            }
                        }
                    }));
                }
                Err(e) => {
                    handles.push(thread::spawn(move || Err(TransportError::Io(e))));
                }
            }
        }
        handles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RouterClient;
    use rpki_roa::Vrp;

    fn vrps(list: &[&str]) -> Vec<Vrp> {
        list.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn memory_pair_moves_pdus() {
        let (mut a, mut b) = memory_pair();
        a.send(&Pdu::ResetQuery).unwrap();
        assert_eq!(b.recv().unwrap(), Pdu::ResetQuery);
        b.send(&Pdu::CacheReset).unwrap();
        assert_eq!(a.recv().unwrap(), Pdu::CacheReset);
    }

    #[test]
    fn memory_sync_end_to_end() {
        let set = vrps(&["10.0.0.0/8 => AS1", "2001:db8::/32-48 => AS2"]);
        let mut cache = CacheServer::new(5, &set);
        let (mut router_side, mut cache_side) = memory_pair();
        let server = thread::spawn(move || cache.serve_one(&mut cache_side));
        let mut router = RouterClient::new();
        router.synchronize(&mut router_side).unwrap();
        server.join().unwrap().unwrap();
        assert_eq!(router.vrps().len(), 2);
    }

    #[test]
    fn tcp_sync_and_incremental_update() {
        let initial = vrps(&["10.0.0.0/8 => AS1"]);
        let server = TcpCacheServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            CacheServer::new(11, &initial),
        )
        .unwrap();
        let addr = server.local_addr();
        let cache = server.cache();
        let accept_thread = thread::spawn(move || server.serve_connections(1));

        let mut transport = TcpTransport::connect(addr).unwrap();
        let mut router = RouterClient::new();
        router.synchronize(&mut transport).unwrap();
        assert_eq!(router.vrps().len(), 1);

        // The cache learns a new ROA; the router catches up via a delta.
        cache
            .lock()
            .update(&vrps(&["10.0.0.0/8 => AS1", "11.0.0.0/8 => AS2"]));
        router.synchronize(&mut transport).unwrap();
        assert_eq!(router.vrps().len(), 2);
        assert_eq!(router.serial(), 1);

        drop(transport);
        for h in accept_thread.join().unwrap() {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn tcp_multiple_routers() {
        let set = vrps(&["10.0.0.0/8 => AS1", "11.0.0.0/8 => AS2"]);
        let server =
            TcpCacheServer::bind("127.0.0.1:0".parse().unwrap(), CacheServer::new(3, &set))
                .unwrap();
        let addr = server.local_addr();
        let accept_thread = thread::spawn(move || server.serve_connections(3));

        let clients: Vec<_> = (0..3)
            .map(|_| {
                thread::spawn(move || {
                    let mut t = TcpTransport::connect(addr).unwrap();
                    let mut r = RouterClient::new();
                    r.synchronize(&mut t).unwrap();
                    r.vrps().len()
                })
            })
            .collect();
        for c in clients {
            assert_eq!(c.join().unwrap(), 2);
        }
        for h in accept_thread.join().unwrap() {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn tcp_partial_frames_reassembled() {
        // Write a PDU byte by byte; the receiver must reassemble.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let bytes = Pdu::SerialNotify {
                session_id: 2,
                serial: 9,
            }
            .to_bytes();
            for b in bytes.iter() {
                s.write_all(&[*b]).unwrap();
                s.flush().unwrap();
            }
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream);
        assert_eq!(
            t.recv().unwrap(),
            Pdu::SerialNotify {
                session_id: 2,
                serial: 9
            }
        );
        writer.join().unwrap();
    }

    #[test]
    fn tcp_mid_pdu_close_is_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let bytes = Pdu::CacheReset.to_bytes();
            s.write_all(&bytes[..4]).unwrap(); // half a header
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream);
        assert!(matches!(t.recv(), Err(TransportError::Protocol(_))));
        writer.join().unwrap();
    }

    #[test]
    fn closed_memory_channel() {
        let (mut a, b) = memory_pair();
        drop(b);
        assert_eq!(a.send(&Pdu::ResetQuery), Err(TransportError::Closed));
        assert_eq!(a.recv().unwrap_err(), TransportError::Closed);
    }
}

#[cfg(test)]
mod notify_tests {
    use super::*;
    use crate::client::RouterClient;
    use rpki_roa::Vrp;

    fn vrps(list: &[&str]) -> Vec<Vrp> {
        list.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn serial_notify_pushed_to_connected_routers() {
        let initial = vrps(&["10.0.0.0/8 => AS1"]);
        let server = TcpCacheServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            CacheServer::new(77, &initial),
        )
        .unwrap();
        let addr = server.local_addr();
        let server = std::sync::Arc::new(server);
        let accept = {
            let server = std::sync::Arc::clone(&server);
            thread::spawn(move || server.serve_connections(1))
        };

        let mut transport = TcpTransport::connect(addr).unwrap();
        let mut router = RouterClient::new();
        router.synchronize(&mut transport).unwrap();
        assert_eq!(router.vrps().len(), 1);

        // The cache learns new data and pushes a notify.
        // (Wait for the accept thread to have registered the connection.)
        let updated = vrps(&["10.0.0.0/8 => AS1", "11.0.0.0/8 => AS2"]);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if server.update_and_notify(&updated) >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "router never registered"
            );
            thread::yield_now();
        }

        // The router hears the notify on its own socket, unprompted...
        let pdu = transport.recv().unwrap();
        assert!(matches!(pdu, Pdu::SerialNotify { session_id: 77, .. }));
        // ...and reacts by re-synchronizing.
        assert!(!router.handle(&pdu).unwrap());
        router.synchronize(&mut transport).unwrap();
        assert_eq!(router.vrps().len(), 2);

        drop(transport);
        for h in accept.join().unwrap() {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn dead_connections_pruned_on_notify() {
        let server = TcpCacheServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            CacheServer::new(1, &vrps(&["10.0.0.0/8 => AS1"])),
        )
        .unwrap();
        let addr = server.local_addr();
        let server = std::sync::Arc::new(server);
        let accept = {
            let server = std::sync::Arc::clone(&server);
            thread::spawn(move || server.serve_connections(1))
        };
        let transport = TcpTransport::connect(addr).unwrap();
        // Wait until registered, then hang up without ever syncing.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if server.update_and_notify(&vrps(&["12.0.0.0/8 => AS1"])) >= 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline);
            thread::yield_now();
        }
        drop(transport);
        for h in accept.join().unwrap() {
            h.join().unwrap().unwrap();
        }
        // After the peer is gone, pushes eventually observe the dead pipe
        // and prune it (a first write may still land in OS buffers).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let n = server.update_and_notify(&vrps(&["13.0.0.0/8 => AS1"]));
            if n == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "dead peer never pruned"
            );
            thread::yield_now();
        }
    }
}

#[cfg(test)]
mod error_report_tests {
    use super::*;
    use crate::pdu::ErrorCode;
    use rpki_roa::Vrp;

    #[test]
    fn garbage_from_router_gets_error_report_then_close() {
        let set: Vec<Vrp> = vec!["10.0.0.0/8 => AS1".parse().unwrap()];
        let server =
            TcpCacheServer::bind("127.0.0.1:0".parse().unwrap(), CacheServer::new(4, &set))
                .unwrap();
        let addr = server.local_addr();
        let accept = thread::spawn(move || server.serve_connections(1));

        // A raw client speaking nonsense (bad version byte).
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[0x09, 2, 0, 0, 0, 0, 0, 8]).unwrap();
        let mut t = TcpTransport::new(stream);
        match t.recv().unwrap() {
            Pdu::ErrorReport { code, text, .. } => {
                assert_eq!(code, ErrorCode::UnsupportedVersion);
                assert!(text.contains("version"));
            }
            other => panic!("expected error report, got {other:?}"),
        }
        // The cache then hangs up.
        assert_eq!(t.recv().unwrap_err(), TransportError::Closed);
        for h in accept.join().unwrap() {
            h.join().unwrap().unwrap();
        }
    }
}
