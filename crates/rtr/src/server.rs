//! The concurrent RTR fan-out service: one cache, thousands of router
//! sessions.
//!
//! [`crate::transport`]'s original TCP server spent one thread plus a
//! whole-cache mutex acquisition per PDU per connection — fine for a
//! handful of routers, hopeless for the fleet a relying-party cache
//! serves in deployment. This module splits the problem sans-io:
//!
//! * [`FanoutServer`] is the IO-free core. It owns one
//!   [`CacheServer`] and a table of per-session state machines
//!   (negotiation → reset/serial flows → steady-state notify), and it
//!   serializes each response **once per churn epoch** into shared byte
//!   images that every session's outbox references by `Arc` — the fan-out
//!   cost per session is an `Arc` clone and a queue push, not a fresh
//!   walk over the VRP set.
//! * [`TcpCacheServer`] is the non-blocking framed adapter: a single
//!   event-loop thread multiplexes every connection over the core, and a
//!   session registry with a real handshake ([`ServerHandle::wait_for_sessions`])
//!   replaces "poll until the write fails" discovery of session state.
//!
//! # The snapshot-sharing contract
//!
//! Every response image is built from the cache state at one serial and
//! cached keyed by `(response kind, negotiated version)` until the next
//! cache update invalidates the store. Because the images are produced
//! by encoding exactly what [`CacheServer::handle`] returns, a session
//! served from a shared image receives **bit-identical** bytes to one
//! served by [`CacheServer::handle_wire`] — the model-checked cache
//! remains the oracle for every session, shared or not. Serial (delta)
//! responses are keyed by the router's *lag* behind the cache rather
//! than its raw serial, so the image store stays bounded by the history
//! window ([`crate::cache::HISTORY_WINDOW`] + 1 lags × 2 versions) no
//! matter what serials hostile routers claim.
//!
//! # Backpressure and Cache Reset semantics
//!
//! Each session owns a bounded outbox ([`ServerConfig::outbox_limit`]).
//! A consumer that stops reading cannot buffer the cache into the
//! ground: when an enqueue would overflow the limit, every fully
//! unwritten chunk in the queue is dropped (partially written chunks are
//! kept so framing never tears mid-PDU), and — if any dropped chunk was
//! the response to an actual query — a single Cache Reset is queued in
//! its place. The router's next exchange then rebuilds from the full
//! snapshot, exactly the RFC 8210 recovery path it must already
//! implement for history aging: a Serial Query whose serial has fallen
//! outside [`crate::cache::HISTORY_WINDOW`] (on either side, RFC
//! 1982-style) gets the same Cache Reset answer. Dropped notifies are
//! not replaced with anything — Serial Notify is advisory, and the next
//! poll recovers. An enqueue onto an *empty* outbox always succeeds
//! regardless of size, so a draining session always makes progress.
//!
//! Dead sessions are reaped by the event loop the moment the socket
//! reports EOF or a hard error, and the registry count drops with them —
//! no failed-write probing, no spin loops in tests.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rpki_roa::Vrp;

use crate::cache::{frame_extent, CacheServer};
use crate::clock::Clock;
use crate::pdu::Pdu;
use crate::transport::TransportError;
use crate::wire::{self, Negotiation, PduError};

/// Identifies one open session on a [`FanoutServer`].
pub type SessionId = u64;

/// Tuning knobs for the fan-out core.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Upper bound, in bytes, on each session's queued-but-unsent
    /// output. See the module docs for the overflow semantics. An
    /// enqueue onto an empty outbox always succeeds, so the limit can be
    /// set below the full-response size without deadlocking a slow but
    /// draining consumer.
    pub outbox_limit: usize,
    /// How long the TCP event loop sleeps after a pass that made no
    /// progress — the latency/CPU trade-off knob for the single-thread
    /// multiplexer.
    pub poll_interval: Duration,
    /// Sessions with no inbound bytes for this long are evicted
    /// ([`FanoutServer::evict_idle`], measured on the server's
    /// [`Clock`]). `None` (the default) never evicts — RFC 8210 routers
    /// legitimately sit silent between Serial Notifies, so eviction is
    /// an operator policy, not a protocol requirement.
    pub idle_timeout: Option<Duration>,
    /// Minimum spacing between Serial Notifies to any one session;
    /// notifies landing inside the window are skipped (Serial Notify is
    /// advisory — the router's next poll catches it up). `Duration::ZERO`
    /// (the default) never paces. RFC 8210 §8 expects caches to rate-limit
    /// notifies so churny epochs do not turn into a notify flood.
    pub notify_min_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            outbox_limit: 1 << 20,
            poll_interval: Duration::from_micros(200),
            idle_timeout: None,
            notify_min_interval: Duration::ZERO,
        }
    }
}

/// Counters exposed for tests and benches: how much serialization work
/// the shared images saved, and how often backpressure intervened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanoutStats {
    /// Response images serialized from cache state.
    pub images_built: usize,
    /// Responses served by sharing an already-built image.
    pub images_reused: usize,
    /// Serial Notify PDUs queued across all sessions.
    pub notifies: usize,
    /// Outbox overflow events (chunks were dropped).
    pub overflow_drops: usize,
    /// Cache Resets queued because an overflow dropped a pending
    /// response.
    pub overflow_resets: usize,
    /// Bytes dropped by overflow handling.
    pub dropped_bytes: usize,
    /// Sessions torn down over wire or negotiation errors.
    pub teardowns: usize,
    /// Sessions evicted for exceeding [`ServerConfig::idle_timeout`].
    pub evictions: usize,
    /// Serial Notifies skipped by [`ServerConfig::notify_min_interval`]
    /// pacing.
    pub notifies_paced: usize,
}

/// A queued outbound byte image: either one of the epoch's shared
/// serializations or bytes owned by this session alone.
#[derive(Debug)]
enum Chunk {
    Shared(Arc<Vec<u8>>),
    Owned(Vec<u8>),
}

impl Chunk {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Chunk::Shared(b) => b,
            Chunk::Owned(b) => b,
        }
    }

    fn len(&self) -> usize {
        self.as_bytes().len()
    }
}

/// What a queued chunk means to the overflow logic: notifies vanish
/// silently, responses are replaced by a Cache Reset, teardown reports
/// are never dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkKind {
    Notify,
    Response,
    Teardown,
}

#[derive(Debug)]
struct Outbound {
    chunk: Chunk,
    /// Bytes of `chunk` already handed to the consumer.
    offset: usize,
    kind: ChunkKind,
}

/// Per-session protocol state.
#[derive(Debug)]
struct Session {
    negotiation: Negotiation,
    /// Bytes received but not yet framed.
    inbox: Vec<u8>,
    outbox: VecDeque<Outbound>,
    /// Total unsent bytes across `outbox`.
    queued: usize,
    /// Set when the session hit a wire/negotiation error; the closing
    /// Error Report is the last chunk this outbox will ever hold.
    teardown: Option<PduError>,
    /// When the session last produced inbound bytes (or was opened), on
    /// the server's clock — the idle-eviction reference point.
    last_activity: Duration,
    /// When the session was last sent a Serial Notify — the pacing
    /// reference point.
    last_notify: Option<Duration>,
    /// Set by [`FanoutServer::evict_idle`]; an evicted session reports
    /// [`FanoutServer::is_finished`] so the driver closes it.
    evicted: bool,
}

/// The per-epoch shared serialization store. All images are built
/// lazily, on the first session that needs each one, and the whole
/// store is discarded whenever the cache mutates.
#[derive(Debug, Default)]
struct ImageStore {
    /// Full Cache Response (reset flow), per version.
    full: [Option<Arc<Vec<u8>>>; 2],
    /// Serial Notify for the current serial, per version.
    notify: [Option<Arc<Vec<u8>>>; 2],
    /// Cache Reset answer for any out-of-window serial, per version.
    reset: [Option<Arc<Vec<u8>>>; 2],
    /// Delta responses keyed by (lag behind the cache, version) — lag
    /// keying bounds the map by the history window regardless of the
    /// serials routers actually claim.
    delta: HashMap<(usize, u8), Arc<Vec<u8>>>,
}

/// Encodes a `handle()` response sequence at `version`.
fn encode_response(pdus: &[Pdu], version: u8) -> Vec<u8> {
    let mut out = Vec::new();
    for pdu in pdus {
        pdu.as_wire().encode_into(version, &mut out);
    }
    out
}

impl ImageStore {
    fn full(&mut self, cache: &CacheServer, stats: &mut FanoutStats, version: u8) -> Arc<Vec<u8>> {
        let slot = &mut self.full[version as usize];
        if let Some(img) = slot {
            stats.images_reused += 1;
            return Arc::clone(img);
        }
        stats.images_built += 1;
        let img = Arc::new(encode_response(&cache.handle(&Pdu::ResetQuery), version));
        *slot = Some(Arc::clone(&img));
        img
    }

    fn notify(
        &mut self,
        cache: &CacheServer,
        stats: &mut FanoutStats,
        version: u8,
    ) -> Arc<Vec<u8>> {
        let slot = &mut self.notify[version as usize];
        if let Some(img) = slot {
            stats.images_reused += 1;
            return Arc::clone(img);
        }
        stats.images_built += 1;
        let notify = Pdu::SerialNotify {
            session_id: cache.session_id(),
            serial: cache.serial(),
        };
        let img = Arc::new(encode_response(&[notify], version));
        *slot = Some(Arc::clone(&img));
        img
    }

    fn delta(
        &mut self,
        cache: &CacheServer,
        stats: &mut FanoutStats,
        query_session: u16,
        serial: u32,
        version: u8,
    ) -> Arc<Vec<u8>> {
        let query = Pdu::SerialQuery {
            session_id: query_session,
            serial,
        };
        let lag = cache.serial().wrapping_sub(serial) as usize;
        let in_window = query_session == cache.session_id() && lag <= cache.history_len();
        if !in_window {
            // Every out-of-window serial — too old, from the future,
            // across the u32 wrap — and every wrong-session query gets
            // the identical Cache Reset bytes; share one image.
            if let Some(img) = &self.reset[version as usize] {
                stats.images_reused += 1;
                return Arc::clone(img);
            }
            stats.images_built += 1;
            let img = Arc::new(encode_response(&cache.handle(&query), version));
            self.reset[version as usize] = Some(Arc::clone(&img));
            return img;
        }
        match self.delta.entry((lag, version)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                stats.images_reused += 1;
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                stats.images_built += 1;
                let img = Arc::new(encode_response(&cache.handle(&query), version));
                e.insert(Arc::clone(&img));
                img
            }
        }
    }
}

/// Queues `chunk` on `session`, applying the overflow policy from the
/// module docs. `reset_version` is the version a replacement Cache
/// Reset would be encoded at.
fn enqueue(
    session: &mut Session,
    stats: &mut FanoutStats,
    limit: usize,
    kind: ChunkKind,
    chunk: Chunk,
    reset_version: u8,
) {
    let len = chunk.len();
    if kind != ChunkKind::Teardown
        && session.queued > 0
        && session.queued.saturating_add(len) > limit
    {
        stats.overflow_drops += 1;
        stats.dropped_bytes += len;
        let mut dropped_response = kind == ChunkKind::Response;
        let mut queued = 0usize;
        session.outbox.retain(|o| {
            // A partially written chunk must finish (framing would tear
            // mid-PDU otherwise); a queued teardown report must go out.
            let keep = o.offset > 0 || o.kind == ChunkKind::Teardown;
            if keep {
                queued += o.chunk.len() - o.offset;
            } else {
                stats.dropped_bytes += o.chunk.len();
                dropped_response |= o.kind == ChunkKind::Response;
            }
            keep
        });
        session.queued = queued;
        if dropped_response {
            // The router is waiting on an answer we just threw away: the
            // answer becomes "start over from the snapshot".
            stats.overflow_resets += 1;
            let reset = encode_response(&[Pdu::CacheReset], reset_version);
            session.queued += reset.len();
            session.outbox.push_back(Outbound {
                chunk: Chunk::Owned(reset),
                offset: 0,
                kind: ChunkKind::Response,
            });
        }
        return;
    }
    session.queued += len;
    session.outbox.push_back(Outbound {
        chunk,
        offset: 0,
        kind,
    });
}

/// The sans-io fan-out core: one [`CacheServer`], many session state
/// machines, shared per-epoch response images. See the module docs for
/// the sharing and backpressure contracts.
#[derive(Debug)]
pub struct FanoutServer {
    cache: CacheServer,
    images: ImageStore,
    sessions: HashMap<SessionId, Session>,
    next_id: SessionId,
    config: ServerConfig,
    stats: FanoutStats,
    /// Drives idle-eviction and notify-pacing deadlines; manual under
    /// test, system in deployment.
    clock: Clock,
}

impl FanoutServer {
    /// Wraps a cache with the default [`ServerConfig`].
    pub fn new(cache: CacheServer) -> FanoutServer {
        FanoutServer::with_config(cache, ServerConfig::default())
    }

    /// Wraps a cache with explicit tuning, on the system clock.
    pub fn with_config(cache: CacheServer, config: ServerConfig) -> FanoutServer {
        FanoutServer::with_clock(cache, config, Clock::system())
    }

    /// Wraps a cache with explicit tuning on an explicit [`Clock`] —
    /// tests drive idle/pacing deadlines with [`Clock::manual`].
    pub fn with_clock(cache: CacheServer, config: ServerConfig, clock: Clock) -> FanoutServer {
        FanoutServer {
            cache,
            images: ImageStore::default(),
            sessions: HashMap::new(),
            next_id: 1,
            config,
            stats: FanoutStats::default(),
            clock,
        }
    }

    /// The wrapped cache.
    pub fn cache(&self) -> &CacheServer {
        &self.cache
    }

    /// The configured tuning knobs.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// The clock the timer policies run on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Mutable access to the wrapped cache, e.g. for a silent update
    /// (no notify fan-out — the "cache restarted / churned while the
    /// routers were away" test axis). Any mutation invalidates the
    /// shared image store.
    pub fn with_cache<R>(&mut self, f: impl FnOnce(&mut CacheServer) -> R) -> R {
        let r = f(&mut self.cache);
        self.images = ImageStore::default();
        r
    }

    /// Counters for tests and benches.
    pub fn stats(&self) -> FanoutStats {
        self.stats
    }

    /// Number of open sessions (torn-down but not yet closed sessions
    /// included).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Opens a session with a fresh per-connection negotiation, returning
    /// its id.
    pub fn open_session(&mut self) -> SessionId {
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(
            id,
            Session {
                negotiation: self.cache.negotiation(),
                inbox: Vec::new(),
                outbox: VecDeque::new(),
                queued: 0,
                teardown: None,
                last_activity: self.clock.now(),
                last_notify: None,
                evicted: false,
            },
        );
        id
    }

    /// Closes a session, dropping any queued output.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an open session.
    pub fn close_session(&mut self, id: SessionId) {
        self.sessions.remove(&id).expect("close of unknown session");
    }

    /// The protocol version the session's negotiation has pinned, if
    /// any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an open session.
    pub fn negotiated_version(&self, id: SessionId) -> Option<u8> {
        self.sessions
            .get(&id)
            .expect("unknown session")
            .negotiation
            .version()
    }

    /// The wire/negotiation error that tore the session down, if any.
    /// The closing Error Report is already queued in the session's
    /// outbox; once [`FanoutServer::pending_output`] drains to zero the
    /// session should be closed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an open session.
    pub fn session_error(&self, id: SessionId) -> Option<&PduError> {
        self.sessions
            .get(&id)
            .expect("unknown session")
            .teardown
            .as_ref()
    }

    /// `true` once the driver should close the connection: the session
    /// was evicted for idleness, or it is torn down *and* its closing
    /// report has been fully consumed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an open session.
    pub fn is_finished(&self, id: SessionId) -> bool {
        let session = self.sessions.get(&id).expect("unknown session");
        session.evicted || (session.teardown.is_some() && session.queued == 0)
    }

    /// Evicts every live session whose last inbound activity is at
    /// least [`ServerConfig::idle_timeout`] ago, returning their ids
    /// (sorted). Evicted sessions report [`FanoutServer::is_finished`]
    /// and ignore further input; the driver closes them. A `None`
    /// timeout evicts nothing.
    pub fn evict_idle(&mut self) -> Vec<SessionId> {
        let Some(timeout) = self.config.idle_timeout else {
            return Vec::new();
        };
        let now = self.clock.now();
        let mut evicted = Vec::new();
        for (id, session) in &mut self.sessions {
            if session.evicted || session.teardown.is_some() {
                continue;
            }
            if now.saturating_sub(session.last_activity) >= timeout {
                session.evicted = true;
                self.stats.evictions += 1;
                evicted.push(*id);
            }
        }
        evicted.sort_unstable();
        evicted
    }

    /// Feeds received bytes to a session's state machine, queueing any
    /// responses on its outbox. Partial frames are buffered; complete
    /// frames are processed in order; a malformed frame or negotiation
    /// violation queues the closing Error Report and marks the session
    /// torn down (see [`FanoutServer::session_error`]). Input after
    /// teardown is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an open session.
    pub fn receive(&mut self, id: SessionId, bytes: &[u8]) {
        let session = self
            .sessions
            .get_mut(&id)
            .expect("receive on unknown session");
        if session.teardown.is_some() || session.evicted {
            return;
        }
        session.last_activity = self.clock.now();
        session.inbox.extend_from_slice(bytes);
        let max_version = self.cache.version();
        let mut consumed = 0usize;
        loop {
            let input = &session.inbox[consumed..];
            if input.is_empty() {
                break;
            }
            match wire::decode_frame(input) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    let frame_len = frame.len;
                    match session.negotiation.accept(frame.version) {
                        Ok(version) => {
                            let request = frame.pdu.to_owned();
                            consumed += frame_len;
                            let chunk = match request {
                                Pdu::ResetQuery => Chunk::Shared(self.images.full(
                                    &self.cache,
                                    &mut self.stats,
                                    version,
                                )),
                                Pdu::SerialQuery { session_id, serial } => {
                                    Chunk::Shared(self.images.delta(
                                        &self.cache,
                                        &mut self.stats,
                                        session_id,
                                        serial,
                                        version,
                                    ))
                                }
                                // Valid-but-unexpected requests get the
                                // per-session Invalid-Request report and
                                // the session continues — not a shared
                                // image, not a teardown.
                                other => Chunk::Owned(encode_response(
                                    &self.cache.handle(&other),
                                    version,
                                )),
                            };
                            enqueue(
                                session,
                                &mut self.stats,
                                self.config.outbox_limit,
                                ChunkKind::Response,
                                chunk,
                                version,
                            );
                        }
                        Err(error) => {
                            let end = consumed + frame_len;
                            let mut report = Vec::new();
                            self.cache.report_teardown(
                                &error,
                                &session.inbox[consumed..end],
                                &session.negotiation,
                                &mut report,
                            );
                            consumed = end;
                            Self::tear_down(session, &mut self.stats, report, error, max_version);
                            break;
                        }
                    }
                }
                Err(error) => {
                    // Same consumption rule as `CacheServer::handle_wire`:
                    // trust the declared frame boundary only when it is
                    // in range and fully present; otherwise the rest of
                    // the buffer is poisoned.
                    let rest = &session.inbox[consumed..];
                    let extent = frame_extent(rest).unwrap_or(rest.len());
                    let end = consumed + extent;
                    let mut report = Vec::new();
                    self.cache.report_teardown(
                        &error,
                        &session.inbox[consumed..end],
                        &session.negotiation,
                        &mut report,
                    );
                    consumed = end;
                    Self::tear_down(session, &mut self.stats, report, error, max_version);
                    break;
                }
            }
        }
        session.inbox.drain(..consumed);
    }

    fn tear_down(
        session: &mut Session,
        stats: &mut FanoutStats,
        report: Vec<u8>,
        error: PduError,
        max_version: u8,
    ) {
        let version = session.negotiation.version().unwrap_or(max_version);
        enqueue(
            session,
            stats,
            usize::MAX,
            ChunkKind::Teardown,
            Chunk::Owned(report),
            version,
        );
        session.teardown = Some(error);
        stats.teardowns += 1;
    }

    /// Replaces the cache's VRP set and fans the Serial Notify out to
    /// every live session (RFC 8210 §5.2), encoded once per negotiated
    /// version. Returns the number of sessions notified.
    pub fn update_and_notify(&mut self, vrps: &[Vrp]) -> usize {
        let _ = self.cache.update(vrps);
        self.fan_out_notify()
    }

    /// Applies a churn-style delta and fans the Serial Notify out, like
    /// [`FanoutServer::update_and_notify`].
    pub fn update_delta_and_notify(&mut self, announced: &[Vrp], withdrawn: &[Vrp]) -> usize {
        let _ = self.cache.update_delta(announced, withdrawn);
        self.fan_out_notify()
    }

    fn fan_out_notify(&mut self) -> usize {
        // New serial: yesterday's images must never be served again.
        self.images = ImageStore::default();
        let max_version = self.cache.version();
        let now = self.clock.now();
        let mut notified = 0usize;
        for session in self.sessions.values_mut() {
            if session.teardown.is_some() || session.evicted {
                continue;
            }
            // Pacing: a notify inside the minimum interval is skipped,
            // not queued — Serial Notify is advisory, and the session's
            // next poll (or the next unpaced notify) catches it up.
            if let Some(last) = session.last_notify {
                if now.saturating_sub(last) < self.config.notify_min_interval {
                    self.stats.notifies_paced += 1;
                    continue;
                }
            }
            session.last_notify = Some(now);
            let version = session.negotiation.version().unwrap_or(max_version);
            let img = self.images.notify(&self.cache, &mut self.stats, version);
            enqueue(
                session,
                &mut self.stats,
                self.config.outbox_limit,
                ChunkKind::Notify,
                Chunk::Shared(img),
                version,
            );
            self.stats.notifies += 1;
            notified += 1;
        }
        notified
    }

    /// Total unsent output bytes queued for a session.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an open session.
    pub fn pending_output(&self, id: SessionId) -> usize {
        self.sessions.get(&id).expect("unknown session").queued
    }

    /// The unsent remainder of the session's front output chunk (empty
    /// when the outbox is drained). Write some prefix of it, then call
    /// [`FanoutServer::consume_output`] with the number of bytes
    /// actually written.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an open session.
    pub fn peek_output(&self, id: SessionId) -> &[u8] {
        self.sessions
            .get(&id)
            .expect("unknown session")
            .outbox
            .front()
            .map(|o| &o.chunk.as_bytes()[o.offset..])
            .unwrap_or(&[])
    }

    /// Marks `n` output bytes as written, advancing (and eventually
    /// retiring) front chunks.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an open session or `n` exceeds the pending
    /// output.
    pub fn consume_output(&mut self, id: SessionId, n: usize) {
        let session = self.sessions.get_mut(&id).expect("unknown session");
        let mut left = n;
        while left > 0 {
            let front = session
                .outbox
                .front_mut()
                .expect("consumed past pending output");
            let remaining = front.chunk.len() - front.offset;
            if left < remaining {
                front.offset += left;
                session.queued -= left;
                return;
            }
            left -= remaining;
            session.queued -= remaining;
            session.outbox.pop_front();
        }
    }

    /// Appends all pending output to `out`, emptying the session's
    /// outbox. Returns the number of bytes moved.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an open session.
    pub fn drain_output(&mut self, id: SessionId, out: &mut Vec<u8>) -> usize {
        let session = self.sessions.get_mut(&id).expect("unknown session");
        let mut moved = 0usize;
        while let Some(front) = session.outbox.pop_front() {
            let rest = &front.chunk.as_bytes()[front.offset..];
            out.extend_from_slice(rest);
            moved += rest.len();
        }
        session.queued = 0;
        moved
    }
}

/// The session registry: an exact live-session count plus a wake
/// generation, both under one condition variable — so tests and
/// orchestration code can *wait* for registration or reaping instead of
/// polling side effects, and the event loop can *sleep* on the same
/// condvar instead of a fixed poll tick ([`ServerHandle`] operations
/// bump the generation and are serviced immediately).
#[derive(Debug, Default)]
struct Registry {
    state: StdMutex<RegistryState>,
    changed: Condvar,
}

#[derive(Debug, Default)]
struct RegistryState {
    open: usize,
    /// Bumped by every handle-side operation the event loop should
    /// react to (cache update, shutdown). Monotonic, never reset.
    wakes: u64,
}

impl Registry {
    fn opened(&self) {
        self.state.lock().expect("registry poisoned").open += 1;
        self.changed.notify_all();
    }

    fn closed(&self) {
        self.state.lock().expect("registry poisoned").open -= 1;
        self.changed.notify_all();
    }

    fn count(&self) -> usize {
        self.state.lock().expect("registry poisoned").open
    }

    /// Signals the event loop that handle-side state changed (queued
    /// notifies, shutdown request): bumps the wake generation and wakes
    /// every [`Registry::wait_for_wake`] sleeper.
    fn wake(&self) {
        self.state.lock().expect("registry poisoned").wakes += 1;
        self.changed.notify_all();
    }

    /// The current wake generation. The event loop samples it *before*
    /// a pass; a wake landing mid-pass makes the next
    /// [`Registry::wait_for_wake`] return immediately (no lost wakeup).
    fn wake_generation(&self) -> u64 {
        self.state.lock().expect("registry poisoned").wakes
    }

    /// Blocks until the wake generation moves past `seen` or `cap`
    /// elapses — the event loop's idle wait, with `cap` (the old poll
    /// interval) as the blocking bound so socket readiness is still
    /// polled.
    fn wait_for_wake(&self, seen: u64, cap: Duration) {
        let deadline = Instant::now() + cap;
        let mut state = self.state.lock().expect("registry poisoned");
        while state.wakes == seen {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return;
            };
            let (guard, result) = self
                .changed
                .wait_timeout(state, left)
                .expect("registry poisoned");
            state = guard;
            if result.timed_out() {
                return;
            }
        }
    }

    /// Blocks until `pred(open_count)` holds or `timeout` elapses;
    /// returns whether it held.
    fn wait_until(&self, timeout: Duration, pred: impl Fn(usize) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("registry poisoned");
        while !pred(state.open) {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, result) = self
                .changed
                .wait_timeout(state, left)
                .expect("registry poisoned");
            state = guard;
            if result.timed_out() && !pred(state.open) {
                return false;
            }
        }
        true
    }
}

#[derive(Debug)]
struct Shared {
    core: Mutex<FanoutServer>,
    registry: Registry,
    shutdown: AtomicBool,
}

/// The non-blocking TCP adapter over [`FanoutServer`]: one event-loop
/// thread multiplexes every router connection. Obtain a
/// [`ServerHandle`] before moving the server into its serving thread.
///
/// ```no_run
/// use rpki_rtr::cache::CacheServer;
/// use rpki_rtr::server::TcpCacheServer;
///
/// let server = TcpCacheServer::bind(
///     "127.0.0.1:0".parse().unwrap(),
///     CacheServer::new(1, &[]),
/// )
/// .unwrap();
/// let handle = server.handle();
/// let serving = std::thread::spawn(move || server.serve());
/// // ... connect routers against handle.addr(), push updates with
/// // handle.update_and_notify(..), then:
/// handle.shutdown();
/// serving.join().unwrap().unwrap();
/// ```
#[derive(Debug)]
pub struct TcpCacheServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cloneable control handle to a running [`TcpCacheServer`]: cache
/// updates with notify fan-out, registry waits, and shutdown.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

/// One connection owned by the event loop.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    id: SessionId,
    dead: bool,
}

impl TcpCacheServer {
    /// Binds a listener and wraps the cache with default tuning.
    pub fn bind(addr: SocketAddr, cache: CacheServer) -> Result<TcpCacheServer, TransportError> {
        TcpCacheServer::bind_with_config(addr, cache, ServerConfig::default())
    }

    /// Binds with explicit [`ServerConfig`] tuning.
    pub fn bind_with_config(
        addr: SocketAddr,
        cache: CacheServer,
        config: ServerConfig,
    ) -> Result<TcpCacheServer, TransportError> {
        TcpCacheServer::bind_with_clock(addr, cache, config, Clock::system())
    }

    /// Binds with explicit tuning on an explicit [`Clock`] — tests
    /// drive idle eviction with a [`Clock::manual`] instead of waiting
    /// out real deadlines.
    pub fn bind_with_clock(
        addr: SocketAddr,
        cache: CacheServer,
        config: ServerConfig,
        clock: Clock,
    ) -> Result<TcpCacheServer, TransportError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpCacheServer {
            listener,
            shared: Arc::new(Shared {
                core: Mutex::new(FanoutServer::with_clock(cache, config, clock)),
                registry: Registry::default(),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// A control handle usable from other threads while
    /// [`TcpCacheServer::serve`] runs.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.local_addr(),
        }
    }

    /// Runs the event loop until [`ServerHandle::shutdown`]: accept new
    /// connections into the session table, pump received bytes through
    /// the core, flush outboxes, and reap sessions whose socket hit EOF
    /// or whose teardown report has been fully flushed.
    pub fn serve(&self) -> Result<(), TransportError> {
        let mut conns: Vec<Conn> = Vec::new();
        let mut buf = [0u8; 4096];
        let poll_interval = self.shared.core.lock().config().poll_interval;
        loop {
            // Sample the wake generation *before* the shutdown check and
            // the socket pass: a handle-side wake (update, shutdown)
            // landing anywhere in this iteration makes the idle wait at
            // the bottom return immediately instead of being lost.
            let wake_seen = self.shared.registry.wake_generation();
            if self.shared.shutdown.load(Ordering::Relaxed) {
                // Outboxes may still hold queued responses and teardown
                // reports; push them before the sockets close.
                self.drain_on_shutdown(&mut conns, poll_interval);
                for conn in conns.drain(..) {
                    self.shared.core.lock().close_session(conn.id);
                    self.shared.registry.closed();
                }
                return Ok(());
            }
            let mut progressed = false;
            if !self.shared.core.lock().evict_idle().is_empty() {
                // Evicted sessions report is_finished below and are
                // reaped this same pass.
                progressed = true;
            }
            // Accept every waiting connection.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(true)?;
                        let id = self.shared.core.lock().open_session();
                        conns.push(Conn {
                            stream,
                            id,
                            dead: false,
                        });
                        self.shared.registry.opened();
                        progressed = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            for conn in &mut conns {
                // Read until the socket runs dry. EOF and hard errors
                // (RST, broken pipe) mark the session for reaping — a
                // vanished peer is a normal hangup, not a server error.
                loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            conn.dead = true;
                            break;
                        }
                        Ok(n) => {
                            self.shared.core.lock().receive(conn.id, &buf[..n]);
                            progressed = true;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                // Flush as much queued output as the socket accepts.
                while !conn.dead {
                    let mut core = self.shared.core.lock();
                    let chunk = core.peek_output(conn.id);
                    if chunk.is_empty() {
                        break;
                    }
                    match conn.stream.write(chunk) {
                        Ok(0) => {
                            conn.dead = true;
                        }
                        Ok(n) => {
                            core.consume_output(conn.id, n);
                            progressed = true;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                        }
                    }
                }
                // A torn-down session whose closing report has been
                // flushed closes from our side.
                if !conn.dead && self.shared.core.lock().is_finished(conn.id) {
                    conn.dead = true;
                }
            }
            conns.retain(|conn| {
                if conn.dead {
                    self.shared.core.lock().close_session(conn.id);
                    self.shared.registry.closed();
                    progressed = true;
                }
                !conn.dead
            });
            if !progressed {
                // Idle: block on the registry condvar instead of a fixed
                // sleep, so `update_and_notify`/`shutdown` are serviced
                // immediately. `poll_interval` remains the cap because
                // socket readiness is still discovered by polling.
                self.shared.registry.wait_for_wake(wake_seen, poll_interval);
            }
        }
    }

    /// The bounded final flush run by [`TcpCacheServer::serve`] on
    /// shutdown: one last read pass so bytes already in flight still
    /// get their response or teardown report queued, then write passes
    /// until every outbox is empty (or a slow peer exhausts the pass
    /// budget — shutdown must terminate even against a stalled reader).
    fn drain_on_shutdown(&self, conns: &mut [Conn], poll_interval: Duration) {
        const FLUSH_PASSES: usize = 64;
        let mut buf = [0u8; 4096];
        for conn in conns.iter_mut() {
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => self.shared.core.lock().receive(conn.id, &buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        for _ in 0..FLUSH_PASSES {
            let mut blocked = false;
            for conn in conns.iter_mut() {
                while !conn.dead {
                    let mut core = self.shared.core.lock();
                    let chunk = core.peek_output(conn.id);
                    if chunk.is_empty() {
                        break;
                    }
                    match conn.stream.write(chunk) {
                        Ok(0) => conn.dead = true,
                        Ok(n) => core.consume_output(conn.id, n),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            blocked = true;
                            break;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => conn.dead = true,
                    }
                }
            }
            if !blocked {
                return;
            }
            // Pace the retry against a slow peer, but stay wakeable so a
            // concurrent handle operation doesn't stall the drain.
            let seen = self.shared.registry.wake_generation();
            self.shared.registry.wait_for_wake(seen, poll_interval);
        }
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the VRP set and queues a Serial Notify for every live
    /// session, waking the event loop so the notifies are flushed
    /// immediately rather than on the next poll tick. Returns the number
    /// of sessions notified.
    pub fn update_and_notify(&self, vrps: &[Vrp]) -> usize {
        let notified = self.shared.core.lock().update_and_notify(vrps);
        self.shared.registry.wake();
        notified
    }

    /// Applies a churn-style delta and queues notifies, like
    /// [`ServerHandle::update_and_notify`].
    pub fn update_delta_and_notify(&self, announced: &[Vrp], withdrawn: &[Vrp]) -> usize {
        let notified = self
            .shared
            .core
            .lock()
            .update_delta_and_notify(announced, withdrawn);
        self.shared.registry.wake();
        notified
    }

    /// Runs `f` against the fan-out core under its lock, then wakes the
    /// event loop (`f` may have queued output or advanced timers).
    pub fn with_core<R>(&self, f: impl FnOnce(&mut FanoutServer) -> R) -> R {
        let result = f(&mut self.shared.core.lock());
        self.shared.registry.wake();
        result
    }

    /// Runs `f` against the cache under the core lock, without any
    /// notify fan-out (see [`FanoutServer::with_cache`]).
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut CacheServer) -> R) -> R {
        let result = self.shared.core.lock().with_cache(f);
        self.shared.registry.wake();
        result
    }

    /// Number of currently registered sessions.
    pub fn session_count(&self) -> usize {
        self.shared.registry.count()
    }

    /// Blocks until at least `n` sessions are registered, or `timeout`
    /// elapses. Returns whether the condition was met — the explicit
    /// registration handshake that replaces update-until-a-write-sticks
    /// polling.
    pub fn wait_for_sessions(&self, n: usize, timeout: Duration) -> bool {
        self.shared.registry.wait_until(timeout, |open| open >= n)
    }

    /// Blocks until every session has been reaped, or `timeout` elapses.
    /// Returns whether the registry emptied.
    pub fn wait_for_no_sessions(&self, timeout: Duration) -> bool {
        self.shared.registry.wait_until(timeout, |open| open == 0)
    }

    /// Asks the event loop to stop; it closes every connection and
    /// returns. The wake makes an idle loop notice immediately instead
    /// of finishing its blocking wait first.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.registry.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RouterClient;
    use crate::pdu::PROTOCOL_V1;
    use crate::transport::{TcpTransport, Transport};
    use std::thread;

    fn vrps(list: &[&str]) -> Vec<Vrp> {
        list.iter().map(|s| s.parse().unwrap()).collect()
    }

    fn encode(pdu: &Pdu, version: u8) -> Vec<u8> {
        let mut out = Vec::new();
        pdu.as_wire().encode_into(version, &mut out);
        out
    }

    /// What `CacheServer::handle_wire` would put on the wire for
    /// `request` — the per-session baseline the shared images must match
    /// byte for byte.
    fn oracle_bytes(cache: &CacheServer, request: &Pdu, version: u8) -> Vec<u8> {
        let oracle = cache.clone();
        let mut negotiation = oracle.negotiation();
        let mut out = Vec::new();
        let _ = oracle.handle_wire(&encode(request, version), &mut negotiation, &mut out);
        out
    }

    #[test]
    fn shared_images_serve_bit_identical_bytes() {
        let mut server = FanoutServer::new(CacheServer::new(7, &vrps(&["10.0.0.0/8 => AS1"])));
        let expect = oracle_bytes(server.cache(), &Pdu::ResetQuery, PROTOCOL_V1);
        let query = encode(&Pdu::ResetQuery, PROTOCOL_V1);
        let ids: Vec<SessionId> = (0..3).map(|_| server.open_session()).collect();
        for &id in &ids {
            server.receive(id, &query);
            let mut got = Vec::new();
            server.drain_output(id, &mut got);
            assert_eq!(got, expect, "shared image must match the wire oracle");
        }
        // One serialization, two Arc shares.
        assert_eq!(server.stats().images_built, 1);
        assert_eq!(server.stats().images_reused, 2);
    }

    #[test]
    fn out_of_window_serials_share_one_reset_image() {
        let mut server = FanoutServer::new(CacheServer::new(7, &vrps(&["10.0.0.0/8 => AS1"])));
        let id = server.open_session();
        // Pin the session by a first exchange so stats start clean.
        server.receive(id, &encode(&Pdu::ResetQuery, PROTOCOL_V1));
        let mut sink = Vec::new();
        server.drain_output(id, &mut sink);
        let built_before = server.stats().images_built;
        // Hostile serials all over the u32 line: far future, far past,
        // straddling the wrap. Every one is out of the history window.
        for serial in [5u32, 500, u32::MAX, u32::MAX - 17, 1 << 31] {
            let query = Pdu::SerialQuery {
                session_id: 7,
                serial,
            };
            server.receive(id, &encode(&query, PROTOCOL_V1));
            let mut got = Vec::new();
            server.drain_output(id, &mut got);
            assert_eq!(
                got,
                encode(&Pdu::CacheReset, PROTOCOL_V1),
                "serial {serial}"
            );
        }
        // One reset image serialized, four shares: the store is bounded
        // no matter what serials the fleet claims.
        assert_eq!(server.stats().images_built, built_before + 1);
        assert!(server.stats().images_reused >= 4);
    }

    #[test]
    fn overflow_drops_stale_output_and_queues_a_reset() {
        let config = ServerConfig {
            outbox_limit: 48,
            ..ServerConfig::default()
        };
        let cache = CacheServer::new(9, &vrps(&["10.0.0.0/8 => AS1", "11.0.0.0/8 => AS2"]));
        let mut server = FanoutServer::with_config(cache, config);
        let id = server.open_session();
        // The full response lands on an empty outbox: always accepted,
        // even above the limit — a draining consumer makes progress.
        server.receive(id, &encode(&Pdu::ResetQuery, PROTOCOL_V1));
        assert!(server.pending_output(id) > config.outbox_limit);
        assert_eq!(server.stats().overflow_drops, 0);
        // The consumer never drains; the next epoch's notify overflows
        // the queue. The stale response is dropped and replaced by a
        // Cache Reset — bounded memory, RFC-shaped recovery.
        server.update_delta_and_notify(&vrps(&["12.0.0.0/8 => AS3"]), &[]);
        let stats = server.stats();
        assert_eq!(stats.overflow_drops, 1);
        assert_eq!(stats.overflow_resets, 1);
        assert!(stats.dropped_bytes > 0);
        let mut got = Vec::new();
        server.drain_output(id, &mut got);
        assert_eq!(got, encode(&Pdu::CacheReset, PROTOCOL_V1));
        assert!(server.pending_output(id) <= config.outbox_limit);
    }

    #[test]
    fn dropped_notifies_are_not_replaced() {
        let config = ServerConfig {
            outbox_limit: 16,
            ..ServerConfig::default()
        };
        let cache = CacheServer::new(9, &vrps(&["10.0.0.0/8 => AS1"]));
        let mut server = FanoutServer::with_config(cache, config);
        let id = server.open_session();
        // Two undrained notifies: the second overflows and both vanish
        // silently — Serial Notify is advisory, no Cache Reset owed.
        server.update_delta_and_notify(&vrps(&["12.0.0.0/8 => AS3"]), &[]);
        server.update_delta_and_notify(&vrps(&["13.0.0.0/8 => AS4"]), &[]);
        assert_eq!(server.stats().overflow_drops, 1);
        assert_eq!(server.stats().overflow_resets, 0);
        let mut got = Vec::new();
        server.drain_output(id, &mut got);
        assert!(got.is_empty(), "dropped notifies leave nothing behind");
    }

    #[test]
    fn partially_written_chunks_survive_overflow() {
        let config = ServerConfig {
            outbox_limit: 32,
            ..ServerConfig::default()
        };
        let cache = CacheServer::new(3, &vrps(&["10.0.0.0/8 => AS1"]));
        let mut server = FanoutServer::with_config(cache, config);
        let id = server.open_session();
        server.receive(id, &encode(&Pdu::ResetQuery, PROTOCOL_V1));
        let full = oracle_bytes(server.cache(), &Pdu::ResetQuery, PROTOCOL_V1);
        // Half the response has hit the socket; an overflow must not
        // tear the frame mid-PDU.
        server.consume_output(id, 10);
        server.update_delta_and_notify(&vrps(&["12.0.0.0/8 => AS3"]), &[]);
        let mut got = Vec::new();
        server.drain_output(id, &mut got);
        assert_eq!(got, full[10..].to_vec(), "the cut chunk must finish intact");
    }

    #[test]
    fn garbage_tears_down_with_a_report() {
        let mut server = FanoutServer::new(CacheServer::new(7, &vrps(&["10.0.0.0/8 => AS1"])));
        let id = server.open_session();
        // Version 9 does not exist; the negotiation rejects it.
        server.receive(id, &[9, 2, 0, 0, 0, 0, 0, 8]);
        assert!(server.session_error(id).is_some());
        assert_eq!(server.stats().teardowns, 1);
        assert!(!server.is_finished(id), "the report is still queued");
        let mut report = Vec::new();
        server.drain_output(id, &mut report);
        let frame = wire::decode_frame(&report).unwrap().expect("a full report");
        assert!(matches!(frame.pdu.to_owned(), Pdu::ErrorReport { .. }));
        assert!(server.is_finished(id), "report flushed: ready to close");
        // Input after teardown is ignored, not processed.
        server.receive(id, &encode(&Pdu::ResetQuery, PROTOCOL_V1));
        assert_eq!(server.pending_output(id), 0);
    }

    #[test]
    fn notify_skips_torn_down_sessions() {
        let mut server = FanoutServer::new(CacheServer::new(7, &vrps(&["10.0.0.0/8 => AS1"])));
        let healthy = server.open_session();
        let broken = server.open_session();
        server.receive(broken, &[9, 2, 0, 0, 0, 0, 0, 8]);
        assert_eq!(
            server.update_and_notify(&vrps(&["11.0.0.0/8 => AS2"])),
            1,
            "only the healthy session is notified"
        );
        assert!(server.pending_output(healthy) > 0);
    }

    // ---- TCP adapter ----

    /// Bounded poll for a core-state side effect the registry cannot
    /// observe (e.g. "the teardown report is queued").
    fn wait_until(mut pred: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(Instant::now() < deadline, "condition never reached");
            thread::sleep(Duration::from_millis(1));
        }
    }

    fn spawn_server(
        vrps: &[Vrp],
    ) -> (ServerHandle, thread::JoinHandle<Result<(), TransportError>>) {
        let server =
            TcpCacheServer::bind("127.0.0.1:0".parse().unwrap(), CacheServer::new(77, vrps))
                .unwrap();
        let handle = server.handle();
        let serving = thread::spawn(move || server.serve());
        (handle, serving)
    }

    fn spawn_server_with_config(
        vrps: &[Vrp],
        config: ServerConfig,
    ) -> (ServerHandle, thread::JoinHandle<Result<(), TransportError>>) {
        let server = TcpCacheServer::bind_with_config(
            "127.0.0.1:0".parse().unwrap(),
            CacheServer::new(77, vrps),
            config,
        )
        .unwrap();
        let handle = server.handle();
        let serving = thread::spawn(move || server.serve());
        (handle, serving)
    }

    /// A poll interval long enough that any test passing in well under
    /// it proves the condvar wakeup fired, not the poll tick.
    const GLACIAL_POLL: Duration = Duration::from_secs(10);

    #[test]
    fn notify_is_delivered_without_waiting_for_the_poll_tick() {
        let config = ServerConfig {
            poll_interval: GLACIAL_POLL,
            ..ServerConfig::default()
        };
        let (handle, serving) = spawn_server_with_config(&vrps(&["10.0.0.0/8 => AS1"]), config);
        let mut transport = TcpTransport::connect(handle.addr()).unwrap();
        let mut router = RouterClient::new();
        router.synchronize(&mut transport).unwrap();
        assert!(handle.wait_for_sessions(1, Duration::from_secs(5)));
        let t0 = Instant::now();
        assert_eq!(handle.update_and_notify(&vrps(&["11.0.0.0/8 => AS2"])), 1);
        let notify = transport.recv().unwrap();
        let elapsed = t0.elapsed();
        assert!(matches!(notify, Pdu::SerialNotify { session_id: 77, .. }));
        assert!(
            elapsed < GLACIAL_POLL / 2,
            "notify took {elapsed:?}: the idle loop slept through the wake"
        );
        handle.shutdown();
        serving.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_interrupts_an_idle_poll_wait() {
        let config = ServerConfig {
            poll_interval: GLACIAL_POLL,
            ..ServerConfig::default()
        };
        let (handle, serving) = spawn_server_with_config(&vrps(&["10.0.0.0/8 => AS1"]), config);
        // Let the loop run at least one empty pass and park in its
        // blocking wait before asking it to stop.
        thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        handle.shutdown();
        serving.join().unwrap().unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < GLACIAL_POLL / 2,
            "shutdown took {elapsed:?}: the idle loop slept through the wake"
        );
    }

    #[test]
    fn tcp_sync_and_incremental_update() {
        let initial = vrps(&["10.0.0.0/8 => AS1"]);
        let (handle, serving) = spawn_server(&initial);
        let mut transport = TcpTransport::connect(handle.addr()).unwrap();
        let mut router = RouterClient::new();
        router.synchronize(&mut transport).unwrap();
        assert_eq!(router.vrps().len(), 1);
        // Registration handshake, then exactly one notify push.
        assert!(handle.wait_for_sessions(1, Duration::from_secs(5)));
        let announced = vrps(&["11.0.0.0/8 => AS2"]);
        assert_eq!(handle.update_delta_and_notify(&announced, &[]), 1);
        let notify = transport.recv().unwrap();
        assert!(matches!(notify, Pdu::SerialNotify { session_id: 77, .. }));
        router.handle(&notify).unwrap();
        router.synchronize(&mut transport).unwrap();
        assert_eq!(router.vrps().len(), 2);
        assert_eq!(router.serial(), 1);
        handle.shutdown();
        serving.join().unwrap().unwrap();
    }

    #[test]
    fn tcp_multiple_routers_share_one_image() {
        let set = vrps(&["10.0.0.0/8 => AS1", "2001:db8::/32-48 => AS2"]);
        let (handle, serving) = spawn_server(&set);
        let mut routers = Vec::new();
        for _ in 0..3 {
            let mut transport = TcpTransport::connect(handle.addr()).unwrap();
            let mut router = RouterClient::new();
            router.synchronize(&mut transport).unwrap();
            routers.push((router, transport));
        }
        for (router, _) in &routers {
            assert_eq!(router.vrps().len(), 2);
        }
        // Three identical reset flows, one serialization.
        let stats = handle.with_core(|core| core.stats());
        assert_eq!(stats.images_built, 1);
        assert_eq!(stats.images_reused, 2);
        handle.shutdown();
        serving.join().unwrap().unwrap();
    }

    #[test]
    fn dead_sessions_reaped_by_registry() {
        let (handle, serving) = spawn_server(&vrps(&["10.0.0.0/8 => AS1"]));
        let transport = TcpTransport::connect(handle.addr()).unwrap();
        assert!(handle.wait_for_sessions(1, Duration::from_secs(5)));
        drop(transport);
        // The registry observes the hangup — no probing writes needed.
        assert!(handle.wait_for_no_sessions(Duration::from_secs(5)));
        assert_eq!(
            handle.update_and_notify(&vrps(&["11.0.0.0/8 => AS2"])),
            0,
            "nobody left to notify"
        );
        handle.shutdown();
        serving.join().unwrap().unwrap();
    }

    #[test]
    fn idle_sessions_evicted_on_the_manual_clock() {
        let clock = Clock::manual();
        let config = ServerConfig {
            idle_timeout: Some(Duration::from_secs(30)),
            ..ServerConfig::default()
        };
        let cache = CacheServer::new(7, &vrps(&["10.0.0.0/8 => AS1"]));
        let mut server = FanoutServer::with_clock(cache, config, clock.clone());
        let idle = server.open_session();
        let active = server.open_session();
        clock.advance(Duration::from_secs(29));
        assert!(server.evict_idle().is_empty(), "inside the deadline");
        // The active session speaks; the idle one stays silent.
        server.receive(active, &encode(&Pdu::ResetQuery, PROTOCOL_V1));
        clock.advance(Duration::from_secs(1));
        assert_eq!(server.evict_idle(), vec![idle]);
        assert_eq!(server.stats().evictions, 1);
        assert!(server.is_finished(idle), "evicted: the driver closes it");
        assert!(!server.is_finished(active));
        // Eviction is sticky and not double-counted.
        assert!(server.evict_idle().is_empty());
        assert_eq!(server.stats().evictions, 1);
        // Input and notifies to an evicted session are ignored.
        server.receive(idle, &encode(&Pdu::ResetQuery, PROTOCOL_V1));
        assert_eq!(server.pending_output(idle), 0);
        server.update_delta_and_notify(&vrps(&["11.0.0.0/8 => AS2"]), &[]);
        assert_eq!(server.pending_output(idle), 0);
    }

    #[test]
    fn no_idle_timeout_means_no_eviction() {
        let clock = Clock::manual();
        let cache = CacheServer::new(7, &vrps(&["10.0.0.0/8 => AS1"]));
        let mut server = FanoutServer::with_clock(cache, ServerConfig::default(), clock.clone());
        let id = server.open_session();
        clock.advance(Duration::from_secs(1 << 20));
        assert!(server.evict_idle().is_empty());
        assert!(!server.is_finished(id));
    }

    #[test]
    fn notify_pacing_skips_inside_the_window() {
        let clock = Clock::manual();
        let config = ServerConfig {
            notify_min_interval: Duration::from_secs(10),
            ..ServerConfig::default()
        };
        let cache = CacheServer::new(7, &vrps(&["10.0.0.0/8 => AS1"]));
        let mut server = FanoutServer::with_clock(cache, config, clock.clone());
        let id = server.open_session();
        assert_eq!(
            server.update_delta_and_notify(&vrps(&["11.0.0.0/8 => AS2"]), &[]),
            1,
            "the first notify always goes out"
        );
        // A churny epoch lands 1 second later: paced, nothing queued.
        clock.advance(Duration::from_secs(1));
        let before = server.pending_output(id);
        assert_eq!(
            server.update_delta_and_notify(&vrps(&["12.0.0.0/8 => AS3"]), &[]),
            0
        );
        assert_eq!(server.pending_output(id), before);
        assert_eq!(server.stats().notifies_paced, 1);
        // Past the window the notify flows again, carrying the newest
        // serial — the paced epoch is not lost, just coalesced.
        clock.advance(Duration::from_secs(9));
        assert_eq!(
            server.update_delta_and_notify(&vrps(&["13.0.0.0/8 => AS4"]), &[]),
            1
        );
        let mut out = Vec::new();
        server.drain_output(id, &mut out);
        let mut notified_serials = Vec::new();
        let mut rest = &out[..];
        while let Some(frame) = wire::decode_frame(rest).unwrap() {
            if let Pdu::SerialNotify { serial, .. } = frame.pdu.to_owned() {
                notified_serials.push(serial);
            }
            rest = &rest[frame.len..];
        }
        assert_eq!(notified_serials, vec![1, 3], "paced epoch 2 coalesced");
    }

    #[test]
    fn garbage_from_router_gets_error_report_then_close() {
        let (handle, serving) = spawn_server(&vrps(&["10.0.0.0/8 => AS1"]));
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(&[9, 2, 0, 0, 0, 0, 0, 8]).unwrap();
        // The server answers with a closing Error Report and hangs up.
        let mut report = Vec::new();
        stream.read_to_end(&mut report).unwrap();
        let frame = wire::decode_frame(&report).unwrap().expect("a full report");
        assert!(matches!(frame.pdu.to_owned(), Pdu::ErrorReport { .. }));
        // The reaped session leaves the registry.
        assert!(handle.wait_for_no_sessions(Duration::from_secs(5)));
        handle.shutdown();
        serving.join().unwrap().unwrap();
    }

    #[test]
    fn tcp_idle_sessions_reaped_on_the_manual_clock() {
        let clock = Clock::manual();
        let config = ServerConfig {
            idle_timeout: Some(Duration::from_secs(60)),
            ..ServerConfig::default()
        };
        let server = TcpCacheServer::bind_with_clock(
            "127.0.0.1:0".parse().unwrap(),
            CacheServer::new(77, &vrps(&["10.0.0.0/8 => AS1"])),
            config,
            clock.clone(),
        )
        .unwrap();
        let handle = server.handle();
        let serving = thread::spawn(move || server.serve());
        let mut transport = TcpTransport::connect(handle.addr()).unwrap();
        let mut router = RouterClient::new();
        router.synchronize(&mut transport).unwrap();
        assert!(handle.wait_for_sessions(1, Duration::from_secs(5)));
        // Sixty idle virtual seconds: the event loop evicts and reaps.
        clock.advance(Duration::from_secs(60));
        assert!(
            handle.wait_for_no_sessions(Duration::from_secs(5)),
            "idle session must be evicted"
        );
        assert_eq!(handle.with_core(|core| core.stats().evictions), 1);
        // Our side of the connection observes the hangup.
        assert!(transport.recv().is_err());
        handle.shutdown();
        serving.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_drains_queued_teardown_reports() {
        let (handle, serving) = spawn_server(&vrps(&["10.0.0.0/8 => AS1"]));
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        assert!(handle.wait_for_sessions(1, Duration::from_secs(5)));
        // The teardown report is queued (and possibly still unflushed)
        // when shutdown lands: the drain pass must deliver the closing
        // Error Report rather than slam the socket shut.
        stream.write_all(&[9, 2, 0, 0, 0, 0, 0, 8]).unwrap();
        wait_until(|| handle.with_core(|core| core.stats().teardowns >= 1));
        handle.shutdown();
        serving.join().unwrap().unwrap();
        let mut report = Vec::new();
        stream.read_to_end(&mut report).unwrap();
        let frame = wire::decode_frame(&report)
            .unwrap()
            .expect("shutdown must flush the queued report");
        assert!(matches!(frame.pdu.to_owned(), Pdu::ErrorReport { .. }));
    }

    #[test]
    fn shutdown_drains_pending_responses() {
        // A router whose query answer is still queued when shutdown
        // lands must receive the full response: drain-then-close, not
        // close-then-drop.
        let (handle, serving) = spawn_server(&vrps(&["10.0.0.0/8 => AS1", "11.0.0.0/8 => AS2"]));
        let mut transport = TcpTransport::connect(handle.addr()).unwrap();
        assert!(handle.wait_for_sessions(1, Duration::from_secs(5)));
        transport.send(&Pdu::ResetQuery).unwrap();
        wait_until(|| handle.with_core(|core| core.stats().images_built >= 1));
        handle.shutdown();
        serving.join().unwrap().unwrap();
        let mut router = RouterClient::new();
        loop {
            match transport.recv() {
                Ok(pdu) => {
                    if router.handle(&pdu).unwrap() {
                        break;
                    }
                }
                Err(e) => panic!("response must be drained before close: {e}"),
            }
        }
        assert_eq!(router.vrps().len(), 2);
    }
}
