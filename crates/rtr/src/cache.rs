//! The cache-server side of rpki-rtr: Figure 1's "trusted local cache".
//!
//! The cache holds the current VRP set (the output of `scan_roas` or
//! `compress_roas`), versions it with serial numbers, and answers router
//! queries: a Reset Query gets the full set; a Serial Query gets the
//! announce/withdraw delta since the router's serial, or a Cache Reset if
//! that serial has aged out of the history window.
//!
//! The state machine is sans-io: [`CacheServer::handle`] maps one request
//! PDU to response PDUs; [`CacheServer::handle_wire`] does the same
//! straight over bytes — zero-copy decode via [`crate::wire`], version
//! negotiation, and the recoverable/fatal teardown split; and
//! [`CacheServer::serve_one`] runs the loop over a blocking
//! [`crate::transport::Transport`] adapter.

use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use rpki_roa::Vrp;
use rpki_rov::FrozenVrpIndex;

use crate::pdu::{ErrorCode, Flags, Pdu, Timing, PROTOCOL_V1};
use crate::transport::{Transport, TransportError};
use crate::wire::{self, Negotiation, PduError, PduRef, HEADER_LEN, MAX_PDU_LEN};

/// One recorded delta between consecutive serials.
#[derive(Debug, Clone, Default)]
struct Delta {
    announced: Vec<Vrp>,
    withdrawn: Vec<Vrp>,
}

/// The extent of a complete, plausibly-framed PDU at the front of
/// `input`: its declared length, if that length is in protocol range and
/// the bytes are all present. Used to decide how much of a rejected
/// buffer can still be identified as "the offending PDU".
pub(crate) fn frame_extent(input: &[u8]) -> Option<usize> {
    if input.len() < HEADER_LEN {
        return None;
    }
    let length = u32::from_be_bytes(input[4..8].try_into().expect("4 bytes")) as usize;
    if (HEADER_LEN..=MAX_PDU_LEN).contains(&length) && input.len() >= length {
        Some(length)
    } else {
        None
    }
}

/// How many deltas the cache keeps before answering old serials with
/// Cache Reset (RFC 8210 leaves this to the implementation). Public so
/// the model-based session tests can mirror the aging behaviour exactly.
pub const HISTORY_WINDOW: usize = 16;

/// The result of feeding received bytes to [`CacheServer::handle_wire`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOutcome {
    /// The buffer does not yet hold a complete frame; read more bytes
    /// and call again with the same (grown) buffer.
    NeedBytes,
    /// One request was decoded and answered; `out` holds the encoded
    /// response sequence. Drop `consumed` bytes from the front of the
    /// buffer and continue the session.
    Responded {
        /// Bytes consumed from the front of the input.
        consumed: usize,
    },
    /// The frame was malformed or violated version negotiation; `out`
    /// holds the final Error Report. Send it, then close the connection
    /// — recoverable errors ([`crate::ErrorClass::Recoverable`]) invite
    /// the router to reconnect at a lower version, fatal ones do not.
    Teardown {
        /// Bytes consumed from the front of the input (the whole buffer
        /// when the frame boundary itself is unrecoverable).
        consumed: usize,
        /// The classified decode/negotiation error.
        error: PduError,
    },
}

/// The rpki-rtr cache server state machine.
#[derive(Debug, Clone)]
pub struct CacheServer {
    session_id: u16,
    serial: u32,
    vrps: BTreeSet<Vrp>,
    /// The frozen compilation of `vrps` at the current serial: the flat
    /// snapshot the serial flow serves full responses from, and the one
    /// shared (cheaply, by `Arc`) with anything validating against this
    /// cache's state.
    snapshot: Arc<FrozenVrpIndex>,
    /// `history[i]` is the delta from `serial - history.len() + i` to the
    /// next serial.
    history: VecDeque<Delta>,
    timing: Timing,
    /// The highest protocol version this cache speaks; sessions
    /// negotiate down from here (RFC 8210 §7).
    version: u8,
}

impl CacheServer {
    /// Creates a cache at serial 0 holding `vrps`, speaking up to
    /// protocol version 1.
    pub fn new(session_id: u16, vrps: &[Vrp]) -> CacheServer {
        CacheServer::with_version(session_id, vrps, PROTOCOL_V1)
    }

    /// Creates a cache like [`CacheServer::new`] but starting at
    /// `serial` instead of 0.
    ///
    /// RFC 8210 §5.1 recommends a cache pick an unpredictable initial
    /// serial on restart precisely so routers cannot assume serials
    /// start low — which puts the `u32` wrap-around inside the normal
    /// operating envelope. Tests use this to pin the serial-arithmetic
    /// behaviour of [`CacheServer::handle`] at the `u32::MAX` boundary.
    pub fn with_initial_serial(session_id: u16, vrps: &[Vrp], serial: u32) -> CacheServer {
        let mut cache = CacheServer::new(session_id, vrps);
        cache.serial = serial;
        cache
    }

    /// Creates a cache capped at `version` — a v0-only cache
    /// ([`crate::PROTOCOL_V0`]) answers v1 routers with the recoverable
    /// Unsupported-Version error, the RFC 6810 downgrade handshake.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions.
    pub fn with_version(session_id: u16, vrps: &[Vrp], version: u8) -> CacheServer {
        // Negotiation validates the version byte once, here, so every
        // later per-connection `negotiation()` call is infallible.
        let _ = Negotiation::with_max(version);
        let vrps: BTreeSet<Vrp> = vrps.iter().copied().collect();
        let snapshot = Arc::new(vrps.iter().copied().collect());
        CacheServer {
            session_id,
            serial: 0,
            vrps,
            snapshot,
            history: VecDeque::new(),
            timing: Timing::default(),
            version,
        }
    }

    /// The session identifier routers must echo.
    pub fn session_id(&self) -> u16 {
        self.session_id
    }

    /// The highest protocol version this cache speaks.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// A fresh per-connection negotiation state machine capped at this
    /// cache's version — feed it to [`CacheServer::handle_wire`].
    pub fn negotiation(&self) -> Negotiation {
        Negotiation::with_max(self.version)
    }

    /// The current serial.
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The Refresh/Retry/Expire parameters advertised in v1 End of Data
    /// PDUs (RFC 8210 §6).
    pub fn timing(&self) -> Timing {
        self.timing
    }

    /// Replaces the advertised timing parameters. Routers pick the new
    /// intervals up with their next End of Data; tests shrink them so
    /// freshness transitions happen in virtual seconds instead of
    /// hours. Callers running behind a [`crate::server::FanoutServer`]
    /// must mutate through [`crate::server::FanoutServer::with_cache`]
    /// so the shared response images (which embed End of Data bytes)
    /// are invalidated.
    pub fn set_timing(&mut self, timing: Timing) {
        self.timing = timing;
    }

    /// How many deltas the history currently retains (at most
    /// [`HISTORY_WINDOW`]) — the fan-out server uses this to key shared
    /// delta images by lag.
    pub(crate) fn history_len(&self) -> usize {
        self.history.len()
    }

    /// The current VRP set.
    pub fn vrps(&self) -> impl Iterator<Item = &Vrp> {
        self.vrps.iter()
    }

    /// The frozen snapshot of the VRP set at the current serial —
    /// validate routes against the cache's exact served state without
    /// copying it (the `Arc` clone is free; the snapshot is immutable by
    /// construction and survives later [`CacheServer::update`] calls
    /// unchanged).
    pub fn snapshot(&self) -> Arc<FrozenVrpIndex> {
        Arc::clone(&self.snapshot)
    }

    /// Number of VRPs currently served — the router-load metric of §6.
    pub fn len(&self) -> usize {
        self.vrps.len()
    }

    /// `true` if the cache holds no VRPs.
    pub fn is_empty(&self) -> bool {
        self.vrps.is_empty()
    }

    /// Replaces the VRP set (a new validation run on the local cache),
    /// bumping the serial and recording the delta. Returns the
    /// Serial Notify PDU to push to connected routers.
    ///
    /// Rebuilds the frozen snapshot eagerly: a cache update is the "a
    /// validation run completed" event, which in deployment happens on
    /// the order of minutes, while the snapshot is read on every full
    /// response and every [`CacheServer::snapshot`] reader. The freeze
    /// itself is one sort over the set plus a node-count-sized filter
    /// (see `rpki_rov::frozen`), so the eager rebuild stays well under
    /// the cost of serializing even one full response.
    pub fn update(&mut self, new_vrps: &[Vrp]) -> Pdu {
        let new_set: BTreeSet<Vrp> = new_vrps.iter().copied().collect();
        let delta = Delta {
            announced: new_set.difference(&self.vrps).copied().collect(),
            withdrawn: self.vrps.difference(&new_set).copied().collect(),
        };
        self.vrps = new_set;
        self.commit(delta)
    }

    /// Applies a churn-style delta (announcements and withdrawals) instead
    /// of a whole replacement set, bumping the serial and recording only
    /// the **effective** changes. Returns the Serial Notify PDU.
    ///
    /// The lists are normalized defensively — this is the sharp edge a
    /// naive `history.push_back(Delta { announced, withdrawn })` would
    /// cut itself on:
    ///
    /// * announcing a VRP already served, or withdrawing one that is not,
    ///   is dropped: recording such no-ops would make a later delta
    ///   response emit records RFC 8210-conformant routers reject
    ///   (duplicate announcement or withdrawal-of-unknown, error 7/6),
    ///   desynchronizing the session even though the serial chain looks
    ///   healthy;
    /// * a VRP in **both** lists resolves as announce-then-withdraw (the
    ///   withdrawal wins) — the same order `RevalidationEngine::apply_delta`
    ///   and `SnapshotChainEngine::apply_epoch` use, so feeding one dirty
    ///   delta to the session and an engine side by side cannot diverge.
    ///   The intra-epoch flap that nets to nothing (announce of an absent
    ///   VRP, then its withdrawal) cancels out of the recorded delta
    ///   entirely; at most one record per VRP ever enters the history.
    ///
    /// Clean deltas (e.g. a `ChurnGenerator` epoch) pass through
    /// unchanged, and the recorded delta always equals the set difference
    /// between consecutive serials, exactly as [`CacheServer::update`]
    /// records it.
    pub fn update_delta(&mut self, announced: &[Vrp], withdrawn: &[Vrp]) -> Pdu {
        let announced: BTreeSet<Vrp> = announced.iter().copied().collect();
        let withdrawn: BTreeSet<Vrp> = withdrawn.iter().copied().collect();
        let mut delta = Delta::default();
        for &vrp in announced.iter() {
            if self.vrps.insert(vrp) {
                delta.announced.push(vrp);
            }
        }
        for vrp in withdrawn.iter() {
            if self.vrps.remove(vrp) {
                // An announce applied earlier in this same delta cancels
                // instead of leaving an announce+withdraw pair behind.
                if let Some(at) = delta.announced.iter().position(|a| a == vrp) {
                    delta.announced.swap_remove(at);
                } else {
                    delta.withdrawn.push(*vrp);
                }
            }
        }
        self.commit(delta)
    }

    /// The shared tail of every update: refreeze the snapshot, advance
    /// the serial, record the delta in the aged history window, and
    /// build the Serial Notify.
    fn commit(&mut self, delta: Delta) -> Pdu {
        self.snapshot = Arc::new(self.vrps.iter().copied().collect());
        self.serial = self.serial.wrapping_add(1);
        self.history.push_back(delta);
        while self.history.len() > HISTORY_WINDOW {
            self.history.pop_front();
        }
        Pdu::SerialNotify {
            session_id: self.session_id,
            serial: self.serial,
        }
    }

    /// Handles one request PDU, producing the response sequence.
    pub fn handle(&self, request: &Pdu) -> Vec<Pdu> {
        match request {
            Pdu::ResetQuery => self.full_response(),
            Pdu::SerialQuery { session_id, serial } => {
                if *session_id != self.session_id {
                    // RFC 8210 §5.4: wrong session → the router must reset.
                    return vec![Pdu::CacheReset];
                }
                self.delta_response(*serial)
            }
            other => {
                // RFC 8210 §5.10: an Error Report must not encapsulate
                // an Error Report — when the unexpected request *is*
                // one, report without embedding it.
                let pdu = if other.type_code() == 10 {
                    Bytes::from(Vec::new())
                } else {
                    other.to_bytes()
                };
                vec![Pdu::ErrorReport {
                    code: ErrorCode::InvalidRequest,
                    pdu,
                    text: format!("unexpected PDU type {}", other.type_code()),
                }]
            }
        }
    }

    /// The byte-level request path: decodes one frame zero-copy from the
    /// front of `input`, checks it against the connection's `negotiation`
    /// state, and appends the encoded response sequence to `out` at the
    /// session's negotiated version.
    ///
    /// This is the entry point transports use — the decode borrows
    /// straight from the receive buffer, so no intermediate PDU
    /// allocation happens on the error/robustness path at all, and on
    /// the happy path only the response construction allocates.
    ///
    /// On a malformed frame or a negotiation violation the appended
    /// response is the closing Error Report (RFC 8210 §5.10: carrying
    /// the offending frame when it is complete, identifiable, and not
    /// itself an Error Report), and the outcome says whether the error
    /// class invites a downgraded retry. Valid-but-unexpected request
    /// PDUs (e.g. a Cache Response sent *to* the cache) are not wire
    /// errors: they get the Invalid-Request report from
    /// [`CacheServer::handle`] and the session continues.
    pub fn handle_wire(
        &self,
        input: &[u8],
        negotiation: &mut Negotiation,
        out: &mut Vec<u8>,
    ) -> WireOutcome {
        match wire::decode_frame(input) {
            Ok(None) => WireOutcome::NeedBytes,
            Ok(Some(frame)) => match negotiation.accept(frame.version) {
                Ok(version) => {
                    let request = frame.pdu.to_owned();
                    for pdu in self.handle(&request) {
                        pdu.as_wire().encode_into(version, out);
                    }
                    WireOutcome::Responded {
                        consumed: frame.len,
                    }
                }
                Err(error) => {
                    self.report_teardown(&error, &input[..frame.len], negotiation, out);
                    WireOutcome::Teardown {
                        consumed: frame.len,
                        error,
                    }
                }
            },
            Err(error) => {
                // The frame boundary may itself be a lie; trust the
                // declared length only when it is in range and the bytes
                // are all present, otherwise the whole buffer is
                // poisoned (the session closes either way).
                let consumed = match frame_extent(input) {
                    Some(len) => len,
                    None => input.len(),
                };
                self.report_teardown(&error, &input[..consumed], negotiation, out);
                WireOutcome::Teardown { consumed, error }
            }
        }
    }

    /// Builds and appends the closing Error Report for a wire error.
    pub(crate) fn report_teardown(
        &self,
        error: &PduError,
        offending: &[u8],
        negotiation: &Negotiation,
        out: &mut Vec<u8>,
    ) {
        // RFC 8210 §5.10: embed the offending PDU when one can be
        // identified — but never an Error Report, and never so much that
        // the report itself would overflow the length field.
        let embed = if offending.len() >= HEADER_LEN
            && offending.get(1) != Some(&10)
            && HEADER_LEN + 4 + offending.len() + 4 <= MAX_PDU_LEN
        {
            offending
        } else {
            &[]
        };
        let text = error.to_string();
        let report = PduRef::ErrorReport {
            code: error.error_code(),
            pdu: embed,
            text: &text,
        };
        // A pinned session reports at its version; an unpinned one at
        // the cache's maximum (the offender's version may not even be a
        // version).
        let version = negotiation.version().unwrap_or(self.version);
        report.encode_into(version, out);
    }

    fn full_response(&self) -> Vec<Pdu> {
        // Serve the full set from the frozen snapshot's flat VRP array —
        // a straight memory scan instead of a tree walk.
        let mut out = Vec::with_capacity(self.snapshot.len() + 2);
        out.push(Pdu::CacheResponse {
            session_id: self.session_id,
        });
        out.extend(self.snapshot.iter().map(|&vrp| Pdu::Prefix {
            flags: Flags::Announce,
            vrp,
        }));
        out.push(self.end_of_data());
        out
    }

    /// RFC 1982-style serial comparison against the history window: how
    /// many deltas behind the cache `router_serial` is, if — and only if
    /// — that serial is inside the window.
    ///
    /// Serial arithmetic is mod 2³², so "behind by `k`" and "ahead by
    /// `2³² − k`" are the same number; the only deterministic rule is
    /// the window itself. A serial whose lag `self.serial − router_serial
    /// (mod 2³²)` exceeds the retained history — which covers serials
    /// that aged out, serials from the cache's future (a cache restarted
    /// at a lower serial), and the far side of the `u32::MAX` wrap alike
    /// — gets `None`, and the caller answers Cache Reset instead of
    /// fabricating a delta. A lag of 0 (router already current) is inside
    /// the window by definition, history or not.
    fn serial_lag(&self, router_serial: u32) -> Option<usize> {
        let lag = self.serial.wrapping_sub(router_serial) as usize;
        (lag <= self.history.len()).then_some(lag)
    }

    fn delta_response(&self, router_serial: u32) -> Vec<Pdu> {
        let behind = match self.serial_lag(router_serial) {
            Some(behind) => behind,
            // Outside the history window on either side — too old, from
            // the future, or across the wrap: force a reset.
            None => return vec![Pdu::CacheReset],
        };
        if behind == 0 {
            // Nothing new: empty response confirming the serial.
            return vec![
                Pdu::CacheResponse {
                    session_id: self.session_id,
                },
                self.end_of_data(),
            ];
        }
        let mut out = vec![Pdu::CacheResponse {
            session_id: self.session_id,
        }];
        let start = self.history.len() - behind;
        // Coalesce the deltas: a VRP announced then withdrawn (or vice
        // versa) across the window must not be sent twice.
        let mut announced: BTreeSet<Vrp> = BTreeSet::new();
        let mut withdrawn: BTreeSet<Vrp> = BTreeSet::new();
        for delta in self.history.iter().skip(start) {
            for &v in &delta.announced {
                if !withdrawn.remove(&v) {
                    announced.insert(v);
                }
            }
            for &v in &delta.withdrawn {
                if !announced.remove(&v) {
                    withdrawn.insert(v);
                }
            }
        }
        out.extend(announced.into_iter().map(|vrp| Pdu::Prefix {
            flags: Flags::Announce,
            vrp,
        }));
        out.extend(withdrawn.into_iter().map(|vrp| Pdu::Prefix {
            flags: Flags::Withdraw,
            vrp,
        }));
        out.push(self.end_of_data());
        out
    }

    fn end_of_data(&self) -> Pdu {
        Pdu::EndOfData {
            session_id: self.session_id,
            serial: self.serial,
            timing: self.timing,
        }
    }

    /// Serves exactly one request over a blocking transport (used by the
    /// per-connection server loop and tests).
    pub fn serve_one<T: Transport>(&mut self, transport: &mut T) -> Result<(), TransportError> {
        let request = transport.recv()?;
        for pdu in self.handle(&request) {
            transport.send(&pdu)?;
        }
        Ok(())
    }

    /// Serves requests until the transport closes.
    pub fn serve<T: Transport>(&mut self, transport: &mut T) -> Result<(), TransportError> {
        loop {
            match self.serve_one(transport) {
                Ok(()) => {}
                Err(TransportError::Closed) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn cache() -> CacheServer {
        CacheServer::new(
            7,
            &[vrp("10.0.0.0/8 => AS1"), vrp("2001:db8::/32-48 => AS2")],
        )
    }

    #[test]
    fn reset_query_returns_full_set() {
        let c = cache();
        let response = c.handle(&Pdu::ResetQuery);
        assert_eq!(response.len(), 4); // CacheResponse + 2 prefixes + EOD
        assert_eq!(response[0], Pdu::CacheResponse { session_id: 7 });
        assert!(matches!(
            response[1],
            Pdu::Prefix {
                flags: Flags::Announce,
                ..
            }
        ));
        assert!(matches!(response[3], Pdu::EndOfData { serial: 0, .. }));
    }

    #[test]
    fn update_bumps_serial_and_diffs() {
        let mut c = cache();
        let notify = c.update(&[vrp("10.0.0.0/8 => AS1"), vrp("11.0.0.0/8 => AS3")]);
        assert_eq!(
            notify,
            Pdu::SerialNotify {
                session_id: 7,
                serial: 1
            }
        );
        // Router at serial 0 gets exactly the delta.
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: 0,
        });
        let announces: Vec<&Vrp> = response
            .iter()
            .filter_map(|p| match p {
                Pdu::Prefix {
                    flags: Flags::Announce,
                    vrp,
                } => Some(vrp),
                _ => None,
            })
            .collect();
        let withdraws: Vec<&Vrp> = response
            .iter()
            .filter_map(|p| match p {
                Pdu::Prefix {
                    flags: Flags::Withdraw,
                    vrp,
                } => Some(vrp),
                _ => None,
            })
            .collect();
        assert_eq!(announces, vec![&vrp("11.0.0.0/8 => AS3")]);
        assert_eq!(withdraws, vec![&vrp("2001:db8::/32-48 => AS2")]);
    }

    #[test]
    fn serial_query_current_serial_is_empty_delta() {
        let c = cache();
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: 0,
        });
        assert_eq!(response.len(), 2);
        assert!(matches!(response[1], Pdu::EndOfData { serial: 0, .. }));
    }

    #[test]
    fn wrong_session_forces_reset() {
        let c = cache();
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 99,
            serial: 0,
        });
        assert_eq!(response, vec![Pdu::CacheReset]);
    }

    #[test]
    fn ancient_serial_forces_reset() {
        let mut c = cache();
        for i in 0..(HISTORY_WINDOW + 5) {
            c.update(&[vrp(&format!("10.{}.0.0/16 => AS1", i))]);
        }
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: 1,
        });
        assert_eq!(response, vec![Pdu::CacheReset]);
        // A recent serial still gets a delta.
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: c.serial() - 1,
        });
        assert!(matches!(response[0], Pdu::CacheResponse { .. }));
    }

    #[test]
    fn serial_from_the_future_forces_reset() {
        // A router claiming a serial the cache never issued (e.g. the
        // cache restarted at a lower serial): RFC 1982 arithmetic makes
        // "ahead by 3" look like "behind by 2³²−3", far outside the
        // window — deterministic Cache Reset, not a garbage delta.
        let mut c = cache();
        c.update(&[vrp("11.0.0.0/8 => AS3")]);
        assert_eq!(c.serial(), 1);
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: 4,
        });
        assert_eq!(response, vec![Pdu::CacheReset]);
    }

    #[test]
    fn serial_delta_survives_u32_wraparound() {
        // Cache starts just below u32::MAX (RFC 8210 §5.1: restart
        // serials are arbitrary) and updates across the wrap. A router
        // holding a pre-wrap serial inside the window must get the
        // correct coalesced delta; the wrap is invisible.
        let mut c = CacheServer::with_initial_serial(7, &[vrp("10.0.0.0/8 => AS1")], u32::MAX - 2);
        for i in 0..5u32 {
            c.update_delta(&[vrp(&format!("11.{i}.0.0/16 => AS3"))], &[]);
        }
        assert_eq!(c.serial(), 2, "serial wrapped past u32::MAX");
        // Router at u32::MAX: 3 deltas behind, across the wrap.
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: u32::MAX,
        });
        let announces: Vec<Vrp> = response
            .iter()
            .filter_map(|p| match p {
                Pdu::Prefix {
                    flags: Flags::Announce,
                    vrp,
                } => Some(*vrp),
                _ => None,
            })
            .collect();
        assert_eq!(
            announces,
            vec![
                vrp("11.2.0.0/16 => AS3"),
                vrp("11.3.0.0/16 => AS3"),
                vrp("11.4.0.0/16 => AS3"),
            ]
        );
        assert!(matches!(
            response.last(),
            Some(Pdu::EndOfData { serial: 2, .. })
        ));
    }

    #[test]
    fn serial_ahead_at_u32_boundary_forces_reset() {
        // The mirror image: the router's serial is *ahead* of a cache
        // sitting at u32::MAX. wrapping_sub yields a tiny-looking lag
        // only for serials the cache actually retains; one past the
        // current serial is a huge lag and must reset.
        let mut c = CacheServer::with_initial_serial(7, &[vrp("10.0.0.0/8 => AS1")], u32::MAX - 1);
        c.update(&[vrp("11.0.0.0/8 => AS3")]);
        assert_eq!(c.serial(), u32::MAX);
        // One ahead (serial 0, i.e. current + 1 across the wrap): reset.
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: 0,
        });
        assert_eq!(response, vec![Pdu::CacheReset]);
        // Exactly current: empty confirming delta.
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: u32::MAX,
        });
        assert_eq!(response.len(), 2);
        // One behind: the recorded delta.
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: u32::MAX - 1,
        });
        assert!(response.iter().any(|p| matches!(p, Pdu::Prefix { .. })));
    }

    #[test]
    fn deltas_coalesce_across_serials() {
        let mut c = CacheServer::new(1, &[]);
        // Announce then withdraw across two updates: net zero.
        c.update(&[vrp("10.0.0.0/8 => AS1")]);
        c.update(&[]);
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 1,
            serial: 0,
        });
        let prefix_count = response
            .iter()
            .filter(|p| matches!(p, Pdu::Prefix { .. }))
            .count();
        assert_eq!(prefix_count, 0, "transient VRP must not appear");
    }

    #[test]
    fn withdraw_then_reannounce_coalesces() {
        let mut c = CacheServer::new(1, &[vrp("10.0.0.0/8 => AS1")]);
        c.update(&[]);
        c.update(&[vrp("10.0.0.0/8 => AS1")]);
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 1,
            serial: 0,
        });
        let prefix_count = response
            .iter()
            .filter(|p| matches!(p, Pdu::Prefix { .. }))
            .count();
        assert_eq!(prefix_count, 0);
    }

    #[test]
    fn unexpected_pdu_gets_error_report() {
        let c = cache();
        let response = c.handle(&Pdu::CacheReset);
        assert_eq!(response.len(), 1);
        assert!(matches!(
            response[0],
            Pdu::ErrorReport {
                code: ErrorCode::InvalidRequest,
                ..
            }
        ));
    }

    #[test]
    fn update_delta_applies_and_diffs_like_update() {
        let mut by_set = cache();
        let mut by_delta = cache();
        by_set.update(&[vrp("10.0.0.0/8 => AS1"), vrp("11.0.0.0/8 => AS3")]);
        by_delta.update_delta(
            &[vrp("11.0.0.0/8 => AS3")],
            &[vrp("2001:db8::/32-48 => AS2")],
        );
        assert_eq!(by_set.serial(), by_delta.serial());
        let a: Vec<&Vrp> = by_set.vrps().collect();
        let b: Vec<&Vrp> = by_delta.vrps().collect();
        assert_eq!(a, b);
        // Both record the identical delta for a router at serial 0.
        let q = Pdu::SerialQuery {
            session_id: 7,
            serial: 0,
        };
        assert_eq!(by_set.handle(&q), by_delta.handle(&q));
    }

    #[test]
    fn same_epoch_announce_and_withdraw_resolves_like_the_engines() {
        // The sharp edge: one epoch both announces and withdraws the same
        // VRP. The delta resolves announce-then-withdraw (withdrawal
        // wins, matching the rov engines), and the history must never
        // hold an announce+withdraw pair for one VRP — that pair in a
        // delta response is a protocol violation on the router side.
        let present = vrp("10.0.0.0/8 => AS1");
        let absent = vrp("99.0.0.0/8 => AS9");
        let mut c = cache();
        c.update_delta(&[present, absent], &[present, absent]);
        assert_eq!(c.serial(), 1, "serial chain advances normally");
        // The present VRP is withdrawn; the absent one flapped up and
        // down inside the epoch and cancelled out of the record.
        let after: Vec<Vrp> = c.vrps().copied().collect();
        assert_eq!(after, vec![vrp("2001:db8::/32-48 => AS2")]);
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: 0,
        });
        let records: Vec<(Flags, Vrp)> = response
            .iter()
            .filter_map(|p| match p {
                Pdu::Prefix { flags, vrp } => Some((*flags, *vrp)),
                _ => None,
            })
            .collect();
        assert_eq!(records, vec![(Flags::Withdraw, present)]);
        assert!(matches!(
            response.last(),
            Some(Pdu::EndOfData { serial: 1, .. })
        ));
    }

    #[test]
    fn dirty_delta_matches_engine_semantics() {
        // Feeding the same dirty delta to the cache and to the
        // snapshot-chain engine side by side must land on the same set —
        // the invariant every session-plus-engine consumer relies on.
        use rpki_rov::{ChainConfig, SnapshotChainEngine};
        let initial = [vrp("10.0.0.0/8 => AS1"), vrp("11.0.0.0/8 => AS3")];
        let announced = [vrp("10.0.0.0/8 => AS1"), vrp("12.0.0.0/8 => AS4")];
        let withdrawn = [vrp("10.0.0.0/8 => AS1"), vrp("99.0.0.0/8 => AS9")];
        let mut c = CacheServer::new(1, &initial);
        c.update_delta(&announced, &withdrawn);
        let mut engine = SnapshotChainEngine::new([], initial, ChainConfig::default());
        engine.apply_epoch(&announced, &withdrawn);
        let cache_set: Vec<Vrp> = c.vrps().copied().collect();
        assert_eq!(cache_set, engine.current_vrps());
    }

    #[test]
    fn update_delta_skips_noop_records() {
        let mut c = cache();
        // Announcing a served VRP and withdrawing an absent one are both
        // no-ops and must not be recorded.
        c.update_delta(&[vrp("10.0.0.0/8 => AS1")], &[vrp("99.0.0.0/8 => AS9")]);
        assert_eq!(c.len(), 2);
        let response = c.handle(&Pdu::SerialQuery {
            session_id: 7,
            serial: 0,
        });
        assert_eq!(response.len(), 2, "empty delta: CacheResponse + EOD only");
    }

    #[test]
    fn update_delta_keeps_router_in_sync() {
        use crate::client::RouterClient;
        // Replay a dirty delta through a real client: the session must
        // survive (this is the regression the normalization guards).
        let mut c = CacheServer::new(9, &[vrp("10.0.0.0/8 => AS1")]);
        let mut router = RouterClient::new();
        for pdu in c.handle(&Pdu::ResetQuery) {
            router.handle(&pdu).unwrap();
        }
        let flap = vrp("10.0.0.0/8 => AS1");
        let fresh = vrp("12.0.0.0/8 => AS4");
        c.update_delta(&[flap, fresh], &[flap]);
        for pdu in c.handle(&router.query()) {
            router
                .handle(&pdu)
                .expect("delta must not desync the router");
        }
        assert_eq!(router.serial(), c.serial());
        let got: Vec<Vrp> = router.vrps().iter().copied().collect();
        let expect: Vec<Vrp> = c.vrps().copied().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn accessors() {
        let c = cache();
        assert_eq!(c.session_id(), 7);
        assert_eq!(c.serial(), 0);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(CacheServer::new(1, &[]).is_empty());
    }

    #[test]
    fn snapshot_tracks_updates_and_old_handles_survive() {
        use rpki_rov::ValidationState;
        let mut c = cache();
        let before = c.snapshot();
        assert_eq!(before.len(), 2);
        assert_eq!(
            before.validate(&"10.0.0.0/8 => AS1".parse().unwrap()),
            ValidationState::Valid
        );
        c.update(&[vrp("11.0.0.0/8 => AS3")]);
        // The cache serves the new frozen state...
        let after = c.snapshot();
        assert_eq!(after.len(), 1);
        assert_eq!(
            after.validate(&"11.0.0.0/8 => AS3".parse().unwrap()),
            ValidationState::Valid
        );
        assert_eq!(
            after.validate(&"10.0.0.0/8 => AS1".parse().unwrap()),
            ValidationState::NotFound
        );
        // ...while readers holding the old snapshot still see serial 0's
        // world, immutably.
        assert_eq!(before.len(), 2);
    }

    #[test]
    fn error_report_request_is_not_embedded_in_the_reply() {
        // RFC 8210 §5.10: the Invalid-Request report for an unexpected
        // Error Report must not encapsulate it — the reply has to stay
        // encodable on the wire.
        let c = cache();
        let request = Pdu::ErrorReport {
            code: ErrorCode::InternalError,
            pdu: Bytes::from(Vec::new()),
            text: "router-side complaint".into(),
        };
        let response = c.handle(&request);
        match response.as_slice() {
            [Pdu::ErrorReport { code, pdu, .. }] => {
                assert_eq!(*code, ErrorCode::InvalidRequest);
                assert!(pdu.is_empty(), "must not embed an Error Report");
            }
            other => panic!("expected a lone Error Report, got {other:?}"),
        }
        // And it must actually encode (the nested form would trip the
        // encoder's nesting guard).
        let mut negotiation = c.negotiation();
        let mut out = Vec::new();
        let wire_request = request.to_bytes();
        let outcome = c.handle_wire(&wire_request, &mut negotiation, &mut out);
        assert!(matches!(outcome, WireOutcome::Responded { .. }));
        let (reply, used, _) = Pdu::decode_versioned(&out).unwrap().unwrap();
        assert_eq!(used, out.len());
        assert!(matches!(reply, Pdu::ErrorReport { .. }));
    }

    #[test]
    fn full_response_serves_snapshot_set() {
        let c = cache();
        let response = c.handle(&Pdu::ResetQuery);
        let served: Vec<Vrp> = response
            .iter()
            .filter_map(|p| match p {
                Pdu::Prefix { vrp, .. } => Some(*vrp),
                _ => None,
            })
            .collect();
        let mut expect: Vec<Vrp> = c.vrps().copied().collect();
        let mut got = served.clone();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}
