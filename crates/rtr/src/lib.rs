//! The RPKI-to-Router protocol (RFC 6810 / RFC 8210).
//!
//! Figure 1 of the paper: the trusted local cache validates ROAs, turns
//! them into `(prefix, maxLength, origin AS)` PDUs, and ships the PDU list
//! to the AS's routers over the rpki-rtr protocol. The **number of PDUs on
//! this channel is the paper's router-load metric** — `compress_roas`
//! exists precisely to shrink it — so this crate implements the channel
//! itself, letting examples and tests measure end-to-end exactly what the
//! paper counts.
//!
//! Following the event-driven style of embedded network stacks, the
//! protocol logic is *sans-io*:
//!
//! * [`wire`] — the wire layer: borrowed-buffer cursors, strict
//!   zero-copy decoding of every PDU type of RFC 8210 (minus router
//!   keys), the recoverable/fatal error taxonomy, and v0/v1
//!   version negotiation.
//! * [`pdu`] — the owned [`Pdu`] value type the state machines traffic
//!   in; encode/decode delegates to [`wire`].
//! * [`cache`] — the cache-server state machine: versioned VRP sets,
//!   serial numbers, delta computation, query handling.
//! * [`client`] — the router-side state machine: session tracking,
//!   serial/reset synchronization, applying announce/withdraw deltas.
//! * [`transport`] — thin blocking adapters: a wire-framed in-memory
//!   channel pair for tests and a TCP dialer for the router side.
//! * [`server`] — the concurrent cache-side service: a sans-io fan-out
//!   core sharing each epoch's serialized responses across every
//!   session, plus a non-blocking TCP event loop with a session
//!   registry (no async runtime — one thread multiplexes the fleet).
//! * [`session`] — a cache ↔ router pair joined by in-memory byte
//!   pipes, driving churn timelines through the fan-out core as real
//!   PDUs.
//! * [`clock`] — virtual time: every RFC 8210 timer reads a [`Clock`]
//!   that tests drive manually, so timer behaviour is deterministic.
//! * [`faults`] — seeded, replayable fault injection ([`FaultPlan`],
//!   [`FaultyTransport`]) and the chaos recovery harness
//!   ([`ChaosSession`]): capped backoff, Reset Query fallback, stale
//!   flushing, and the convergence-or-Stale invariant the chaos suite
//!   gates on.
//!
//! ```
//! use rpki_rtr::cache::CacheServer;
//! use rpki_rtr::client::RouterClient;
//! use rpki_rtr::transport::memory_pair;
//! use rpki_roa::Vrp;
//!
//! let vrps: Vec<Vrp> = vec!["168.122.0.0/16 => AS111".parse().unwrap()];
//! let mut cache = CacheServer::new(42, &vrps);
//! let (mut a, mut b) = memory_pair();
//!
//! // Router connects, resets, and synchronizes.
//! let mut router = RouterClient::new();
//! std::thread::spawn(move || cache.serve_one(&mut b));
//! router.synchronize(&mut a).unwrap();
//! assert_eq!(router.vrps().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod clock;
pub mod faults;
pub mod pdu;
pub mod server;
pub mod session;
pub mod transport;
pub mod wire;

pub use cache::{CacheServer, WireOutcome};
pub use client::{Freshness, RouterClient};
pub use clock::Clock;
pub use faults::{
    Backoff, ChaosOptions, ChaosSession, FaultAction, FaultConfig, FaultPlan, FaultyTransport,
    RecoveryConfig, Settled, TraceEvent,
};
pub use pdu::{Pdu, PduError, PROTOCOL_V0, PROTOCOL_V1};
pub use server::{
    FanoutServer, FanoutStats, ServerConfig, ServerHandle, SessionId, TcpCacheServer,
};
pub use session::{LiveSession, SessionConfig, SessionError, SyncStats};
pub use wire::{decode_frame, ErrorClass, Frame, Negotiation, PduRef};
