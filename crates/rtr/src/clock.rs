//! Virtual time for the RTR timer layer.
//!
//! RFC 8210 §6 hangs real behaviour off wall-clock intervals — Refresh,
//! Retry, Expire, idle deadlines — which makes the recovery paths the
//! hardest ones to test: a test that sleeps through a 600-second Retry
//! interval is not a test anyone runs. [`Clock`] is the seam: every
//! timer consumer ([`crate::client::RouterClient`],
//! [`crate::server::FanoutServer`], [`crate::session::LiveSession`],
//! the TCP event loop) reads time through a `Clock`, and tests hand
//! them a *manual* clock they advance explicitly. Virtual time plus the
//! seeded fault streams of [`crate::faults`] make every recovery trace
//! deterministic: the same schedule of `advance` calls replays the same
//! timer firings, byte for byte.
//!
//! A `Clock` measures monotonic elapsed time as a [`Duration`] since
//! its creation — there is no calendar here, only intervals, which is
//! all the RTR timers need. Clones of a manual clock share one
//! timeline, so a router and the server it talks to observe the same
//! `advance`.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonic clock: real (`Instant`-backed) or manual (test-driven).
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// Wall time, measured from the clock's creation.
    System(Instant),
    /// Virtual time, advanced explicitly; shared across clones.
    Manual(Arc<Mutex<Duration>>),
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::system()
    }
}

impl Clock {
    /// A real clock: `now()` reports wall time elapsed since creation.
    pub fn system() -> Clock {
        Clock {
            inner: Inner::System(Instant::now()),
        }
    }

    /// A manual clock starting at zero. Time moves only through
    /// [`Clock::advance`]; clones share the timeline.
    pub fn manual() -> Clock {
        Clock {
            inner: Inner::Manual(Arc::new(Mutex::new(Duration::ZERO))),
        }
    }

    /// Elapsed time since the clock's creation.
    pub fn now(&self) -> Duration {
        match &self.inner {
            Inner::System(base) => base.elapsed(),
            Inner::Manual(t) => *t.lock().expect("clock poisoned"),
        }
    }

    /// Moves a manual clock forward by `by`.
    ///
    /// # Panics
    ///
    /// Panics on a system clock — advancing wall time is a test-only
    /// operation, and silently ignoring it would desynchronize a test's
    /// model of time from the timers it drives.
    pub fn advance(&self, by: Duration) {
        match &self.inner {
            Inner::System(_) => panic!("advance on a system clock"),
            Inner::Manual(t) => *t.lock().expect("clock poisoned") += by,
        }
    }

    /// `true` for a manual clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.inner, Inner::Manual(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let clock = Clock::manual();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_secs(5));
        assert_eq!(clock.now(), Duration::from_secs(5));
        clock.advance(Duration::from_millis(1));
        assert_eq!(clock.now(), Duration::from_millis(5001));
    }

    #[test]
    fn clones_share_a_manual_timeline() {
        let a = Clock::manual();
        let b = a.clone();
        a.advance(Duration::from_secs(3));
        assert_eq!(b.now(), Duration::from_secs(3));
        b.advance(Duration::from_secs(4));
        assert_eq!(a.now(), Duration::from_secs(7));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = Clock::system();
        assert!(!clock.is_manual());
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    #[should_panic(expected = "advance on a system clock")]
    fn advancing_a_system_clock_panics() {
        Clock::system().advance(Duration::from_secs(1));
    }
}
