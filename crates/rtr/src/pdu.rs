//! Owned rpki-rtr PDU values (RFC 6810 / RFC 8210).
//!
//! The wire format itself — cursors, strict zero-copy decoding, the
//! error taxonomy, version negotiation — lives in [`crate::wire`]; this
//! module holds the **owned** [`Pdu`] value type the state machines
//! ([`CacheServer`](crate::CacheServer), [`RouterClient`](crate::RouterClient))
//! traffic in, with encode/decode entry points that delegate to the wire
//! layer. The pre-cursor `bytes`-based codec is preserved verbatim in
//! [`legacy`] as the differential oracle the test battery and the codec
//! bench compare against.

use bytes::{Bytes, BytesMut};
use rpki_roa::Vrp;

use crate::wire::{self, PduRef, WriteCursor};

pub use crate::wire::{ErrorClass, PduError};

/// Protocol version 0 (RFC 6810).
pub const PROTOCOL_V0: u8 = 0;
/// Protocol version 1 (RFC 8210), the highest version this stack speaks.
pub const PROTOCOL_V1: u8 = 1;

/// The announce/withdraw flag bit of prefix PDUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flags {
    /// The VRP is being added to the router's set.
    Announce,
    /// The VRP is being removed.
    Withdraw,
}

impl Flags {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            Flags::Announce => 1,
            Flags::Withdraw => 0,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Result<Flags, PduError> {
        match b {
            1 => Ok(Flags::Announce),
            0 => Ok(Flags::Withdraw),
            other => Err(PduError::BadFlags(other)),
        }
    }
}

/// RFC 8210 error codes carried in Error Report PDUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// 0: Corrupt Data.
    CorruptData,
    /// 1: Internal Error.
    InternalError,
    /// 2: No Data Available.
    NoDataAvailable,
    /// 3: Invalid Request.
    InvalidRequest,
    /// 4: Unsupported Protocol Version.
    UnsupportedVersion,
    /// 5: Unsupported PDU Type.
    UnsupportedPduType,
    /// 6: Withdrawal of Unknown Record.
    WithdrawalOfUnknown,
    /// 7: Duplicate Announcement Received.
    DuplicateAnnouncement,
    /// 8: Unexpected Protocol Version.
    UnexpectedVersion,
}

impl ErrorCode {
    pub(crate) fn to_u16(self) -> u16 {
        match self {
            ErrorCode::CorruptData => 0,
            ErrorCode::InternalError => 1,
            ErrorCode::NoDataAvailable => 2,
            ErrorCode::InvalidRequest => 3,
            ErrorCode::UnsupportedVersion => 4,
            ErrorCode::UnsupportedPduType => 5,
            ErrorCode::WithdrawalOfUnknown => 6,
            ErrorCode::DuplicateAnnouncement => 7,
            ErrorCode::UnexpectedVersion => 8,
        }
    }

    pub(crate) fn from_u16(v: u16) -> Result<ErrorCode, PduError> {
        Ok(match v {
            0 => ErrorCode::CorruptData,
            1 => ErrorCode::InternalError,
            2 => ErrorCode::NoDataAvailable,
            3 => ErrorCode::InvalidRequest,
            4 => ErrorCode::UnsupportedVersion,
            5 => ErrorCode::UnsupportedPduType,
            6 => ErrorCode::WithdrawalOfUnknown,
            7 => ErrorCode::DuplicateAnnouncement,
            8 => ErrorCode::UnexpectedVersion,
            other => return Err(PduError::BadErrorCode(other)),
        })
    }
}

/// The RFC 8210 refresh/retry/expire timing parameters carried in v1
/// End of Data PDUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Seconds between serial queries (RFC 8210 default 3600).
    pub refresh: u32,
    /// Seconds before retrying a failed query (default 600).
    pub retry: u32,
    /// Seconds after which stale data must be discarded (default 7200).
    pub expire: u32,
}

impl Default for Timing {
    fn default() -> Timing {
        Timing {
            refresh: 3600,
            retry: 600,
            expire: 7200,
        }
    }
}

/// One rpki-rtr PDU, owning its payloads. The borrowed counterpart is
/// [`wire::PduRef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pdu {
    /// Type 0: the cache tells routers new data is available.
    SerialNotify {
        /// The cache session.
        session_id: u16,
        /// The cache's latest serial.
        serial: u32,
    },
    /// Type 1: a router asks for deltas since `serial`.
    SerialQuery {
        /// The session the router believes it is in.
        session_id: u16,
        /// The router's current serial.
        serial: u32,
    },
    /// Type 2: a router asks for the complete data set.
    ResetQuery,
    /// Type 3: the cache starts answering a query.
    CacheResponse {
        /// The cache session.
        session_id: u16,
    },
    /// Type 4/6: one VRP, announced or withdrawn.
    Prefix {
        /// Announce or withdraw.
        flags: Flags,
        /// The payload tuple.
        vrp: Vrp,
    },
    /// Type 7: end of a response, carrying the new serial.
    EndOfData {
        /// The cache session.
        session_id: u16,
        /// The serial the router is now synchronized to.
        serial: u32,
        /// v1 timing parameters.
        timing: Timing,
    },
    /// Type 8: the cache cannot serve deltas; the router must reset.
    CacheReset,
    /// Type 10: a protocol error, ending the session.
    ErrorReport {
        /// The RFC 8210 error code.
        code: ErrorCode,
        /// The offending PDU's raw bytes, if any.
        pdu: Bytes,
        /// Diagnostic text.
        text: String,
    },
}

impl Pdu {
    /// The PDU type byte.
    pub fn type_code(&self) -> u8 {
        self.as_wire().type_code()
    }

    /// A borrowed [`wire::PduRef`] view over this PDU — the type the
    /// cursor encoder consumes.
    pub fn as_wire(&self) -> PduRef<'_> {
        match self {
            Pdu::SerialNotify { session_id, serial } => PduRef::SerialNotify {
                session_id: *session_id,
                serial: *serial,
            },
            Pdu::SerialQuery { session_id, serial } => PduRef::SerialQuery {
                session_id: *session_id,
                serial: *serial,
            },
            Pdu::ResetQuery => PduRef::ResetQuery,
            Pdu::CacheResponse { session_id } => PduRef::CacheResponse {
                session_id: *session_id,
            },
            Pdu::Prefix { flags, vrp } => PduRef::Prefix {
                flags: *flags,
                vrp: *vrp,
            },
            Pdu::EndOfData {
                session_id,
                serial,
                timing,
            } => PduRef::EndOfData {
                session_id: *session_id,
                serial: *serial,
                timing: *timing,
            },
            Pdu::CacheReset => PduRef::CacheReset,
            Pdu::ErrorReport { code, pdu, text } => PduRef::ErrorReport {
                code: *code,
                pdu: &pdu[..],
                text: text.as_str(),
            },
        }
    }

    /// The exact encoded size at `version`, header included.
    pub fn wire_len(&self, version: u8) -> usize {
        self.as_wire().wire_len(version)
    }

    /// Encodes the PDU (protocol version 1) into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        self.encode_versioned(PROTOCOL_V1, buf);
    }

    /// Encodes for a specific protocol version. Version 0 (RFC 6810, the
    /// protocol of the paper's era) differs only in the End of Data PDU,
    /// which carries no timing parameters.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions.
    pub fn encode_versioned(&self, version: u8, buf: &mut BytesMut) {
        let r = self.as_wire();
        let start = buf.len();
        buf.resize(start + r.wire_len(version), 0);
        r.write(version, &mut WriteCursor::new(&mut buf[start..]));
    }

    /// Encodes to a fresh buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Attempts to decode one PDU from the front of `data`, requiring
    /// protocol version 1.
    ///
    /// Returns `Ok(None)` when more bytes are needed (stream still open),
    /// `Ok(Some((pdu, consumed)))` on success.
    pub fn decode(data: &[u8]) -> Result<Option<(Pdu, usize)>, PduError> {
        match Pdu::decode_versioned(data)? {
            Some((_, _, version)) if version != PROTOCOL_V1 => Err(PduError::BadVersion(version)),
            other => Ok(other.map(|(pdu, used, _)| (pdu, used))),
        }
    }

    /// Attempts to decode one PDU accepting both protocol versions,
    /// returning the version alongside. A v0 End of Data (12 bytes, no
    /// timing) yields RFC 8210's default timing values.
    ///
    /// This allocates owned payloads; transports that can hold the
    /// receive buffer across the decode should use
    /// [`wire::decode_frame`] directly and stay zero-copy.
    pub fn decode_versioned(data: &[u8]) -> Result<Option<(Pdu, usize, u8)>, PduError> {
        Ok(wire::decode_frame(data)?.map(|frame| (frame.pdu.to_owned(), frame.len, frame.version)))
    }
}

/// The pre-cursor `bytes`-based codec, kept verbatim as the differential
/// oracle for the wire layer: `tests/differential.rs` proves the cursor
/// codec byte-identical to this one on every valid PDU at both protocol
/// versions, and the `rtr` bench measures decode throughput old vs new.
/// Not part of the public API; never called by the protocol state
/// machines.
#[doc(hidden)]
pub mod legacy {
    use bytes::{Buf, BufMut, Bytes, BytesMut};
    use rpki_prefix::{Prefix, Prefix4, Prefix6};
    use rpki_roa::{Asn, Vrp};

    use super::{ErrorCode, Flags, Pdu, PduError, Timing, PROTOCOL_V0, PROTOCOL_V1};

    const HEADER_LEN: usize = 8;

    /// The old allocating encoder.
    pub fn encode_versioned(pdu: &Pdu, version: u8, buf: &mut BytesMut) {
        assert!(
            version == PROTOCOL_V0 || version == PROTOCOL_V1,
            "unknown protocol version {version}"
        );
        if version == PROTOCOL_V0 {
            if let Pdu::EndOfData {
                session_id, serial, ..
            } = pdu
            {
                let start = buf.len();
                buf.put_u8(PROTOCOL_V0);
                buf.put_u8(7);
                buf.put_u16(*session_id);
                buf.put_u32(12);
                buf.put_u32(*serial);
                debug_assert_eq!(buf.len() - start, 12);
                return;
            }
        }
        let start = buf.len();
        buf.put_u8(version);
        buf.put_u8(pdu.type_code());
        match pdu {
            Pdu::SerialNotify { session_id, serial } | Pdu::SerialQuery { session_id, serial } => {
                buf.put_u16(*session_id);
                buf.put_u32(12);
                buf.put_u32(*serial);
            }
            Pdu::ResetQuery | Pdu::CacheReset => {
                buf.put_u16(0);
                buf.put_u32(8);
            }
            Pdu::CacheResponse { session_id } => {
                buf.put_u16(*session_id);
                buf.put_u32(8);
            }
            Pdu::Prefix { flags, vrp } => {
                buf.put_u16(0);
                match vrp.prefix {
                    Prefix::V4(p) => {
                        buf.put_u32(20);
                        buf.put_u8(flags.to_byte());
                        buf.put_u8(p.len());
                        buf.put_u8(vrp.max_len);
                        buf.put_u8(0);
                        buf.put_u32(p.bits());
                        buf.put_u32(vrp.asn.into_u32());
                    }
                    Prefix::V6(p) => {
                        buf.put_u32(32);
                        buf.put_u8(flags.to_byte());
                        buf.put_u8(p.len());
                        buf.put_u8(vrp.max_len);
                        buf.put_u8(0);
                        buf.put_u128(p.bits());
                        buf.put_u32(vrp.asn.into_u32());
                    }
                }
            }
            Pdu::EndOfData {
                session_id,
                serial,
                timing,
            } => {
                buf.put_u16(*session_id);
                buf.put_u32(24);
                buf.put_u32(*serial);
                buf.put_u32(timing.refresh);
                buf.put_u32(timing.retry);
                buf.put_u32(timing.expire);
            }
            Pdu::ErrorReport { code, pdu, text } => {
                buf.put_u16(code.to_u16());
                let len = HEADER_LEN + 4 + pdu.len() + 4 + text.len();
                buf.put_u32(len as u32);
                buf.put_u32(pdu.len() as u32);
                buf.put_slice(pdu);
                buf.put_u32(text.len() as u32);
                buf.put_slice(text.as_bytes());
            }
        }
        debug_assert_eq!(
            u32::from_be_bytes(buf[start + 4..start + 8].try_into().expect("4 bytes")) as usize,
            buf.len() - start,
            "declared length must equal encoded length"
        );
    }

    /// The old allocating decoder. Laxer than the wire layer: it ignores
    /// the session-id slot of Reset Query / Cache Reset, skips the
    /// Prefix reserved byte unchecked, accepts nested Error Reports, and
    /// decodes text lossily — the exact gaps `tests/corpus/` pins the
    /// strict codec against.
    pub fn decode_versioned(data: &[u8]) -> Result<Option<(Pdu, usize, u8)>, PduError> {
        if data.len() < HEADER_LEN {
            return Ok(None);
        }
        let version = data[0];
        if version != PROTOCOL_V0 && version != PROTOCOL_V1 {
            return Err(PduError::BadVersion(version));
        }
        let type_code = data[1];
        let session_or_code = u16::from_be_bytes([data[2], data[3]]);
        let length = u32::from_be_bytes(data[4..8].try_into().expect("4 bytes")) as usize;
        if !(HEADER_LEN..=65_536).contains(&length) {
            return Err(PduError::BadLength { type_code, length });
        }
        if data.len() < length {
            return Ok(None);
        }
        let mut body = &data[HEADER_LEN..length];
        let expect_len = |want: usize| {
            if length == want {
                Ok(())
            } else {
                Err(PduError::BadLength { type_code, length })
            }
        };
        let pdu = match type_code {
            0 | 1 => {
                expect_len(12)?;
                let serial = body.get_u32();
                if type_code == 0 {
                    Pdu::SerialNotify {
                        session_id: session_or_code,
                        serial,
                    }
                } else {
                    Pdu::SerialQuery {
                        session_id: session_or_code,
                        serial,
                    }
                }
            }
            2 => {
                expect_len(8)?;
                Pdu::ResetQuery
            }
            3 => {
                expect_len(8)?;
                Pdu::CacheResponse {
                    session_id: session_or_code,
                }
            }
            4 => {
                expect_len(20)?;
                let flags = Flags::from_byte(body.get_u8())?;
                let len = body.get_u8();
                let max_len = body.get_u8();
                let _zero = body.get_u8();
                let bits = body.get_u32();
                let asn = Asn(body.get_u32());
                let prefix = Prefix4::new(bits, len).map_err(|_| PduError::BadPrefix)?;
                let vrp = checked_vrp(Prefix::V4(prefix), max_len, asn)?;
                Pdu::Prefix { flags, vrp }
            }
            6 => {
                expect_len(32)?;
                let flags = Flags::from_byte(body.get_u8())?;
                let len = body.get_u8();
                let max_len = body.get_u8();
                let _zero = body.get_u8();
                let bits = body.get_u128();
                let asn = Asn(body.get_u32());
                let prefix = Prefix6::new(bits, len).map_err(|_| PduError::BadPrefix)?;
                let vrp = checked_vrp(Prefix::V6(prefix), max_len, asn)?;
                Pdu::Prefix { flags, vrp }
            }
            7 => {
                let serial;
                let timing;
                if version == PROTOCOL_V0 {
                    expect_len(12)?;
                    serial = body.get_u32();
                    timing = Timing::default();
                } else {
                    expect_len(24)?;
                    serial = body.get_u32();
                    timing = Timing {
                        refresh: body.get_u32(),
                        retry: body.get_u32(),
                        expire: body.get_u32(),
                    };
                }
                Pdu::EndOfData {
                    session_id: session_or_code,
                    serial,
                    timing,
                }
            }
            8 => {
                expect_len(8)?;
                Pdu::CacheReset
            }
            10 => {
                let code = ErrorCode::from_u16(session_or_code)?;
                if body.remaining() < 4 {
                    return Err(PduError::BadLength { type_code, length });
                }
                let pdu_len = body.get_u32() as usize;
                if body.remaining() < pdu_len + 4 {
                    return Err(PduError::BadLength { type_code, length });
                }
                let inner = Bytes::copy_from_slice(&body[..pdu_len]);
                body.advance(pdu_len);
                let text_len = body.get_u32() as usize;
                if body.remaining() != text_len {
                    return Err(PduError::BadLength { type_code, length });
                }
                let text = String::from_utf8_lossy(&body[..text_len]).into_owned();
                Pdu::ErrorReport {
                    code,
                    pdu: inner,
                    text,
                }
            }
            other => return Err(PduError::BadType(other)),
        };
        Ok(Some((pdu, length, version)))
    }

    fn checked_vrp(prefix: Prefix, max_len: u8, asn: Asn) -> Result<Vrp, PduError> {
        if max_len < prefix.len() || max_len > prefix.max_len() {
            return Err(PduError::BadMaxLength {
                len: prefix.len(),
                max_len,
            });
        }
        Ok(Vrp::new(prefix, max_len, asn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn round_trip(pdu: Pdu) {
        let bytes = pdu.to_bytes();
        let (back, used) = Pdu::decode(&bytes).unwrap().unwrap();
        assert_eq!(back, pdu);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn round_trip_all_types() {
        round_trip(Pdu::SerialNotify {
            session_id: 42,
            serial: 7,
        });
        round_trip(Pdu::SerialQuery {
            session_id: 42,
            serial: u32::MAX,
        });
        round_trip(Pdu::ResetQuery);
        round_trip(Pdu::CacheResponse { session_id: 9 });
        round_trip(Pdu::Prefix {
            flags: Flags::Announce,
            vrp: vrp("168.122.0.0/16-24 => AS111"),
        });
        round_trip(Pdu::Prefix {
            flags: Flags::Withdraw,
            vrp: vrp("2001:db8::/32-48 => AS65000"),
        });
        round_trip(Pdu::EndOfData {
            session_id: 42,
            serial: 3,
            timing: Timing::default(),
        });
        round_trip(Pdu::CacheReset);
        round_trip(Pdu::ErrorReport {
            code: ErrorCode::CorruptData,
            pdu: Pdu::ResetQuery.to_bytes(),
            text: "bad things".into(),
        });
        round_trip(Pdu::ErrorReport {
            code: ErrorCode::NoDataAvailable,
            pdu: Bytes::new(),
            text: String::new(),
        });
    }

    #[test]
    fn v4_wire_layout_matches_rfc() {
        let pdu = Pdu::Prefix {
            flags: Flags::Announce,
            vrp: vrp("10.0.0.0/8-24 => AS65000"),
        };
        let b = pdu.to_bytes();
        assert_eq!(b.len(), 20);
        assert_eq!(b[0], PROTOCOL_V1);
        assert_eq!(b[1], 4); // IPv4 prefix PDU
        assert_eq!(&b[4..8], &[0, 0, 0, 20]); // length
        assert_eq!(b[8], 1); // announce
        assert_eq!(b[9], 8); // prefix length
        assert_eq!(b[10], 24); // max length
        assert_eq!(&b[12..16], &[10, 0, 0, 0]); // prefix bytes
        assert_eq!(&b[16..20], &65000u32.to_be_bytes());
    }

    #[test]
    fn incomplete_input_returns_none() {
        let pdu = Pdu::EndOfData {
            session_id: 1,
            serial: 2,
            timing: Timing::default(),
        };
        let bytes = pdu.to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(Pdu::decode(&bytes[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn decode_consumes_exactly_one_pdu() {
        let mut buf = BytesMut::new();
        Pdu::ResetQuery.encode(&mut buf);
        Pdu::CacheReset.encode(&mut buf);
        let (first, used) = Pdu::decode(&buf).unwrap().unwrap();
        assert_eq!(first, Pdu::ResetQuery);
        let (second, used2) = Pdu::decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(second, Pdu::CacheReset);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = Pdu::ResetQuery.to_bytes().to_vec();
        bytes[0] = 9;
        assert_eq!(Pdu::decode(&bytes), Err(PduError::BadVersion(9)));
        assert_eq!(
            PduError::BadVersion(9).error_code(),
            ErrorCode::UnsupportedVersion
        );
    }

    #[test]
    fn rejects_bad_type() {
        let mut bytes = Pdu::ResetQuery.to_bytes().to_vec();
        bytes[1] = 99;
        assert_eq!(Pdu::decode(&bytes), Err(PduError::BadType(99)));
    }

    #[test]
    fn rejects_bad_lengths() {
        // Declared length below the header size.
        let raw = [PROTOCOL_V1, 2, 0, 0, 0, 0, 0, 4];
        assert!(matches!(Pdu::decode(&raw), Err(PduError::BadLength { .. })));
        // Reset query with trailing junk inside the declared length.
        let raw = [PROTOCOL_V1, 2, 0, 0, 0, 0, 0, 12, 0, 0, 0, 0];
        assert!(matches!(
            Pdu::decode(&raw),
            Err(PduError::BadLength { type_code: 2, .. })
        ));
    }

    #[test]
    fn rejects_bad_flags_prefix_and_maxlen() {
        let good = Pdu::Prefix {
            flags: Flags::Announce,
            vrp: vrp("10.0.0.0/8-24 => AS65000"),
        }
        .to_bytes()
        .to_vec();

        let mut bad_flags = good.clone();
        bad_flags[8] = 7;
        assert_eq!(Pdu::decode(&bad_flags), Err(PduError::BadFlags(7)));

        let mut bad_maxlen = good.clone();
        bad_maxlen[10] = 4; // below prefix length 8
        assert!(matches!(
            Pdu::decode(&bad_maxlen),
            Err(PduError::BadMaxLength { len: 8, max_len: 4 })
        ));

        let mut bad_prefix = good.clone();
        bad_prefix[13] = 1; // host bits set beyond /8
        assert_eq!(Pdu::decode(&bad_prefix), Err(PduError::BadPrefix));

        let mut bad_len = good;
        bad_len[9] = 33; // prefix length beyond IPv4
        assert_eq!(Pdu::decode(&bad_len), Err(PduError::BadPrefix));
    }

    #[test]
    fn error_report_with_truncated_inner_rejected() {
        // Error report declaring a longer encapsulated PDU than present.
        let mut buf = BytesMut::new();
        buf.put_u8(PROTOCOL_V1);
        buf.put_u8(10);
        buf.put_u16(0); // CorruptData
        buf.put_u32(16);
        buf.put_u32(100); // inner length lies
        buf.put_u32(0);
        assert!(matches!(
            Pdu::decode(&buf),
            Err(PduError::BadLength { type_code: 10, .. })
        ));
    }

    #[test]
    fn type_codes() {
        assert_eq!(Pdu::ResetQuery.type_code(), 2);
        assert_eq!(
            Pdu::Prefix {
                flags: Flags::Announce,
                vrp: vrp("10.0.0.0/8 => AS1")
            }
            .type_code(),
            4
        );
        assert_eq!(
            Pdu::Prefix {
                flags: Flags::Announce,
                vrp: vrp("::/0 => AS1")
            }
            .type_code(),
            6
        );
    }

    #[test]
    fn wire_len_matches_encoded_size() {
        for pdu in [
            Pdu::ResetQuery,
            Pdu::SerialNotify {
                session_id: 1,
                serial: 2,
            },
            Pdu::Prefix {
                flags: Flags::Announce,
                vrp: vrp("2001:db8::/32-48 => AS65000"),
            },
            Pdu::EndOfData {
                session_id: 1,
                serial: 2,
                timing: Timing::default(),
            },
            Pdu::ErrorReport {
                code: ErrorCode::CorruptData,
                pdu: Pdu::CacheReset.to_bytes(),
                text: "ß".into(),
            },
        ] {
            for version in [PROTOCOL_V0, PROTOCOL_V1] {
                let mut buf = BytesMut::new();
                pdu.encode_versioned(version, &mut buf);
                assert_eq!(buf.len(), pdu.wire_len(version), "{pdu:?} v{version}");
            }
        }
    }
}

#[cfg(test)]
mod v0_tests {
    use super::*;

    #[test]
    fn v0_end_of_data_is_12_bytes_without_timing() {
        let pdu = Pdu::EndOfData {
            session_id: 3,
            serial: 9,
            timing: Timing::default(),
        };
        let mut buf = BytesMut::new();
        pdu.encode_versioned(PROTOCOL_V0, &mut buf);
        assert_eq!(buf.len(), 12);
        assert_eq!(buf[0], PROTOCOL_V0);
        let (back, used, version) = Pdu::decode_versioned(&buf).unwrap().unwrap();
        assert_eq!(version, PROTOCOL_V0);
        assert_eq!(used, 12);
        // Timing comes back defaulted.
        assert_eq!(back, pdu);
    }

    #[test]
    fn v0_round_trip_other_types() {
        for pdu in [
            Pdu::ResetQuery,
            Pdu::CacheReset,
            Pdu::SerialQuery {
                session_id: 1,
                serial: 2,
            },
            Pdu::Prefix {
                flags: Flags::Announce,
                vrp: "10.0.0.0/8-24 => AS1".parse::<rpki_roa::Vrp>().unwrap(),
            },
        ] {
            let mut buf = BytesMut::new();
            pdu.encode_versioned(PROTOCOL_V0, &mut buf);
            assert_eq!(buf[0], PROTOCOL_V0);
            let (back, _, version) = Pdu::decode_versioned(&buf).unwrap().unwrap();
            assert_eq!(version, PROTOCOL_V0);
            assert_eq!(back, pdu);
        }
    }

    #[test]
    fn strict_v1_decode_rejects_v0_frames() {
        let mut buf = BytesMut::new();
        Pdu::ResetQuery.encode_versioned(PROTOCOL_V0, &mut buf);
        assert_eq!(Pdu::decode(&buf), Err(PduError::BadVersion(0)));
    }

    #[test]
    fn v1_end_of_data_must_not_be_12_bytes() {
        // A v1 frame with the v0 End of Data length is corrupt.
        let raw = [PROTOCOL_V1, 7, 0, 3, 0, 0, 0, 12, 0, 0, 0, 9];
        assert!(matches!(
            Pdu::decode_versioned(&raw),
            Err(PduError::BadLength { type_code: 7, .. })
        ));
    }

    #[test]
    fn v0_end_of_data_must_not_carry_timing() {
        let raw = [
            PROTOCOL_V0,
            7,
            0,
            3,
            0,
            0,
            0,
            24,
            0,
            0,
            0,
            9,
            0,
            0,
            14,
            16,
            0,
            0,
            2,
            88,
            0,
            0,
            28,
            32,
        ];
        assert!(matches!(
            Pdu::decode_versioned(&raw),
            Err(PduError::BadLength { type_code: 7, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "unknown protocol version")]
    fn encode_rejects_unknown_version() {
        let mut buf = BytesMut::new();
        Pdu::ResetQuery.encode_versioned(9, &mut buf);
    }
}
