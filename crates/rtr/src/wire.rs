//! Zero-copy wire layer for the rpki-rtr protocol (RFC 6810 / RFC 8210).
//!
//! This module is the single codec for every PDU that crosses a
//! transport: the cursor types, the borrowed PDU view, the strict
//! decoder, the versioned encoder, the error taxonomy, and the
//! protocol-version negotiation state machine. Everything else in the
//! crate ([`Pdu`](crate::pdu::Pdu) included) is a consumer.
//!
//! # Wire-format contract
//!
//! Every PDU starts with the common 8-byte header:
//!
//! ```text
//! 0          8          16         24        31
//! +----------+----------+---------------------+
//! | version  | PDU type | session id / zero   |
//! +----------+----------+---------------------+
//! |                length                      |
//! +--------------------------------------------+
//! ```
//!
//! `length` covers the whole PDU including the header and must lie in
//! `8..=65536`. Decoding is **strict and canonical**: a frame is either
//! rejected with a classified [`PduError`], reported incomplete
//! (`Ok(None)`, stream still open), or accepted — and every accepted
//! frame re-encodes **bit-identically** at its own version. There is no
//! third state: no field is silently normalized, truncated, or defaulted
//! (the one documented exception: a v0 End of Data carries no timing on
//! the wire, so its decoded [`Timing`] is RFC 8210's defaults — which is
//! exactly what a v0 re-encode drops again).
//!
//! Strictness the legacy codec lacked (each gap has a regression frame in
//! `tests/corpus/`):
//!
//! * the session-id field of Reset Query, Cache Reset, and the IPv4/IPv6
//!   Prefix PDUs must be zero;
//! * the reserved byte inside IPv4/IPv6 Prefix bodies must be zero;
//! * Error Report length arithmetic is checked exactly
//!   (`8 + 4 + pdu_len + 4 + text_len == length`, overflow-safe);
//! * Error Report text must be valid UTF-8 (borrowed, never lossy);
//! * an Error Report must not encapsulate another Error Report
//!   (RFC 8210 §5.10's "MUST NOT be sent for an Error Report PDU");
//! * the Router Key PDU (type 9, v1-only) is rejected as unsupported on
//!   sessions of either version — this stack does not implement it.
//!
//! # Cursor invariants
//!
//! [`ReadCursor`] and [`WriteCursor`] are plain positions over borrowed
//! buffers, in the style of IronRDP's `ireadcursor`/`writecursor`:
//!
//! * every `read_*`/`write_*` advances by exactly the accessor's size;
//! * accessors do **not** bounds-check individually — callers guard a
//!   whole fixed part once with [`ensure_size!`] (checked slice indexing
//!   still makes an unguarded overrun a panic, never unsoundness, and
//!   the fuzz suite proves the decoder never reaches one);
//! * decoding a frame never reads past `length`, and encoding never
//!   writes past the destination slice handed to the cursor.
//!
//! # Error taxonomy
//!
//! | [`PduError`] variant    | RFC error code              | [`ErrorClass`] |
//! |-------------------------|-----------------------------|----------------|
//! | `BadVersion`            | 4 Unsupported Version       | Recoverable    |
//! | `VersionMismatch`       | 8 Unexpected Version        | Fatal          |
//! | `BadType`               | 5 Unsupported PDU Type      | Fatal          |
//! | `BadLength`             | 0 Corrupt Data              | Fatal          |
//! | `NonZeroReserved`       | 0 Corrupt Data              | Fatal          |
//! | `BadFlags`              | 0 Corrupt Data              | Fatal          |
//! | `BadPrefix`             | 0 Corrupt Data              | Fatal          |
//! | `BadMaxLength`          | 0 Corrupt Data              | Fatal          |
//! | `BadErrorCode`          | 0 Corrupt Data              | Fatal          |
//! | `BadText`               | 0 Corrupt Data              | Fatal          |
//! | `NestedErrorReport`     | 0 Corrupt Data              | Fatal          |
//!
//! **Recoverable** means recoverable *per the RFCs' version negotiation*:
//! the current exchange still ends with an Error Report, but the peer may
//! retry the session at a version both sides support (RFC 8210 §7 / RFC
//! 6810 §7). **Fatal** means the session is corrupt and must be torn down
//! with no retry at any version. [`CacheServer::handle_wire`]
//! (crate::cache::CacheServer::handle_wire) enforces exactly this split,
//! and `tests/fuzz_props.rs` cross-checks the classification against the
//! teardown behaviour on thousands of mutated frames.
//!
//! # Version negotiation
//!
//! [`Negotiation`] is the per-session state machine:
//!
//! ```text
//!            accept(v), v <= max             accept(w), w == v
//! Unpinned ───────────────────────> Pinned(v) ────────────────> Pinned(v)
//!    │                                  │
//!    │ accept(v), v > max               │ accept(w), w != v
//!    ▼                                  ▼
//!  Err(BadVersion)  [recoverable]    Err(VersionMismatch)  [fatal]
//! ```
//!
//! The first accepted frame pins the session's version (a v1-capable
//! cache downgrades to v0 when the router opens with a v0 query, per RFC
//! 8210 §7); any later frame at a different version is the fatal
//! Unexpected-Version error (code 8). A peer speaking a version above
//! the session's maximum gets the recoverable Unsupported-Version error
//! (code 4) and may retry lower.

use std::fmt;

use rpki_prefix::{Prefix, Prefix4, Prefix6};
use rpki_roa::{Asn, Vrp};

use crate::pdu::{ErrorCode, Flags, Pdu, Timing, PROTOCOL_V0, PROTOCOL_V1};

/// The common header length shared by every PDU.
pub const HEADER_LEN: usize = 8;

/// The largest `length` field this stack accepts (and therefore the
/// largest frame it will ever produce): 64 KiB, comfortably above the
/// biggest legitimate PDU (a maximal Error Report) and small enough to
/// bound any per-session buffer.
pub const MAX_PDU_LEN: usize = 65_536;

/// Guards one fixed-size read/write region on a cursor: the whole fixed
/// part is checked **once**, after which the individual accessors may
/// advance unchecked (the cursor invariant above). Expands to an early
/// `return` with a [`PduError::BadLength`] carrying the offending type
/// and declared length.
macro_rules! ensure_size {
    (in: $cursor:expr, size: $size:expr, type_code: $tc:expr, length: $len:expr) => {
        if $cursor.remaining() != $size {
            return Err(PduError::BadLength {
                type_code: $tc,
                length: $len,
            });
        }
    };
    (min: $cursor:expr, size: $size:expr, type_code: $tc:expr, length: $len:expr) => {
        if $cursor.remaining() < $size {
            return Err(PduError::BadLength {
                type_code: $tc,
                length: $len,
            });
        }
    };
}

/// A read position over a borrowed buffer. See the module docs for the
/// cursor invariants.
#[derive(Debug, Clone, Copy)]
pub struct ReadCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ReadCursor<'a> {
    /// A cursor at the start of `buf`.
    #[inline]
    pub fn new(buf: &'a [u8]) -> ReadCursor<'a> {
        ReadCursor { buf, pos: 0 }
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once the cursor has consumed the whole buffer.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The current read offset from the start of the buffer.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Reads a big-endian `u16`.
    #[inline]
    pub fn read_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.read_array())
    }

    /// Reads a big-endian `u32`.
    #[inline]
    pub fn read_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.read_array())
    }

    /// Reads a big-endian `u128`.
    #[inline]
    pub fn read_u128(&mut self) -> u128 {
        u128::from_be_bytes(self.read_array())
    }

    /// Borrows the next `n` bytes without copying.
    #[inline]
    pub fn read_slice(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    #[inline]
    fn read_array<const N: usize>(&mut self) -> [u8; N] {
        let a: [u8; N] = self.buf[self.pos..self.pos + N]
            .try_into()
            .expect("slice is exactly N bytes");
        self.pos += N;
        a
    }
}

/// A write position over a borrowed mutable buffer. See the module docs
/// for the cursor invariants.
#[derive(Debug)]
pub struct WriteCursor<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> WriteCursor<'a> {
    /// A cursor at the start of `buf`.
    #[inline]
    pub fn new(buf: &'a mut [u8]) -> WriteCursor<'a> {
        WriteCursor { buf, pos: 0 }
    }

    /// Bytes left to write.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The current write offset from the start of the buffer.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    /// Writes a big-endian `u16`.
    #[inline]
    pub fn write_u16(&mut self, v: u16) {
        self.write_array(v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_array(v.to_be_bytes());
    }

    /// Writes a big-endian `u128`.
    #[inline]
    pub fn write_u128(&mut self, v: u128) {
        self.write_array(v.to_be_bytes());
    }

    /// Writes a slice.
    #[inline]
    pub fn write_slice(&mut self, s: &[u8]) {
        self.buf[self.pos..self.pos + s.len()].copy_from_slice(s);
        self.pos += s.len();
    }

    #[inline]
    fn write_array<const N: usize>(&mut self, a: [u8; N]) {
        self.buf[self.pos..self.pos + N].copy_from_slice(&a);
        self.pos += N;
    }
}

/// How a [`PduError`] relates to the life of the session. See the module
/// docs for the full taxonomy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The exchange failed, but only because of the protocol version:
    /// the peer may retry the session at a version both sides support
    /// (RFC 8210 §7 negotiation).
    Recoverable,
    /// The stream is corrupt or violates the negotiated session; the
    /// session must be torn down and no retry can succeed.
    Fatal,
}

/// Decoding/negotiation errors. Each maps onto the RFC 8210 error code a
/// receiver reports (via Error Report) before closing — see
/// [`PduError::error_code`] — and a session disposition — see
/// [`PduError::class`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PduError {
    /// Version byte above every version this stack speaks.
    BadVersion(u8),
    /// A frame at a different version than the session negotiated.
    VersionMismatch {
        /// The version the session is pinned to.
        negotiated: u8,
        /// The version the offending frame carried.
        got: u8,
    },
    /// Unknown (or unimplemented, e.g. Router Key) PDU type byte.
    BadType(u8),
    /// Declared length inconsistent with the PDU type.
    BadLength {
        /// The PDU type.
        type_code: u8,
        /// The declared length.
        length: usize,
    },
    /// A field the RFC requires to be zero was not (the session-id slot
    /// of Reset Query / Cache Reset, or the reserved byte in a Prefix
    /// body).
    NonZeroReserved {
        /// The PDU type.
        type_code: u8,
        /// Byte offset of the offending field from the frame start.
        offset: usize,
    },
    /// Flags byte is neither announce nor withdraw.
    BadFlags(u8),
    /// Prefix bits set beyond the prefix length, or length out of range.
    BadPrefix,
    /// maxLength outside `len..=family max`.
    BadMaxLength {
        /// The prefix length.
        len: u8,
        /// The offending maxLength.
        max_len: u8,
    },
    /// Unknown error code in an Error Report.
    BadErrorCode(u16),
    /// Error Report diagnostic text is not valid UTF-8.
    BadText,
    /// An Error Report encapsulating another Error Report (forbidden by
    /// RFC 8210 §5.10).
    NestedErrorReport,
}

impl fmt::Display for PduError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PduError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            PduError::VersionMismatch { negotiated, got } => {
                write!(f, "version {got} on a version-{negotiated} session")
            }
            PduError::BadType(t) => write!(f, "unsupported PDU type {t}"),
            PduError::BadLength { type_code, length } => {
                write!(f, "bad length {length} for PDU type {type_code}")
            }
            PduError::NonZeroReserved { type_code, offset } => {
                write!(
                    f,
                    "non-zero reserved field at offset {offset} in PDU type {type_code}"
                )
            }
            PduError::BadFlags(b) => write!(f, "bad flags byte {b:#x}"),
            PduError::BadPrefix => write!(f, "malformed prefix field"),
            PduError::BadMaxLength { len, max_len } => {
                write!(f, "maxLength {max_len} invalid for /{len}")
            }
            PduError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            PduError::BadText => write!(f, "error report text is not valid UTF-8"),
            PduError::NestedErrorReport => {
                write!(f, "error report must not encapsulate an error report")
            }
        }
    }
}

impl std::error::Error for PduError {}

impl PduError {
    /// The RFC 8210 error code a receiver should report for this error.
    pub fn error_code(&self) -> ErrorCode {
        match self {
            PduError::BadVersion(_) => ErrorCode::UnsupportedVersion,
            PduError::VersionMismatch { .. } => ErrorCode::UnexpectedVersion,
            PduError::BadType(_) => ErrorCode::UnsupportedPduType,
            _ => ErrorCode::CorruptData,
        }
    }

    /// The session disposition: see the taxonomy table in the module
    /// docs. Only [`PduError::BadVersion`] is recoverable (by retrying
    /// the session at a lower version); everything else is fatal.
    pub fn class(&self) -> ErrorClass {
        match self {
            PduError::BadVersion(_) => ErrorClass::Recoverable,
            _ => ErrorClass::Fatal,
        }
    }
}

/// One PDU decoded **in place**: scalar fields by value, the Error
/// Report payloads as borrowed slices straight out of the transport
/// buffer. Convert with [`PduRef::to_owned`] only when the PDU must
/// outlive the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PduRef<'a> {
    /// Type 0: the cache tells routers new data is available.
    SerialNotify {
        /// The cache session.
        session_id: u16,
        /// The cache's latest serial.
        serial: u32,
    },
    /// Type 1: a router asks for deltas since `serial`.
    SerialQuery {
        /// The session the router believes it is in.
        session_id: u16,
        /// The router's current serial.
        serial: u32,
    },
    /// Type 2: a router asks for the complete data set.
    ResetQuery,
    /// Type 3: the cache starts answering a query.
    CacheResponse {
        /// The cache session.
        session_id: u16,
    },
    /// Type 4/6: one VRP, announced or withdrawn.
    Prefix {
        /// Announce or withdraw.
        flags: Flags,
        /// The payload tuple.
        vrp: Vrp,
    },
    /// Type 7: end of a response, carrying the new serial.
    EndOfData {
        /// The cache session.
        session_id: u16,
        /// The serial the router is now synchronized to.
        serial: u32,
        /// v1 timing parameters (RFC 8210 defaults on a v0 wire).
        timing: Timing,
    },
    /// Type 8: the cache cannot serve deltas; the router must reset.
    CacheReset,
    /// Type 10: a protocol error, ending the session.
    ErrorReport {
        /// The RFC 8210 error code.
        code: ErrorCode,
        /// The offending PDU's raw bytes, borrowed from the frame.
        pdu: &'a [u8],
        /// Diagnostic text, borrowed from the frame (strict UTF-8).
        text: &'a str,
    },
}

/// One successfully decoded frame: the borrowed PDU, the protocol
/// version its header carried, and the number of bytes it consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The decoded PDU, borrowing from the input buffer.
    pub pdu: PduRef<'a>,
    /// The version byte of the frame header.
    pub version: u8,
    /// Bytes consumed from the front of the input (== the `length`
    /// field).
    pub len: usize,
}

impl PduRef<'_> {
    /// The PDU type byte.
    pub fn type_code(&self) -> u8 {
        match self {
            PduRef::SerialNotify { .. } => 0,
            PduRef::SerialQuery { .. } => 1,
            PduRef::ResetQuery => 2,
            PduRef::CacheResponse { .. } => 3,
            PduRef::Prefix { vrp, .. } => {
                if vrp.prefix.is_v4() {
                    4
                } else {
                    6
                }
            }
            PduRef::EndOfData { .. } => 7,
            PduRef::CacheReset => 8,
            PduRef::ErrorReport { .. } => 10,
        }
    }

    /// Copies the borrowed payloads into an owned [`Pdu`].
    pub fn to_owned(&self) -> Pdu {
        match *self {
            PduRef::SerialNotify { session_id, serial } => Pdu::SerialNotify { session_id, serial },
            PduRef::SerialQuery { session_id, serial } => Pdu::SerialQuery { session_id, serial },
            PduRef::ResetQuery => Pdu::ResetQuery,
            PduRef::CacheResponse { session_id } => Pdu::CacheResponse { session_id },
            PduRef::Prefix { flags, vrp } => Pdu::Prefix { flags, vrp },
            PduRef::EndOfData {
                session_id,
                serial,
                timing,
            } => Pdu::EndOfData {
                session_id,
                serial,
                timing,
            },
            PduRef::CacheReset => Pdu::CacheReset,
            PduRef::ErrorReport { code, pdu, text } => Pdu::ErrorReport {
                code,
                pdu: bytes::Bytes::copy_from_slice(pdu),
                text: text.to_owned(),
            },
        }
    }

    /// The exact number of bytes [`PduRef::write`] emits at `version`
    /// (header included).
    pub fn wire_len(&self, version: u8) -> usize {
        match self {
            PduRef::SerialNotify { .. } | PduRef::SerialQuery { .. } => 12,
            PduRef::ResetQuery | PduRef::CacheReset | PduRef::CacheResponse { .. } => 8,
            PduRef::Prefix { vrp, .. } => {
                if vrp.prefix.is_v4() {
                    20
                } else {
                    32
                }
            }
            PduRef::EndOfData { .. } => {
                if version == PROTOCOL_V0 {
                    12
                } else {
                    24
                }
            }
            PduRef::ErrorReport { pdu, text, .. } => HEADER_LEN + 4 + pdu.len() + 4 + text.len(),
        }
    }

    /// Encodes the PDU at `version` into `dst`, which must hold exactly
    /// [`PduRef::wire_len`] remaining bytes.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions or an undersized destination — both
    /// are caller bugs, not wire conditions (the encoder only ever runs
    /// on PDUs this stack built or already validated).
    pub fn write(&self, version: u8, dst: &mut WriteCursor<'_>) {
        assert!(
            version == PROTOCOL_V0 || version == PROTOCOL_V1,
            "unknown protocol version {version}"
        );
        let len = self.wire_len(version) as u32;
        let start = dst.pos();
        dst.write_u8(version);
        dst.write_u8(self.type_code());
        match *self {
            PduRef::SerialNotify { session_id, serial }
            | PduRef::SerialQuery { session_id, serial } => {
                dst.write_u16(session_id);
                dst.write_u32(len);
                dst.write_u32(serial);
            }
            PduRef::ResetQuery | PduRef::CacheReset => {
                dst.write_u16(0);
                dst.write_u32(len);
            }
            PduRef::CacheResponse { session_id } => {
                dst.write_u16(session_id);
                dst.write_u32(len);
            }
            PduRef::Prefix { flags, vrp } => {
                dst.write_u16(0);
                dst.write_u32(len);
                dst.write_u8(flags.to_byte());
                dst.write_u8(vrp.prefix.len());
                dst.write_u8(vrp.max_len);
                dst.write_u8(0);
                match vrp.prefix {
                    Prefix::V4(p) => dst.write_u32(p.bits()),
                    Prefix::V6(p) => dst.write_u128(p.bits()),
                }
                dst.write_u32(vrp.asn.into_u32());
            }
            PduRef::EndOfData {
                session_id,
                serial,
                timing,
            } => {
                dst.write_u16(session_id);
                dst.write_u32(len);
                dst.write_u32(serial);
                if version != PROTOCOL_V0 {
                    dst.write_u32(timing.refresh);
                    dst.write_u32(timing.retry);
                    dst.write_u32(timing.expire);
                }
            }
            PduRef::ErrorReport { code, pdu, text } => {
                debug_assert!(
                    pdu.len() < 2 || pdu[1] != 10,
                    "must not encapsulate an error report"
                );
                dst.write_u16(code.to_u16());
                dst.write_u32(len);
                dst.write_u32(pdu.len() as u32);
                dst.write_slice(pdu);
                dst.write_u32(text.len() as u32);
                dst.write_slice(text.as_bytes());
            }
        }
        debug_assert_eq!(
            dst.pos() - start,
            len as usize,
            "declared length must equal encoded length"
        );
    }

    /// Appends the encoded frame to a growable buffer.
    pub fn encode_into(&self, version: u8, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + self.wire_len(version), 0);
        self.write(version, &mut WriteCursor::new(&mut out[start..]));
    }
}

/// Attempts to decode one frame from the front of `data`, zero-copy.
///
/// Returns `Ok(None)` when more bytes are needed (the stream is still
/// open), `Ok(Some(frame))` on success, and a classified [`PduError`]
/// when the bytes can never become a valid frame. Accepts both protocol
/// versions; pinning a session to one version is the caller's job via
/// [`Negotiation`].
pub fn decode_frame(data: &[u8]) -> Result<Option<Frame<'_>>, PduError> {
    if data.len() < HEADER_LEN {
        return Ok(None);
    }
    let mut hdr = ReadCursor::new(data);
    let version = hdr.read_u8();
    if version > PROTOCOL_V1 {
        return Err(PduError::BadVersion(version));
    }
    let type_code = hdr.read_u8();
    let session_or_code = hdr.read_u16();
    let length = hdr.read_u32() as usize;
    if !(HEADER_LEN..=MAX_PDU_LEN).contains(&length) {
        return Err(PduError::BadLength { type_code, length });
    }
    if data.len() < length {
        return Ok(None);
    }
    let mut body = ReadCursor::new(&data[HEADER_LEN..length]);
    let pdu = match type_code {
        0 | 1 => {
            ensure_size!(in: body, size: 4, type_code: type_code, length: length);
            let serial = body.read_u32();
            if type_code == 0 {
                PduRef::SerialNotify {
                    session_id: session_or_code,
                    serial,
                }
            } else {
                PduRef::SerialQuery {
                    session_id: session_or_code,
                    serial,
                }
            }
        }
        2 | 8 => {
            ensure_size!(in: body, size: 0, type_code: type_code, length: length);
            if session_or_code != 0 {
                return Err(PduError::NonZeroReserved {
                    type_code,
                    offset: 2,
                });
            }
            if type_code == 2 {
                PduRef::ResetQuery
            } else {
                PduRef::CacheReset
            }
        }
        3 => {
            ensure_size!(in: body, size: 0, type_code: type_code, length: length);
            PduRef::CacheResponse {
                session_id: session_or_code,
            }
        }
        4 | 6 => {
            // Prefix PDUs carry zero in the header's session-id slot
            // (RFC 8210 §5.6/§5.7) — strict decode enforces it so every
            // accepted frame re-encodes canonically.
            if session_or_code != 0 {
                return Err(PduError::NonZeroReserved {
                    type_code,
                    offset: 2,
                });
            }
            let fixed = if type_code == 4 { 12 } else { 24 };
            ensure_size!(in: body, size: fixed, type_code: type_code, length: length);
            let flags = Flags::from_byte(body.read_u8())?;
            let len = body.read_u8();
            let max_len = body.read_u8();
            if body.read_u8() != 0 {
                return Err(PduError::NonZeroReserved {
                    type_code,
                    offset: 11,
                });
            }
            let prefix = if type_code == 4 {
                let bits = body.read_u32();
                Prefix::V4(Prefix4::new(bits, len).map_err(|_| PduError::BadPrefix)?)
            } else {
                let bits = body.read_u128();
                Prefix::V6(Prefix6::new(bits, len).map_err(|_| PduError::BadPrefix)?)
            };
            let asn = Asn(body.read_u32());
            if max_len < prefix.len() || max_len > prefix.max_len() {
                return Err(PduError::BadMaxLength {
                    len: prefix.len(),
                    max_len,
                });
            }
            PduRef::Prefix {
                flags,
                vrp: Vrp::new(prefix, max_len, asn),
            }
        }
        7 => {
            let (serial, timing) = if version == PROTOCOL_V0 {
                ensure_size!(in: body, size: 4, type_code: type_code, length: length);
                (body.read_u32(), Timing::default())
            } else {
                ensure_size!(in: body, size: 16, type_code: type_code, length: length);
                let serial = body.read_u32();
                let timing = Timing {
                    refresh: body.read_u32(),
                    retry: body.read_u32(),
                    expire: body.read_u32(),
                };
                (serial, timing)
            };
            PduRef::EndOfData {
                session_id: session_or_code,
                serial,
                timing,
            }
        }
        10 => {
            let code = ErrorCode::from_u16(session_or_code)?;
            ensure_size!(min: body, size: 4, type_code: type_code, length: length);
            let pdu_len = body.read_u32() as usize;
            // Exact length arithmetic, overflow-safe: after the embedded
            // PDU there must be room for the 4-byte text length, and the
            // text must fill the frame to the byte.
            let text_len = body
                .remaining()
                .checked_sub(pdu_len)
                .and_then(|r| r.checked_sub(4))
                .ok_or(PduError::BadLength { type_code, length })?;
            let inner = body.read_slice(pdu_len);
            if body.read_u32() as usize != text_len {
                return Err(PduError::BadLength { type_code, length });
            }
            if inner.len() >= 2 && inner[1] == 10 {
                return Err(PduError::NestedErrorReport);
            }
            let text =
                std::str::from_utf8(body.read_slice(text_len)).map_err(|_| PduError::BadText)?;
            PduRef::ErrorReport {
                code,
                pdu: inner,
                text,
            }
        }
        other => return Err(PduError::BadType(other)),
    };
    debug_assert!(body.is_empty(), "decoder must consume the whole body");
    Ok(Some(Frame {
        pdu,
        version,
        len: length,
    }))
}

/// Per-session protocol-version negotiation (see the state machine in
/// the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Negotiation {
    max_version: u8,
    negotiated: Option<u8>,
}

impl Default for Negotiation {
    fn default() -> Negotiation {
        Negotiation::new()
    }
}

impl Negotiation {
    /// An unpinned session accepting up to protocol version 1.
    pub fn new() -> Negotiation {
        Negotiation::with_max(PROTOCOL_V1)
    }

    /// An unpinned session accepting versions `0..=max_version` — a
    /// v0-only cache passes [`PROTOCOL_V0`] and v1 routers get the
    /// recoverable Unsupported-Version error, the RFC 6810 downgrade
    /// handshake.
    pub fn with_max(max_version: u8) -> Negotiation {
        assert!(
            max_version == PROTOCOL_V0 || max_version == PROTOCOL_V1,
            "unknown protocol version {max_version}"
        );
        Negotiation {
            max_version,
            negotiated: None,
        }
    }

    /// The version the session is pinned to, once the first frame has
    /// been accepted.
    pub fn version(&self) -> Option<u8> {
        self.negotiated
    }

    /// The highest version this side will accept.
    pub fn max_version(&self) -> u8 {
        self.max_version
    }

    /// Checks one frame's version against the session state, pinning the
    /// session on first acceptance. Returns the session version.
    pub fn accept(&mut self, frame_version: u8) -> Result<u8, PduError> {
        if frame_version > self.max_version {
            return Err(PduError::BadVersion(frame_version));
        }
        match self.negotiated {
            None => {
                self.negotiated = Some(frame_version);
                Ok(frame_version)
            }
            Some(v) if v == frame_version => Ok(v),
            Some(v) => Err(PduError::VersionMismatch {
                negotiated: v,
                got: frame_version,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursors_read_and_write_symmetrically() {
        let mut buf = [0u8; 27];
        let mut w = WriteCursor::new(&mut buf);
        w.write_u8(7);
        w.write_u16(0xBEEF);
        w.write_u32(0xDEAD_BEEF);
        w.write_u128(0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        w.write_slice(&[1, 2, 3, 4]);
        assert_eq!(w.remaining(), 0);
        assert_eq!(w.pos(), 27);

        let mut r = ReadCursor::new(&buf);
        assert_eq!(r.read_u8(), 7);
        assert_eq!(r.read_u16(), 0xBEEF);
        assert_eq!(r.read_u32(), 0xDEAD_BEEF);
        assert_eq!(r.read_u128(), 0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        assert_eq!(r.read_slice(4), &[1, 2, 3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.pos(), 27);
    }

    #[test]
    fn error_report_payloads_are_borrowed() {
        let vrp: Vrp = "10.0.0.0/8 => AS1".parse().unwrap();
        let mut inner = Vec::new();
        PduRef::Prefix {
            flags: Flags::Announce,
            vrp,
        }
        .encode_into(PROTOCOL_V1, &mut inner);
        let mut frame = Vec::new();
        PduRef::ErrorReport {
            code: ErrorCode::CorruptData,
            pdu: &inner,
            text: "boom",
        }
        .encode_into(PROTOCOL_V1, &mut frame);

        let decoded = decode_frame(&frame).unwrap().unwrap();
        match decoded.pdu {
            PduRef::ErrorReport { pdu, text, .. } => {
                // The borrowed slices point into `frame`, not a copy.
                let base = frame.as_ptr() as usize;
                let pdu_at = pdu.as_ptr() as usize;
                let text_at = text.as_ptr() as usize;
                assert!((base..base + frame.len()).contains(&pdu_at));
                assert!((base..base + frame.len()).contains(&text_at));
                assert_eq!(pdu, &inner[..]);
                assert_eq!(text, "boom");
            }
            other => panic!("expected error report, got {other:?}"),
        }
    }

    #[test]
    fn negotiation_pins_then_rejects_mismatch() {
        let mut n = Negotiation::new();
        assert_eq!(n.version(), None);
        assert_eq!(n.accept(PROTOCOL_V0), Ok(PROTOCOL_V0));
        assert_eq!(n.version(), Some(PROTOCOL_V0));
        assert_eq!(n.accept(PROTOCOL_V0), Ok(PROTOCOL_V0));
        let err = n.accept(PROTOCOL_V1).unwrap_err();
        assert_eq!(
            err,
            PduError::VersionMismatch {
                negotiated: PROTOCOL_V0,
                got: PROTOCOL_V1
            }
        );
        assert_eq!(err.class(), ErrorClass::Fatal);
        assert_eq!(err.error_code(), ErrorCode::UnexpectedVersion);
    }

    #[test]
    fn negotiation_caps_at_max_version_recoverably() {
        let mut v0_only = Negotiation::with_max(PROTOCOL_V0);
        let err = v0_only.accept(PROTOCOL_V1).unwrap_err();
        assert_eq!(err, PduError::BadVersion(PROTOCOL_V1));
        assert_eq!(err.class(), ErrorClass::Recoverable);
        assert_eq!(err.error_code(), ErrorCode::UnsupportedVersion);
        // The session never pinned, so a downgraded retry succeeds.
        assert_eq!(v0_only.accept(PROTOCOL_V0), Ok(PROTOCOL_V0));
    }

    #[test]
    #[should_panic(expected = "unknown protocol version")]
    fn negotiation_rejects_unknown_max() {
        let _ = Negotiation::with_max(9);
    }
}
