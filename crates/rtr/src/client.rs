//! The router side of rpki-rtr: maintains a synchronized VRP set.
//!
//! The state machine mirrors RFC 8210 §8's router behaviour: start with a
//! Reset Query, then keep up with Serial Queries; fall back to reset when
//! the cache sends Cache Reset or changes sessions; reject protocol
//! violations (withdrawals of unknown records, duplicate announcements)
//! with the RFC's error codes.
//!
//! The client also tracks the RFC 8210 §6 data-freshness timers: every
//! End of Data stamps the synchronization time on the client's
//! [`Clock`] and records the cache's advertised Refresh/Retry/Expire
//! parameters. [`RouterClient::freshness`] grades the held set against
//! those intervals ([`Freshness`]), and [`RouterClient::flush_expired`]
//! implements the §6 mandate that data past the Expire interval must
//! stop being used. Recovery hooks — [`RouterClient::abort_response`]
//! for a transport that died mid-response,
//! [`RouterClient::force_reset`] for the fall-back-to-Reset-Query
//! policy, [`RouterClient::renegotiate`] for a fresh connection — give
//! drivers ([`crate::session::LiveSession`], [`crate::faults`]) the
//! exact RFC-shaped moves without reaching into the state machine.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

use rpki_roa::Vrp;

use crate::clock::Clock;
use crate::pdu::{ErrorCode, Flags, Pdu, Timing, PROTOCOL_V0, PROTOCOL_V1};
use crate::transport::{Transport, TransportError};

/// Synchronization state of the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// No data yet; must send a Reset Query.
    Unsynchronized,
    /// Inside a cache response, accumulating prefix PDUs.
    Receiving {
        /// `true` if this response answers a Reset Query (the set is being
        /// rebuilt from scratch).
        reset: bool,
    },
    /// Holding a complete set at the recorded serial.
    Synchronized,
}

/// Protocol errors the router detects.
#[derive(Debug)]
pub enum ClientError {
    /// The cache sent a PDU that is invalid in the current state.
    Unexpected {
        /// The offending PDU's type code.
        type_code: u8,
        /// The state we were in.
        state: ClientState,
    },
    /// A withdrawal for a VRP we do not hold (RFC 8210 error 6).
    WithdrawalOfUnknown(Vrp),
    /// An announcement for a VRP we already hold (RFC 8210 error 7).
    DuplicateAnnouncement(Vrp),
    /// The cache reported an error and ended the session.
    CacheError(ErrorCode, String),
    /// Transport failure.
    Transport(TransportError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Unexpected { type_code, state } => {
                write!(f, "unexpected PDU type {type_code} in state {state:?}")
            }
            ClientError::WithdrawalOfUnknown(v) => {
                write!(f, "withdrawal of unknown record {v}")
            }
            ClientError::DuplicateAnnouncement(v) => {
                write!(f, "duplicate announcement {v}")
            }
            ClientError::CacheError(code, text) => {
                write!(f, "cache reported {code:?}: {text}")
            }
            ClientError::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

impl ClientError {
    /// The RFC 8210 error code the router should report back.
    pub fn error_code(&self) -> ErrorCode {
        match self {
            ClientError::WithdrawalOfUnknown(_) => ErrorCode::WithdrawalOfUnknown,
            ClientError::DuplicateAnnouncement(_) => ErrorCode::DuplicateAnnouncement,
            _ => ErrorCode::CorruptData,
        }
    }
}

/// How fresh the router's held VRP set is, graded against the cache's
/// advertised RFC 8210 §6 intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Synchronized within the Refresh interval: the data is current.
    Fresh,
    /// The Refresh interval has passed without a successful update; the
    /// data is usable but aging (`age` = time since the last End of
    /// Data).
    Stale {
        /// Time since the last successful synchronization.
        age: Duration,
    },
    /// The Expire interval has passed (or the router never
    /// synchronized): the data must not be used for validation.
    Expired,
}

/// The router-side state machine.
#[derive(Debug, Clone)]
pub struct RouterClient {
    state: ClientState,
    session_id: Option<u16>,
    serial: u32,
    vrps: BTreeSet<Vrp>,
    /// Working set while receiving a reset response.
    staging: BTreeSet<Vrp>,
    /// The protocol version this router speaks on the wire. Transports
    /// consult this when encoding queries; see [`RouterClient::downgrade_to`].
    version: u8,
    /// The version the router opens fresh connections with; a downgrade
    /// lowers `version` for the current connection only, and
    /// [`RouterClient::renegotiate`] restores this on the next one.
    preferred_version: u8,
    /// The timers behind [`RouterClient::freshness`].
    clock: Clock,
    /// When the last End of Data was processed, on `clock`'s timeline.
    synced_at: Option<Duration>,
    /// The cache's advertised Refresh/Retry/Expire intervals, from the
    /// last v1 End of Data (RFC 8210 defaults until then, which is also
    /// what a v0 session runs on).
    timing: Timing,
}

impl Default for RouterClient {
    fn default() -> Self {
        RouterClient::new()
    }
}

impl RouterClient {
    /// A fresh, unsynchronized router speaking protocol version 1.
    pub fn new() -> RouterClient {
        RouterClient::with_version(PROTOCOL_V1)
    }

    /// A fresh router speaking exactly `version` on the wire.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions.
    pub fn with_version(version: u8) -> RouterClient {
        assert!(
            version == PROTOCOL_V0 || version == PROTOCOL_V1,
            "unknown protocol version {version}"
        );
        RouterClient {
            state: ClientState::Unsynchronized,
            session_id: None,
            serial: 0,
            vrps: BTreeSet::new(),
            staging: BTreeSet::new(),
            version,
            preferred_version: version,
            clock: Clock::system(),
            synced_at: None,
            timing: Timing::default(),
        }
    }

    /// Replaces the clock the freshness timers run on. Tests install a
    /// [`Clock::manual`] here so Refresh/Expire transitions are driven
    /// explicitly instead of by wall time.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// The clock the freshness timers run on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The protocol version this router speaks.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The version this router opens fresh connections with (unchanged
    /// by per-connection downgrades).
    pub fn preferred_version(&self) -> u8 {
        self.preferred_version
    }

    /// Downgrades to a lower protocol version after the cache rejected
    /// ours with the recoverable Unsupported-Version error (RFC 8210
    /// §7). A version change starts a new session, so the router drops
    /// back to unsynchronized; the caller reconnects and resets. There
    /// is no auto-retry here — over a real transport the cache has
    /// already closed the connection, which only the owner of the
    /// connection can re-open.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions and on upgrades.
    pub fn downgrade_to(&mut self, version: u8) {
        assert!(
            version == PROTOCOL_V0 || version == PROTOCOL_V1,
            "unknown protocol version {version}"
        );
        assert!(
            version <= self.version,
            "cannot upgrade a session from {} to {version}",
            self.version
        );
        self.version = version;
        self.reset();
    }

    /// Starts version negotiation from scratch for a fresh connection:
    /// a router that downgraded on its previous connection must re-open
    /// at its preferred version, not inherit the downgrade (RFC 8210
    /// §7 — the negotiated version is per-connection state). If the
    /// version changes, the session restarts (a version change is a new
    /// session); otherwise the synchronized state is kept so the new
    /// connection can resume with a Serial Query.
    pub fn renegotiate(&mut self) {
        if self.version != self.preferred_version {
            self.version = self.preferred_version;
            self.reset();
        }
    }

    /// The current state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// Grades the held data against the cache's Refresh/Expire
    /// intervals (RFC 8210 §6): [`Freshness::Fresh`] within Refresh of
    /// the last End of Data, [`Freshness::Stale`] between Refresh and
    /// Expire, [`Freshness::Expired`] past Expire — or if the router
    /// never synchronized at all.
    pub fn freshness(&self) -> Freshness {
        let Some(synced_at) = self.synced_at else {
            return Freshness::Expired;
        };
        let age = self.clock.now().saturating_sub(synced_at);
        if age <= Duration::from_secs(u64::from(self.timing.refresh)) {
            Freshness::Fresh
        } else if age <= Duration::from_secs(u64::from(self.timing.expire)) {
            Freshness::Stale { age }
        } else {
            Freshness::Expired
        }
    }

    /// The cache's advertised timing parameters from the last End of
    /// Data (RFC 8210 defaults until one arrives).
    pub fn timing(&self) -> Timing {
        self.timing
    }

    /// When the last successful synchronization completed, on the
    /// client's clock timeline.
    pub fn last_synchronized(&self) -> Option<Duration> {
        self.synced_at
    }

    /// Enforces the Expire mandate (RFC 8210 §6): once the held data is
    /// [`Freshness::Expired`], it must stop being used — the set is
    /// flushed and the session restarts from a Reset Query. Returns
    /// `true` if data was flushed.
    pub fn flush_expired(&mut self) -> bool {
        if self.freshness() != Freshness::Expired || self.vrps.is_empty() {
            return false;
        }
        self.vrps.clear();
        self.serial = 0;
        self.reset();
        true
    }

    /// Abandons a response the transport failed to deliver to
    /// completion. A serial (delta) response applies to the live set as
    /// it arrives, so a connection that dies mid-delta leaves the set
    /// half-mutated at the old serial; resuming with a Serial Query
    /// from there would double-apply the delta. The only safe recovery
    /// is a full resynchronization — drop to unsynchronized so the next
    /// query is a Reset Query and the rebuilt set replaces the tainted
    /// one atomically. A failure outside a response is harmless and
    /// changes nothing.
    pub fn abort_response(&mut self) {
        if matches!(self.state, ClientState::Receiving { .. }) {
            self.reset();
        }
    }

    /// Forces the next query to be a Reset Query, keeping the held data
    /// until the fresh set arrives (graceful restart). This is the
    /// fall-back a router takes after repeated serial-query failures:
    /// stop trying to catch up incrementally, rebuild from the
    /// snapshot.
    pub fn force_reset(&mut self) {
        self.reset();
    }

    /// The serial the router is synchronized to.
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The synchronized VRP set.
    pub fn vrps(&self) -> &BTreeSet<Vrp> {
        &self.vrps
    }

    /// The query PDU appropriate to the current state: Reset Query when
    /// unsynchronized, Serial Query otherwise.
    pub fn query(&self) -> Pdu {
        match (self.state, self.session_id) {
            (ClientState::Synchronized, Some(session_id)) => Pdu::SerialQuery {
                session_id,
                serial: self.serial,
            },
            _ => Pdu::ResetQuery,
        }
    }

    /// Feeds one PDU from the cache. Returns `true` when a response
    /// completed (End of Data processed).
    pub fn handle(&mut self, pdu: &Pdu) -> Result<bool, ClientError> {
        let unexpected = |state| ClientError::Unexpected {
            type_code: pdu.type_code(),
            state,
        };
        match (self.state, pdu) {
            // A notify can arrive at any time; it does not change state —
            // the caller reacts by sending `query()`.
            (_, Pdu::SerialNotify { .. }) => Ok(false),

            (ClientState::Unsynchronized, Pdu::CacheResponse { session_id }) => {
                self.session_id = Some(*session_id);
                self.staging.clear();
                self.state = ClientState::Receiving { reset: true };
                Ok(false)
            }
            (ClientState::Synchronized, Pdu::CacheResponse { session_id }) => {
                if Some(*session_id) != self.session_id {
                    // Session changed: our data is void; restart.
                    self.reset();
                    return Err(unexpected(ClientState::Synchronized));
                }
                self.state = ClientState::Receiving { reset: false };
                Ok(false)
            }
            (ClientState::Receiving { reset }, Pdu::Prefix { flags, vrp }) => {
                let set = if reset {
                    &mut self.staging
                } else {
                    &mut self.vrps
                };
                match flags {
                    Flags::Announce => {
                        if !set.insert(*vrp) {
                            return Err(ClientError::DuplicateAnnouncement(*vrp));
                        }
                    }
                    Flags::Withdraw => {
                        if !set.remove(vrp) {
                            return Err(ClientError::WithdrawalOfUnknown(*vrp));
                        }
                    }
                }
                Ok(false)
            }
            (
                ClientState::Receiving { reset },
                Pdu::EndOfData {
                    session_id,
                    serial,
                    timing,
                },
            ) => {
                if Some(*session_id) != self.session_id {
                    self.reset();
                    return Err(unexpected(ClientState::Receiving { reset }));
                }
                if reset {
                    self.vrps = std::mem::take(&mut self.staging);
                }
                self.serial = *serial;
                self.state = ClientState::Synchronized;
                // The End of Data is the §6 synchronization point: the
                // freshness timers restart here, on the cache's (v1)
                // advertised intervals.
                self.timing = *timing;
                self.synced_at = Some(self.clock.now());
                Ok(true)
            }
            (_, Pdu::CacheReset) => {
                self.reset();
                Ok(false)
            }
            (_, Pdu::ErrorReport { code, text, .. }) => {
                Err(ClientError::CacheError(*code, text.clone()))
            }
            (state, _) => Err(unexpected(state)),
        }
    }

    fn reset(&mut self) {
        self.state = ClientState::Unsynchronized;
        self.session_id = None;
        self.staging.clear();
    }

    /// Runs one full synchronization round over a blocking transport:
    /// sends the appropriate query and processes the response to
    /// completion, following a Cache Reset with a Reset Query.
    pub fn synchronize<T: Transport>(&mut self, transport: &mut T) -> Result<(), ClientError> {
        for _attempt in 0..2 {
            let was_synchronized = matches!(self.state, ClientState::Synchronized);
            transport.send(&self.query())?;
            loop {
                let pdu = transport.recv()?;
                if pdu == Pdu::CacheReset {
                    self.reset();
                    break; // retry with a reset query
                }
                if self.handle(&pdu)? {
                    return Ok(());
                }
            }
            // Only loop once after a cache reset.
            if !was_synchronized {
                break;
            }
        }
        // Second attempt after reset.
        transport.send(&self.query())?;
        loop {
            let pdu = transport.recv()?;
            if self.handle(&pdu)? {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdu::Timing;

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn announce(v: &str) -> Pdu {
        Pdu::Prefix {
            flags: Flags::Announce,
            vrp: vrp(v),
        }
    }

    fn withdraw(v: &str) -> Pdu {
        Pdu::Prefix {
            flags: Flags::Withdraw,
            vrp: vrp(v),
        }
    }

    fn eod(session_id: u16, serial: u32) -> Pdu {
        Pdu::EndOfData {
            session_id,
            serial,
            timing: Timing::default(),
        }
    }

    #[test]
    fn initial_query_is_reset() {
        let c = RouterClient::new();
        assert_eq!(c.query(), Pdu::ResetQuery);
        assert_eq!(c.state(), ClientState::Unsynchronized);
    }

    #[test]
    fn full_sync_flow() {
        let mut c = RouterClient::new();
        assert!(!c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap());
        assert!(!c.handle(&announce("10.0.0.0/8 => AS1")).unwrap());
        assert!(!c.handle(&announce("11.0.0.0/8 => AS2")).unwrap());
        assert!(c.handle(&eod(7, 3)).unwrap());
        assert_eq!(c.state(), ClientState::Synchronized);
        assert_eq!(c.serial(), 3);
        assert_eq!(c.vrps().len(), 2);
        // Next query is a serial query echoing the session.
        assert_eq!(
            c.query(),
            Pdu::SerialQuery {
                session_id: 7,
                serial: 3
            }
        );
    }

    fn synced() -> RouterClient {
        let mut c = RouterClient::new();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        c.handle(&announce("10.0.0.0/8 => AS1")).unwrap();
        c.handle(&eod(7, 1)).unwrap();
        c
    }

    #[test]
    fn delta_applies_announce_and_withdraw() {
        let mut c = synced();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        c.handle(&announce("12.0.0.0/8 => AS3")).unwrap();
        c.handle(&withdraw("10.0.0.0/8 => AS1")).unwrap();
        assert!(c.handle(&eod(7, 2)).unwrap());
        assert_eq!(c.serial(), 2);
        let vrps: Vec<String> = c.vrps().iter().map(|v| v.to_string()).collect();
        assert_eq!(vrps, vec!["12.0.0.0/8 => AS3"]);
    }

    #[test]
    fn withdrawal_of_unknown_is_error() {
        let mut c = synced();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        let err = c.handle(&withdraw("99.0.0.0/8 => AS9")).unwrap_err();
        assert!(matches!(err, ClientError::WithdrawalOfUnknown(_)));
        assert_eq!(err.error_code(), ErrorCode::WithdrawalOfUnknown);
    }

    #[test]
    fn duplicate_announcement_is_error() {
        let mut c = synced();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        let err = c.handle(&announce("10.0.0.0/8 => AS1")).unwrap_err();
        assert!(matches!(err, ClientError::DuplicateAnnouncement(_)));
        assert_eq!(err.error_code(), ErrorCode::DuplicateAnnouncement);
    }

    #[test]
    fn duplicate_in_reset_response_is_error() {
        let mut c = RouterClient::new();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        c.handle(&announce("10.0.0.0/8 => AS1")).unwrap();
        assert!(c.handle(&announce("10.0.0.0/8 => AS1")).is_err());
    }

    #[test]
    fn cache_reset_unsynchronizes() {
        let mut c = synced();
        c.handle(&Pdu::CacheReset).unwrap();
        assert_eq!(c.state(), ClientState::Unsynchronized);
        assert_eq!(c.query(), Pdu::ResetQuery);
        // Old data retained until the new set arrives (graceful restart).
        assert_eq!(c.vrps().len(), 1);
    }

    #[test]
    fn session_change_detected() {
        let mut c = synced();
        let err = c.handle(&Pdu::CacheResponse { session_id: 8 }).unwrap_err();
        assert!(matches!(err, ClientError::Unexpected { .. }));
        assert_eq!(c.state(), ClientState::Unsynchronized);
    }

    #[test]
    fn reset_response_replaces_set_atomically() {
        let mut c = synced();
        // Force back to unsynchronized, then deliver a fresh full set.
        c.handle(&Pdu::CacheReset).unwrap();
        c.handle(&Pdu::CacheResponse { session_id: 9 }).unwrap();
        c.handle(&announce("20.0.0.0/8 => AS5")).unwrap();
        // Old data still visible mid-transfer.
        assert!(c.vrps().contains(&vrp("10.0.0.0/8 => AS1")));
        c.handle(&eod(9, 0)).unwrap();
        // Atomically swapped.
        assert_eq!(c.vrps().len(), 1);
        assert!(c.vrps().contains(&vrp("20.0.0.0/8 => AS5")));
    }

    #[test]
    fn error_report_surfaces() {
        let mut c = RouterClient::new();
        let err = c
            .handle(&Pdu::ErrorReport {
                code: ErrorCode::NoDataAvailable,
                pdu: bytes::Bytes::new(),
                text: "try later".into(),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ClientError::CacheError(ErrorCode::NoDataAvailable, _)
        ));
    }

    #[test]
    fn notify_is_noop_in_any_state() {
        let mut c = RouterClient::new();
        assert!(!c
            .handle(&Pdu::SerialNotify {
                session_id: 1,
                serial: 5
            })
            .unwrap());
        let mut c = synced();
        assert!(!c
            .handle(&Pdu::SerialNotify {
                session_id: 7,
                serial: 9
            })
            .unwrap());
        assert_eq!(c.state(), ClientState::Synchronized);
    }

    #[test]
    fn prefix_outside_response_is_unexpected() {
        let mut c = synced();
        let err = c.handle(&announce("10.0.0.0/8 => AS1")).unwrap_err();
        assert!(matches!(err, ClientError::Unexpected { type_code: 4, .. }));
    }

    #[test]
    fn downgrade_drops_to_unsynchronized() {
        let mut c = synced();
        assert_eq!(c.version(), PROTOCOL_V1);
        c.downgrade_to(PROTOCOL_V0);
        assert_eq!(c.version(), PROTOCOL_V0);
        assert_eq!(c.state(), ClientState::Unsynchronized);
        assert_eq!(c.query(), Pdu::ResetQuery);
        // Old data retained until the downgraded session delivers.
        assert_eq!(c.vrps().len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot upgrade")]
    fn upgrade_is_rejected() {
        let mut c = RouterClient::with_version(PROTOCOL_V0);
        c.downgrade_to(PROTOCOL_V1);
    }

    #[test]
    fn renegotiate_restores_preferred_version() {
        let mut c = synced();
        c.downgrade_to(PROTOCOL_V0);
        assert_eq!(c.version(), PROTOCOL_V0);
        assert_eq!(c.preferred_version(), PROTOCOL_V1);
        // A fresh connection negotiates from scratch: back to v1, and
        // the downgraded session's state is void.
        c.renegotiate();
        assert_eq!(c.version(), PROTOCOL_V1);
        assert_eq!(c.state(), ClientState::Unsynchronized);
    }

    #[test]
    fn renegotiate_at_preferred_version_resumes() {
        let mut c = synced();
        c.renegotiate();
        // No version change: the new connection may resume with a
        // Serial Query (serial/session survive reconnects, RFC 8210 §5.3).
        assert_eq!(c.state(), ClientState::Synchronized);
        assert!(matches!(c.query(), Pdu::SerialQuery { .. }));
    }

    fn manual_synced(timing: Timing) -> (RouterClient, Clock) {
        let clock = Clock::manual();
        let mut c = RouterClient::new();
        c.set_clock(clock.clone());
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        c.handle(&announce("10.0.0.0/8 => AS1")).unwrap();
        c.handle(&Pdu::EndOfData {
            session_id: 7,
            serial: 1,
            timing,
        })
        .unwrap();
        (c, clock)
    }

    #[test]
    fn freshness_follows_the_advertised_intervals() {
        let timing = Timing {
            refresh: 10,
            retry: 2,
            expire: 30,
        };
        let (c, clock) = manual_synced(timing);
        assert_eq!(c.timing(), timing);
        assert_eq!(c.freshness(), Freshness::Fresh);
        clock.advance(Duration::from_secs(10));
        assert_eq!(c.freshness(), Freshness::Fresh, "refresh edge inclusive");
        clock.advance(Duration::from_secs(1));
        assert_eq!(
            c.freshness(),
            Freshness::Stale {
                age: Duration::from_secs(11)
            }
        );
        clock.advance(Duration::from_secs(20));
        assert_eq!(c.freshness(), Freshness::Expired);
    }

    #[test]
    fn never_synchronized_is_expired() {
        assert_eq!(RouterClient::new().freshness(), Freshness::Expired);
    }

    #[test]
    fn resync_restarts_the_freshness_timers() {
        let timing = Timing {
            refresh: 10,
            retry: 2,
            expire: 30,
        };
        let (mut c, clock) = manual_synced(timing);
        clock.advance(Duration::from_secs(15));
        assert!(matches!(c.freshness(), Freshness::Stale { .. }));
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        c.handle(&Pdu::EndOfData {
            session_id: 7,
            serial: 2,
            timing,
        })
        .unwrap();
        assert_eq!(c.freshness(), Freshness::Fresh);
        assert_eq!(c.last_synchronized(), Some(Duration::from_secs(15)));
    }

    #[test]
    fn flush_expired_drops_data_and_resets() {
        let (mut c, clock) = manual_synced(Timing {
            refresh: 4,
            retry: 1,
            expire: 12,
        });
        assert!(!c.flush_expired(), "fresh data must not be flushed");
        clock.advance(Duration::from_secs(13));
        assert_eq!(c.freshness(), Freshness::Expired);
        assert!(c.flush_expired());
        assert!(c.vrps().is_empty(), "expired data must stop being used");
        assert_eq!(c.state(), ClientState::Unsynchronized);
        assert_eq!(c.query(), Pdu::ResetQuery);
        assert!(!c.flush_expired(), "nothing left to flush");
    }

    #[test]
    fn abort_response_mid_delta_forces_full_resync() {
        let mut c = synced();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        c.handle(&announce("12.0.0.0/8 => AS3")).unwrap();
        // The connection dies before End of Data: the live set holds
        // half a delta. Resuming by serial would double-apply it.
        c.abort_response();
        assert_eq!(c.state(), ClientState::Unsynchronized);
        assert_eq!(c.query(), Pdu::ResetQuery);
        // The tainted set is still visible (graceful restart) until the
        // reset response swaps in a clean one.
        assert_eq!(c.vrps().len(), 2);
        c.handle(&Pdu::CacheResponse { session_id: 9 }).unwrap();
        c.handle(&announce("10.0.0.0/8 => AS1")).unwrap();
        c.handle(&eod(9, 5)).unwrap();
        assert_eq!(c.vrps().len(), 1, "rebuild replaces the tainted set");
    }

    #[test]
    fn abort_response_outside_a_response_is_a_noop() {
        let mut c = synced();
        c.abort_response();
        assert_eq!(c.state(), ClientState::Synchronized);
        assert!(matches!(c.query(), Pdu::SerialQuery { .. }));
    }

    #[test]
    fn force_reset_falls_back_to_reset_query() {
        let mut c = synced();
        c.force_reset();
        assert_eq!(c.query(), Pdu::ResetQuery);
        assert_eq!(c.vrps().len(), 1, "data kept until the rebuild lands");
    }
}

impl ClientError {
    /// The Error Report PDU a router should send to the cache before
    /// dropping the session over this error (RFC 8210 §10).
    pub fn to_error_report(&self) -> Pdu {
        Pdu::ErrorReport {
            code: self.error_code(),
            pdu: bytes::Bytes::new(),
            text: self.to_string(),
        }
    }
}

#[cfg(test)]
mod error_report_tests {
    use super::*;

    #[test]
    fn error_report_carries_code_and_text() {
        let err = ClientError::WithdrawalOfUnknown("10.0.0.0/8 => AS1".parse().unwrap());
        match err.to_error_report() {
            Pdu::ErrorReport { code, text, .. } => {
                assert_eq!(code, ErrorCode::WithdrawalOfUnknown);
                assert!(text.contains("10.0.0.0/8"));
            }
            other => panic!("expected error report, got {other:?}"),
        }
    }
}
