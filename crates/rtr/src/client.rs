//! The router side of rpki-rtr: maintains a synchronized VRP set.
//!
//! The state machine mirrors RFC 8210 §8's router behaviour: start with a
//! Reset Query, then keep up with Serial Queries; fall back to reset when
//! the cache sends Cache Reset or changes sessions; reject protocol
//! violations (withdrawals of unknown records, duplicate announcements)
//! with the RFC's error codes.

use std::collections::BTreeSet;
use std::fmt;

use rpki_roa::Vrp;

use crate::pdu::{ErrorCode, Flags, Pdu, PROTOCOL_V0, PROTOCOL_V1};
use crate::transport::{Transport, TransportError};

/// Synchronization state of the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// No data yet; must send a Reset Query.
    Unsynchronized,
    /// Inside a cache response, accumulating prefix PDUs.
    Receiving {
        /// `true` if this response answers a Reset Query (the set is being
        /// rebuilt from scratch).
        reset: bool,
    },
    /// Holding a complete set at the recorded serial.
    Synchronized,
}

/// Protocol errors the router detects.
#[derive(Debug)]
pub enum ClientError {
    /// The cache sent a PDU that is invalid in the current state.
    Unexpected {
        /// The offending PDU's type code.
        type_code: u8,
        /// The state we were in.
        state: ClientState,
    },
    /// A withdrawal for a VRP we do not hold (RFC 8210 error 6).
    WithdrawalOfUnknown(Vrp),
    /// An announcement for a VRP we already hold (RFC 8210 error 7).
    DuplicateAnnouncement(Vrp),
    /// The cache reported an error and ended the session.
    CacheError(ErrorCode, String),
    /// Transport failure.
    Transport(TransportError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Unexpected { type_code, state } => {
                write!(f, "unexpected PDU type {type_code} in state {state:?}")
            }
            ClientError::WithdrawalOfUnknown(v) => {
                write!(f, "withdrawal of unknown record {v}")
            }
            ClientError::DuplicateAnnouncement(v) => {
                write!(f, "duplicate announcement {v}")
            }
            ClientError::CacheError(code, text) => {
                write!(f, "cache reported {code:?}: {text}")
            }
            ClientError::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

impl ClientError {
    /// The RFC 8210 error code the router should report back.
    pub fn error_code(&self) -> ErrorCode {
        match self {
            ClientError::WithdrawalOfUnknown(_) => ErrorCode::WithdrawalOfUnknown,
            ClientError::DuplicateAnnouncement(_) => ErrorCode::DuplicateAnnouncement,
            _ => ErrorCode::CorruptData,
        }
    }
}

/// The router-side state machine.
#[derive(Debug, Clone)]
pub struct RouterClient {
    state: ClientState,
    session_id: Option<u16>,
    serial: u32,
    vrps: BTreeSet<Vrp>,
    /// Working set while receiving a reset response.
    staging: BTreeSet<Vrp>,
    /// The protocol version this router speaks on the wire. Transports
    /// consult this when encoding queries; see [`RouterClient::downgrade_to`].
    version: u8,
}

impl Default for RouterClient {
    fn default() -> Self {
        RouterClient::new()
    }
}

impl RouterClient {
    /// A fresh, unsynchronized router speaking protocol version 1.
    pub fn new() -> RouterClient {
        RouterClient::with_version(PROTOCOL_V1)
    }

    /// A fresh router speaking exactly `version` on the wire.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions.
    pub fn with_version(version: u8) -> RouterClient {
        assert!(
            version == PROTOCOL_V0 || version == PROTOCOL_V1,
            "unknown protocol version {version}"
        );
        RouterClient {
            state: ClientState::Unsynchronized,
            session_id: None,
            serial: 0,
            vrps: BTreeSet::new(),
            staging: BTreeSet::new(),
            version,
        }
    }

    /// The protocol version this router speaks.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Downgrades to a lower protocol version after the cache rejected
    /// ours with the recoverable Unsupported-Version error (RFC 8210
    /// §7). A version change starts a new session, so the router drops
    /// back to unsynchronized; the caller reconnects and resets. There
    /// is no auto-retry here — over a real transport the cache has
    /// already closed the connection, which only the owner of the
    /// connection can re-open.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions and on upgrades.
    pub fn downgrade_to(&mut self, version: u8) {
        assert!(
            version == PROTOCOL_V0 || version == PROTOCOL_V1,
            "unknown protocol version {version}"
        );
        assert!(
            version <= self.version,
            "cannot upgrade a session from {} to {version}",
            self.version
        );
        self.version = version;
        self.reset();
    }

    /// The current state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// The serial the router is synchronized to.
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The synchronized VRP set.
    pub fn vrps(&self) -> &BTreeSet<Vrp> {
        &self.vrps
    }

    /// The query PDU appropriate to the current state: Reset Query when
    /// unsynchronized, Serial Query otherwise.
    pub fn query(&self) -> Pdu {
        match (self.state, self.session_id) {
            (ClientState::Synchronized, Some(session_id)) => Pdu::SerialQuery {
                session_id,
                serial: self.serial,
            },
            _ => Pdu::ResetQuery,
        }
    }

    /// Feeds one PDU from the cache. Returns `true` when a response
    /// completed (End of Data processed).
    pub fn handle(&mut self, pdu: &Pdu) -> Result<bool, ClientError> {
        let unexpected = |state| ClientError::Unexpected {
            type_code: pdu.type_code(),
            state,
        };
        match (self.state, pdu) {
            // A notify can arrive at any time; it does not change state —
            // the caller reacts by sending `query()`.
            (_, Pdu::SerialNotify { .. }) => Ok(false),

            (ClientState::Unsynchronized, Pdu::CacheResponse { session_id }) => {
                self.session_id = Some(*session_id);
                self.staging.clear();
                self.state = ClientState::Receiving { reset: true };
                Ok(false)
            }
            (ClientState::Synchronized, Pdu::CacheResponse { session_id }) => {
                if Some(*session_id) != self.session_id {
                    // Session changed: our data is void; restart.
                    self.reset();
                    return Err(unexpected(ClientState::Synchronized));
                }
                self.state = ClientState::Receiving { reset: false };
                Ok(false)
            }
            (ClientState::Receiving { reset }, Pdu::Prefix { flags, vrp }) => {
                let set = if reset {
                    &mut self.staging
                } else {
                    &mut self.vrps
                };
                match flags {
                    Flags::Announce => {
                        if !set.insert(*vrp) {
                            return Err(ClientError::DuplicateAnnouncement(*vrp));
                        }
                    }
                    Flags::Withdraw => {
                        if !set.remove(vrp) {
                            return Err(ClientError::WithdrawalOfUnknown(*vrp));
                        }
                    }
                }
                Ok(false)
            }
            (
                ClientState::Receiving { reset },
                Pdu::EndOfData {
                    session_id, serial, ..
                },
            ) => {
                if Some(*session_id) != self.session_id {
                    self.reset();
                    return Err(unexpected(ClientState::Receiving { reset }));
                }
                if reset {
                    self.vrps = std::mem::take(&mut self.staging);
                }
                self.serial = *serial;
                self.state = ClientState::Synchronized;
                Ok(true)
            }
            (_, Pdu::CacheReset) => {
                self.reset();
                Ok(false)
            }
            (_, Pdu::ErrorReport { code, text, .. }) => {
                Err(ClientError::CacheError(*code, text.clone()))
            }
            (state, _) => Err(unexpected(state)),
        }
    }

    fn reset(&mut self) {
        self.state = ClientState::Unsynchronized;
        self.session_id = None;
        self.staging.clear();
    }

    /// Runs one full synchronization round over a blocking transport:
    /// sends the appropriate query and processes the response to
    /// completion, following a Cache Reset with a Reset Query.
    pub fn synchronize<T: Transport>(&mut self, transport: &mut T) -> Result<(), ClientError> {
        for _attempt in 0..2 {
            let was_synchronized = matches!(self.state, ClientState::Synchronized);
            transport.send(&self.query())?;
            loop {
                let pdu = transport.recv()?;
                if pdu == Pdu::CacheReset {
                    self.reset();
                    break; // retry with a reset query
                }
                if self.handle(&pdu)? {
                    return Ok(());
                }
            }
            // Only loop once after a cache reset.
            if !was_synchronized {
                break;
            }
        }
        // Second attempt after reset.
        transport.send(&self.query())?;
        loop {
            let pdu = transport.recv()?;
            if self.handle(&pdu)? {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdu::Timing;

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn announce(v: &str) -> Pdu {
        Pdu::Prefix {
            flags: Flags::Announce,
            vrp: vrp(v),
        }
    }

    fn withdraw(v: &str) -> Pdu {
        Pdu::Prefix {
            flags: Flags::Withdraw,
            vrp: vrp(v),
        }
    }

    fn eod(session_id: u16, serial: u32) -> Pdu {
        Pdu::EndOfData {
            session_id,
            serial,
            timing: Timing::default(),
        }
    }

    #[test]
    fn initial_query_is_reset() {
        let c = RouterClient::new();
        assert_eq!(c.query(), Pdu::ResetQuery);
        assert_eq!(c.state(), ClientState::Unsynchronized);
    }

    #[test]
    fn full_sync_flow() {
        let mut c = RouterClient::new();
        assert!(!c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap());
        assert!(!c.handle(&announce("10.0.0.0/8 => AS1")).unwrap());
        assert!(!c.handle(&announce("11.0.0.0/8 => AS2")).unwrap());
        assert!(c.handle(&eod(7, 3)).unwrap());
        assert_eq!(c.state(), ClientState::Synchronized);
        assert_eq!(c.serial(), 3);
        assert_eq!(c.vrps().len(), 2);
        // Next query is a serial query echoing the session.
        assert_eq!(
            c.query(),
            Pdu::SerialQuery {
                session_id: 7,
                serial: 3
            }
        );
    }

    fn synced() -> RouterClient {
        let mut c = RouterClient::new();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        c.handle(&announce("10.0.0.0/8 => AS1")).unwrap();
        c.handle(&eod(7, 1)).unwrap();
        c
    }

    #[test]
    fn delta_applies_announce_and_withdraw() {
        let mut c = synced();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        c.handle(&announce("12.0.0.0/8 => AS3")).unwrap();
        c.handle(&withdraw("10.0.0.0/8 => AS1")).unwrap();
        assert!(c.handle(&eod(7, 2)).unwrap());
        assert_eq!(c.serial(), 2);
        let vrps: Vec<String> = c.vrps().iter().map(|v| v.to_string()).collect();
        assert_eq!(vrps, vec!["12.0.0.0/8 => AS3"]);
    }

    #[test]
    fn withdrawal_of_unknown_is_error() {
        let mut c = synced();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        let err = c.handle(&withdraw("99.0.0.0/8 => AS9")).unwrap_err();
        assert!(matches!(err, ClientError::WithdrawalOfUnknown(_)));
        assert_eq!(err.error_code(), ErrorCode::WithdrawalOfUnknown);
    }

    #[test]
    fn duplicate_announcement_is_error() {
        let mut c = synced();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        let err = c.handle(&announce("10.0.0.0/8 => AS1")).unwrap_err();
        assert!(matches!(err, ClientError::DuplicateAnnouncement(_)));
        assert_eq!(err.error_code(), ErrorCode::DuplicateAnnouncement);
    }

    #[test]
    fn duplicate_in_reset_response_is_error() {
        let mut c = RouterClient::new();
        c.handle(&Pdu::CacheResponse { session_id: 7 }).unwrap();
        c.handle(&announce("10.0.0.0/8 => AS1")).unwrap();
        assert!(c.handle(&announce("10.0.0.0/8 => AS1")).is_err());
    }

    #[test]
    fn cache_reset_unsynchronizes() {
        let mut c = synced();
        c.handle(&Pdu::CacheReset).unwrap();
        assert_eq!(c.state(), ClientState::Unsynchronized);
        assert_eq!(c.query(), Pdu::ResetQuery);
        // Old data retained until the new set arrives (graceful restart).
        assert_eq!(c.vrps().len(), 1);
    }

    #[test]
    fn session_change_detected() {
        let mut c = synced();
        let err = c.handle(&Pdu::CacheResponse { session_id: 8 }).unwrap_err();
        assert!(matches!(err, ClientError::Unexpected { .. }));
        assert_eq!(c.state(), ClientState::Unsynchronized);
    }

    #[test]
    fn reset_response_replaces_set_atomically() {
        let mut c = synced();
        // Force back to unsynchronized, then deliver a fresh full set.
        c.handle(&Pdu::CacheReset).unwrap();
        c.handle(&Pdu::CacheResponse { session_id: 9 }).unwrap();
        c.handle(&announce("20.0.0.0/8 => AS5")).unwrap();
        // Old data still visible mid-transfer.
        assert!(c.vrps().contains(&vrp("10.0.0.0/8 => AS1")));
        c.handle(&eod(9, 0)).unwrap();
        // Atomically swapped.
        assert_eq!(c.vrps().len(), 1);
        assert!(c.vrps().contains(&vrp("20.0.0.0/8 => AS5")));
    }

    #[test]
    fn error_report_surfaces() {
        let mut c = RouterClient::new();
        let err = c
            .handle(&Pdu::ErrorReport {
                code: ErrorCode::NoDataAvailable,
                pdu: bytes::Bytes::new(),
                text: "try later".into(),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ClientError::CacheError(ErrorCode::NoDataAvailable, _)
        ));
    }

    #[test]
    fn notify_is_noop_in_any_state() {
        let mut c = RouterClient::new();
        assert!(!c
            .handle(&Pdu::SerialNotify {
                session_id: 1,
                serial: 5
            })
            .unwrap());
        let mut c = synced();
        assert!(!c
            .handle(&Pdu::SerialNotify {
                session_id: 7,
                serial: 9
            })
            .unwrap());
        assert_eq!(c.state(), ClientState::Synchronized);
    }

    #[test]
    fn prefix_outside_response_is_unexpected() {
        let mut c = synced();
        let err = c.handle(&announce("10.0.0.0/8 => AS1")).unwrap_err();
        assert!(matches!(err, ClientError::Unexpected { type_code: 4, .. }));
    }

    #[test]
    fn downgrade_drops_to_unsynchronized() {
        let mut c = synced();
        assert_eq!(c.version(), PROTOCOL_V1);
        c.downgrade_to(PROTOCOL_V0);
        assert_eq!(c.version(), PROTOCOL_V0);
        assert_eq!(c.state(), ClientState::Unsynchronized);
        assert_eq!(c.query(), Pdu::ResetQuery);
        // Old data retained until the downgraded session delivers.
        assert_eq!(c.vrps().len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot upgrade")]
    fn upgrade_is_rejected() {
        let mut c = RouterClient::with_version(PROTOCOL_V0);
        c.downgrade_to(PROTOCOL_V1);
    }
}

impl ClientError {
    /// The Error Report PDU a router should send to the cache before
    /// dropping the session over this error (RFC 8210 §10).
    pub fn to_error_report(&self) -> Pdu {
        Pdu::ErrorReport {
            code: self.error_code(),
            pdu: bytes::Bytes::new(),
            text: self.to_string(),
        }
    }
}

#[cfg(test)]
mod error_report_tests {
    use super::*;

    #[test]
    fn error_report_carries_code_and_text() {
        let err = ClientError::WithdrawalOfUnknown("10.0.0.0/8 => AS1".parse().unwrap());
        match err.to_error_report() {
            Pdu::ErrorReport { code, text, .. } => {
                assert_eq!(code, ErrorCode::WithdrawalOfUnknown);
                assert!(text.contains("10.0.0.0/8"));
            }
            other => panic!("expected error report, got {other:?}"),
        }
    }
}
