//! Deterministic fault injection and the RFC 8210 recovery harness.
//!
//! The fan-out server and the router client are sans-io state machines;
//! what they have never been subjected to is a *hostile pipe*. This
//! module closes that gap with three pieces:
//!
//! * [`FaultPlan`] — a seeded, replayable schedule of wire faults
//!   (frame drops, mid-frame truncation, byte corruption, injected
//!   garbage, stalls, forced disconnects), drawn from domain-separated
//!   PRNG streams so the cache-bound and router-bound directions never
//!   share entropy.
//! * [`FaultyTransport`] — a [`Transport`] wrapper that applies a plan
//!   to a live byte pipe, faithfully modelling the TCP reality that a
//!   stream cannot lose a *middle* frame: every loss-class fault
//!   surfaces as a connection break the endpoints must recover from.
//! * [`ChaosSession`] — a cache ↔ router pair on one shared manual
//!   [`Clock`], with a fault plan spliced between them and the full
//!   RFC 8210 §6 recovery loop on the router side: capped exponential
//!   [`Backoff`] with seeded jitter, Reset Query fallback after
//!   repeated failures, stale-data flushing past Expire, and a
//!   recovery [`TraceEvent`] log.
//!
//! # The determinism contract
//!
//! Every run is a pure function of `(seed, FaultConfig, RecoveryConfig,
//! churn timeline)`. Time is virtual ([`Clock::manual`]), randomness
//! comes only from [`StdRng`] streams derived from the seed by fixed
//! domain constants, and no draw is ever made speculatively — so the
//! same seed replays the same fault schedule, the same backoff delays,
//! and the same [`TraceEvent`] sequence **byte for byte**. A failing
//! chaos case is its seed; nothing else needs to be captured.
//!
//! # The convergence-or-Stale invariant
//!
//! The safety property the chaos suite gates on
//! ([`Settled::invariant_holds`]): after [`ChaosSession::settle`]
//! returns, either the router's VRP set and serial are **bit-identical
//! to the cache's** (checked against the [`CacheServer`] oracle, never
//! against the wire), or the router reports itself non-[`Fresh`] — it
//! must never hold wrong data while claiming it is current. The
//! dangerous path is corruption that still decodes: a flipped byte can
//! survive the grammar and commit a wrong VRP. [`ChaosSession::settle`]
//! therefore validates convergence *after* every apparently successful
//! exchange and treats silent desync as one more failure to recover
//! from ([`FailureKind::Desync`]), forcing a full Reset Query rebuild.
//!
//! [`Fresh`]: crate::client::Freshness::Fresh
//! [`StdRng`]: rand::rngs::StdRng

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpki_roa::Vrp;

use crate::cache::CacheServer;
use crate::client::{Freshness, RouterClient};
use crate::clock::Clock;
use crate::pdu::{Pdu, Timing, PROTOCOL_V0, PROTOCOL_V1};
use crate::server::{FanoutServer, ServerConfig, SessionId};
use crate::transport::{Transport, TransportError};
use crate::wire::{self, ErrorClass, Negotiation, PduError, HEADER_LEN};

/// Domain constant for the cache → router fault stream.
const TO_ROUTER_DOMAIN: u64 = 0xD6E8_FEB8_6659_FD93;
/// Domain constant for the router → cache fault stream.
const TO_CACHE_DOMAIN: u64 = 0x85EB_CA6B_27D4_EB2F;
/// Domain constant for the backoff jitter stream.
const BACKOFF_DOMAIN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Which way a frame was travelling when the fault hit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Cache-bound: the router's queries.
    ToCache,
    /// Router-bound: the cache's responses and notifies.
    ToRouter,
}

/// Per-fault probabilities, each in `0.0..=1.0`; their sum is the total
/// fault rate per frame (must stay `<= 1.0`), the remainder delivers
/// the frame intact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// The frame vanishes (and the connection breaks with it — TCP
    /// cannot lose a middle frame and keep the stream).
    pub drop: f64,
    /// The frame is cut mid-byte and the connection breaks.
    pub truncate: f64,
    /// One byte of the frame is XOR-mutated and delivered. The only
    /// fault class that can *survive* decoding — the silent-desync
    /// hazard the settle loop validates against.
    pub corrupt: f64,
    /// Random garbage bytes are injected in place of the frame.
    pub garbage: f64,
    /// Delivery is delayed by a drawn interval of virtual time.
    pub stall: f64,
    /// The connection is cut before the frame is sent.
    pub disconnect: f64,
}

impl FaultConfig {
    /// No faults: every frame delivers. The control profile.
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop: 0.0,
            truncate: 0.0,
            corrupt: 0.0,
            garbage: 0.0,
            stall: 0.0,
            disconnect: 0.0,
        }
    }

    /// Light chaos: ~10% of frames suffer some fault.
    pub fn light() -> FaultConfig {
        FaultConfig {
            drop: 0.02,
            truncate: 0.01,
            corrupt: 0.02,
            garbage: 0.01,
            stall: 0.02,
            disconnect: 0.02,
        }
    }

    /// Heavy chaos: ~35% of frames suffer some fault.
    pub fn heavy() -> FaultConfig {
        FaultConfig {
            drop: 0.08,
            truncate: 0.04,
            corrupt: 0.08,
            garbage: 0.04,
            stall: 0.05,
            disconnect: 0.06,
        }
    }

    fn total(&self) -> f64 {
        self.drop + self.truncate + self.corrupt + self.garbage + self.stall + self.disconnect
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::light()
    }
}

/// What the plan decided to do to one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass the frame through untouched.
    Deliver,
    /// Lose the frame (connection-terminating over a stream).
    Drop,
    /// Deliver only the first `keep` bytes, then cut the connection.
    Truncate {
        /// Bytes of the frame that still arrive.
        keep: usize,
    },
    /// XOR one byte and deliver the mutated frame.
    Corrupt {
        /// Byte offset of the mutation.
        offset: usize,
        /// Non-zero XOR mask applied at `offset`.
        xor: u8,
    },
    /// Replace the frame with raw garbage bytes.
    Garbage {
        /// The injected bytes.
        bytes: Vec<u8>,
    },
    /// Delay delivery by `delay` of virtual time, then deliver.
    Stall {
        /// The virtual-time delay.
        delay: Duration,
    },
    /// Cut the connection before the frame is sent.
    Disconnect,
}

/// A seeded, replayable schedule of wire faults.
///
/// Two independent [`StdRng`] streams — one per [`Direction`], derived
/// from the seed by fixed domain constants — decide each frame's fate.
/// Decisions are drawn strictly in frame order per direction, so the
/// schedule is a pure function of `(seed, config, frame sequence)`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    to_router: StdRng,
    to_cache: StdRng,
}

impl FaultPlan {
    /// A plan drawing from `seed` with the given fault rates.
    ///
    /// # Panics
    ///
    /// Panics if the configured probabilities sum above 1.0.
    pub fn new(seed: u64, config: FaultConfig) -> FaultPlan {
        assert!(
            config.total() <= 1.0,
            "fault probabilities sum to {} > 1.0",
            config.total()
        );
        FaultPlan {
            config,
            to_router: StdRng::seed_from_u64(seed ^ TO_ROUTER_DOMAIN),
            to_cache: StdRng::seed_from_u64(seed ^ TO_CACHE_DOMAIN),
        }
    }

    /// A plan that never faults (regardless of seed).
    pub fn quiet() -> FaultPlan {
        FaultPlan::new(0, FaultConfig::none())
    }

    /// Decides the fate of the next `frame_len`-byte frame travelling
    /// in `dir`. Consumes entropy from that direction's stream only.
    pub fn decide(&mut self, dir: Direction, frame_len: usize) -> FaultAction {
        let config = self.config;
        let rng = match dir {
            Direction::ToRouter => &mut self.to_router,
            Direction::ToCache => &mut self.to_cache,
        };
        let roll: f64 = rng.gen();
        let mut threshold = config.drop;
        if roll < threshold {
            return FaultAction::Drop;
        }
        threshold += config.truncate;
        if roll < threshold {
            return FaultAction::Truncate {
                keep: rng.gen_range(0..frame_len.max(1)),
            };
        }
        threshold += config.corrupt;
        if roll < threshold {
            return FaultAction::Corrupt {
                offset: rng.gen_range(0..frame_len.max(1)),
                xor: rng.gen_range(1..=255u8),
            };
        }
        threshold += config.garbage;
        if roll < threshold {
            let len = rng.gen_range(8..=24usize);
            let bytes = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
            return FaultAction::Garbage { bytes };
        }
        threshold += config.stall;
        if roll < threshold {
            return FaultAction::Stall {
                delay: Duration::from_secs(rng.gen_range(1..=30u64)),
            };
        }
        threshold += config.disconnect;
        if roll < threshold {
            return FaultAction::Disconnect;
        }
        FaultAction::Deliver
    }
}

/// Capped exponential backoff with seeded jitter, per RFC 8210 §6's
/// retry discipline: double up to a cap, add up to 25% random jitter so
/// a fleet of routers does not thunder in phase.
#[derive(Debug, Clone)]
pub struct Backoff {
    rng: StdRng,
    base: Duration,
    cap: Duration,
    /// Consecutive failures since the last [`Backoff::reset`].
    attempts: u32,
}

impl Backoff {
    /// A backoff drawing jitter from `seed` (domain-separated from the
    /// fault streams), starting at `base` and saturating at `cap`.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Backoff {
        Backoff {
            rng: StdRng::seed_from_u64(seed ^ BACKOFF_DOMAIN),
            base: base.max(Duration::from_millis(1)),
            cap,
            attempts: 0,
        }
    }

    /// The next delay: `min(cap, base << attempts)` plus jitter in
    /// `0..=25%` of the delay. Advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempts.min(16);
        let delay = self
            .base
            .checked_mul(1u32 << shift)
            .unwrap_or(self.cap)
            .min(self.cap);
        self.attempts = self.attempts.saturating_add(1);
        let jitter_ns = (delay.as_nanos() / 4) as u64;
        let jitter = if jitter_ns == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.rng.gen_range(0..=jitter_ns))
        };
        delay + jitter
    }

    /// Clears the failure streak after a successful exchange.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }

    /// Consecutive failures recorded since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

/// Recovery policy for [`ChaosSession::settle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Attempts after which settle gives up — provided the router is no
    /// longer claiming freshness (the invariant forbids abandoning a
    /// router that still reports `Fresh`).
    pub max_attempts: u32,
    /// Consecutive failures that trigger the Reset Query fallback: the
    /// serial-resume path is abandoned and the full snapshot rebuilt.
    pub reset_after: u32,
    /// First retry delay.
    pub backoff_base: Duration,
    /// Retry delay ceiling.
    pub backoff_cap: Duration,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            max_attempts: 16,
            reset_after: 4,
            backoff_base: Duration::from_secs(1),
            backoff_cap: Duration::from_secs(60),
        }
    }
}

/// Why one synchronization attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The router's query never reached the cache.
    QueryLost,
    /// The cache tore the session down with a fatal Error Report.
    Teardown,
    /// The router-bound bytes failed to parse.
    Protocol,
    /// The router-side state machine rejected a decoded PDU.
    Client,
    /// The response ran dry before End of Data (break mid-response).
    Incomplete,
    /// The exchange *looked* successful but the router's set did not
    /// match the cache oracle — survivable corruption committed wrong
    /// data. The settle loop forces a full rebuild.
    Desync,
}

/// One entry in a [`ChaosSession`]'s recovery trace. The trace is the
/// determinism witness: same seed, same trace, element for element.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A churn epoch was applied to the cache.
    Epoch {
        /// The cache serial after the update.
        serial: u32,
    },
    /// A synchronization attempt began.
    Attempt {
        /// 1-based attempt number within the settle call.
        n: u32,
        /// `true` if the router opened with a Reset Query.
        reset: bool,
    },
    /// The plan injected a fault.
    Fault {
        /// Which pipe the fault hit.
        dir: Direction,
        /// What was done to the frame.
        action: FaultAction,
    },
    /// A recoverable version rejection forced a downgrade reconnect.
    Downgrade {
        /// Version before.
        from: u8,
        /// Version after.
        to: u8,
    },
    /// The connection was re-established after a failure.
    Reconnect {
        /// The version the router re-opened with (its preferred
        /// version — downgrades are per-connection).
        version: u8,
    },
    /// The settle loop slept before retrying.
    Backoff {
        /// Virtual-time delay.
        delay: Duration,
    },
    /// The Expire timer fired and stale data was flushed.
    Expired,
    /// The attempt failed.
    Failed {
        /// Why.
        reason: FailureKind,
    },
    /// The router converged with the cache.
    Synced {
        /// Serial both sides now agree on.
        serial: u32,
        /// VRPs the router holds.
        vrps: usize,
    },
    /// The settle loop gave up after `max_attempts` with the router
    /// honestly non-fresh.
    GaveUp {
        /// The freshness the router reports at abandonment.
        freshness: Freshness,
    },
}

/// Outcome of [`ChaosSession::settle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Settled {
    /// `true` if the router's set and serial match the cache oracle.
    pub converged: bool,
    /// Synchronization attempts consumed.
    pub attempts: u32,
    /// Freshness the router reports at return.
    pub freshness: Freshness,
    /// Virtual time the recovery consumed.
    pub virtual_elapsed: Duration,
}

impl Settled {
    /// The convergence-or-Stale invariant: a router that failed to
    /// converge must not be claiming its data is fresh.
    pub fn invariant_holds(&self) -> bool {
        self.converged || self.freshness != Freshness::Fresh
    }
}

/// Options for building a [`ChaosSession`].
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Highest version the cache speaks.
    pub cache_version: u8,
    /// Version the router prefers (opens with, and re-opens with after
    /// every reconnect).
    pub router_version: u8,
    /// RFC 8210 timing the cache advertises. The default compresses
    /// the RFC's hour-scale intervals to seconds of virtual time:
    /// refresh 4s, retry 1s, expire 12s.
    pub timing: Timing,
    /// Retry/backoff/reset policy.
    pub recovery: RecoveryConfig,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions {
            cache_version: PROTOCOL_V1,
            router_version: PROTOCOL_V1,
            timing: Timing {
                refresh: 4,
                retry: 1,
                expire: 12,
            },
            recovery: RecoveryConfig::default(),
        }
    }
}

/// Hard cap on settle-loop iterations: a pure deadlock/livelock gate.
/// Legitimate recoveries finish orders of magnitude earlier.
const SETTLE_HARD_CAP: u32 = 100_000;

/// Rounds one attempt may spend following Cache Resets or downgrades
/// before it is declared incomplete.
const ATTEMPT_ROUNDS: u32 = 4;

/// A cache ↔ router pair under fault injection on one shared manual
/// clock — the chaos harness the proptest suite and the `rtr_chaos`
/// bench drive.
///
/// The churn side is [`ChaosSession::apply_epoch`]; the recovery side
/// is [`ChaosSession::settle`], which retries with backoff until the
/// router either converges with the [`CacheServer`] oracle or honestly
/// reports itself non-fresh. Both are deterministic in the seed; see
/// the module docs for the contract.
#[derive(Debug)]
pub struct ChaosSession {
    server: FanoutServer,
    session: SessionId,
    router: RouterClient,
    router_negotiation: Negotiation,
    /// Bytes in flight cache → router (post-fault).
    to_router: Vec<u8>,
    plan: FaultPlan,
    backoff: Backoff,
    recovery: RecoveryConfig,
    clock: Clock,
    trace: Vec<TraceEvent>,
    attempts_total: u32,
    consecutive_failures: u32,
}

impl ChaosSession {
    /// A chaos pair over `vrps`, faulting per `(seed, config)`, with
    /// default versions and timing.
    pub fn new(session_id: u16, vrps: &[Vrp], seed: u64, config: FaultConfig) -> ChaosSession {
        ChaosSession::with_options(session_id, vrps, seed, config, ChaosOptions::default())
    }

    /// The fully-parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions or fault rates summing above 1.0.
    pub fn with_options(
        session_id: u16,
        vrps: &[Vrp],
        seed: u64,
        config: FaultConfig,
        options: ChaosOptions,
    ) -> ChaosSession {
        let clock = Clock::manual();
        let mut cache = CacheServer::with_version(session_id, vrps, options.cache_version);
        cache.set_timing(options.timing);
        let server_config = ServerConfig {
            outbox_limit: usize::MAX,
            ..ServerConfig::default()
        };
        let mut server = FanoutServer::with_clock(cache, server_config, clock.clone());
        let session = server.open_session();
        let mut router = RouterClient::with_version(options.router_version);
        router.set_clock(clock.clone());
        let router_negotiation = Negotiation::with_max(options.router_version);
        ChaosSession {
            server,
            session,
            router,
            router_negotiation,
            to_router: Vec::new(),
            plan: FaultPlan::new(seed, config),
            backoff: Backoff::new(
                seed,
                options.recovery.backoff_base,
                options.recovery.backoff_cap,
            ),
            recovery: options.recovery,
            clock,
            trace: Vec::new(),
            attempts_total: 0,
            consecutive_failures: 0,
        }
    }

    /// The cache oracle.
    pub fn cache(&self) -> &CacheServer {
        self.server.cache()
    }

    /// The router under test.
    pub fn router(&self) -> &RouterClient {
        &self.router
    }

    /// The shared manual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The recovery trace so far — the determinism witness.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// `true` if the router's VRP set and serial match the cache.
    /// Checked against the state machines directly, never the wire.
    pub fn converged(&self) -> bool {
        self.router.serial() == self.cache().serial()
            && self.router.vrps().iter().eq(self.server.cache().vrps())
    }

    /// Applies one churn epoch to the cache (queuing a Serial Notify on
    /// the session). Call [`ChaosSession::settle`] to let the router
    /// catch up through the faults.
    pub fn apply_epoch(&mut self, announced: &[Vrp], withdrawn: &[Vrp]) {
        self.server.update_delta_and_notify(announced, withdrawn);
        self.trace.push(TraceEvent::Epoch {
            serial: self.cache().serial(),
        });
    }

    /// Retries synchronization with backoff until the router converges
    /// with the oracle or gives up honestly non-fresh. Returns the
    /// outcome; [`Settled::invariant_holds`] is the property tests
    /// gate on.
    ///
    /// # Panics
    ///
    /// Panics if the loop exceeds its hard iteration cap — the
    /// deadlock/livelock gate the chaos suite converts into a failure.
    pub fn settle(&mut self) -> Settled {
        let started = self.clock.now();
        let mut attempts = 0u32;
        for _guard in 0..SETTLE_HARD_CAP {
            attempts += 1;
            self.attempts_total += 1;
            self.trace.push(TraceEvent::Attempt {
                n: attempts,
                reset: matches!(self.router.query(), Pdu::ResetQuery),
            });
            let reason = match self.attempt() {
                Ok(()) => {
                    self.backoff.reset();
                    if self.converged() {
                        self.consecutive_failures = 0;
                        self.trace.push(TraceEvent::Synced {
                            serial: self.router.serial(),
                            vrps: self.router.vrps().len(),
                        });
                        return Settled {
                            converged: true,
                            attempts,
                            freshness: self.router.freshness(),
                            virtual_elapsed: self.clock.now() - started,
                        };
                    }
                    // Survivable corruption committed wrong data under
                    // a clean-looking exchange: validate-then-commit
                    // says this is a failure. Rebuild from scratch —
                    // the connection itself is fine, so no reconnect.
                    self.router.force_reset();
                    FailureKind::Desync
                }
                Err(reason) => {
                    self.reconnect();
                    reason
                }
            };
            self.trace.push(TraceEvent::Failed { reason });
            self.consecutive_failures += 1;
            if self.consecutive_failures >= self.recovery.reset_after {
                self.router.force_reset();
            }
            if attempts >= self.recovery.max_attempts && self.router.freshness() != Freshness::Fresh
            {
                self.trace.push(TraceEvent::GaveUp {
                    freshness: self.router.freshness(),
                });
                return Settled {
                    converged: self.converged(),
                    attempts,
                    freshness: self.router.freshness(),
                    virtual_elapsed: self.clock.now() - started,
                };
            }
            // Each failure advances virtual time by at least the
            // backoff base, so a router stuck failing leaves `Fresh`
            // within `refresh` seconds and the give-up gate above must
            // eventually open — settle always terminates.
            let delay = self.backoff.next_delay();
            self.trace.push(TraceEvent::Backoff { delay });
            self.clock.advance(delay);
            if self.router.flush_expired() {
                self.trace.push(TraceEvent::Expired);
            }
        }
        panic!("settle exceeded {SETTLE_HARD_CAP} iterations: livelock");
    }

    /// One synchronization attempt through the faulted pipes. `Ok(())`
    /// means the router saw End of Data; convergence is validated by
    /// the caller.
    fn attempt(&mut self) -> Result<(), FailureKind> {
        let mut downgraded = false;
        for _round in 0..ATTEMPT_ROUNDS {
            // Router → cache: the query, through the ToCache stream.
            if !self.send_query()? {
                // Query mangled in a way that cut the connection.
                return Err(FailureKind::QueryLost);
            }

            // Cache side: drain the outbox, check for teardown.
            let mut raw = Vec::new();
            self.server.drain_output(self.session, &mut raw);
            if let Some(error) = self.server.session_error(self.session).cloned() {
                let can_downgrade = error.class() == ErrorClass::Recoverable
                    && !downgraded
                    && self.router.version() > PROTOCOL_V0;
                if !can_downgrade {
                    return Err(FailureKind::Teardown);
                }
                downgraded = true;
                self.reconnect_downgrade();
                continue;
            }

            // Cache → router: each response frame through the ToRouter
            // stream. A loss-class fault cuts the rest of the response.
            self.deliver_to_router(&raw);

            // Router side: decode whatever made it through.
            let mut reset = false;
            loop {
                let frame_bytes = match wire::decode_frame(&self.to_router) {
                    Ok(Some(frame)) => {
                        if self.router_negotiation.accept(frame.version).is_err() {
                            return Err(FailureKind::Protocol);
                        }
                        let pdu = frame.pdu.to_owned();
                        let len = frame.len;
                        self.to_router.drain(..len);
                        Some((pdu, len))
                    }
                    Ok(None) => None,
                    Err(_) => return Err(FailureKind::Protocol),
                };
                let Some((pdu, _len)) = frame_bytes else {
                    break;
                };
                if matches!(pdu, Pdu::CacheReset) {
                    reset = true;
                }
                match self.router.handle(&pdu) {
                    Ok(true) => return Ok(()),
                    Ok(false) => {}
                    Err(_) => return Err(FailureKind::Client),
                }
                if reset {
                    break; // fall back to a Reset Query round
                }
            }
            if !reset {
                // Ran dry without End of Data: the response was cut.
                return Err(FailureKind::Incomplete);
            }
        }
        Err(FailureKind::Incomplete)
    }

    /// Encodes and sends the router's next query through the ToCache
    /// fault stream. Returns `Ok(false)` if a fault cut the connection
    /// before or while the query travelled.
    fn send_query(&mut self) -> Result<bool, FailureKind> {
        let query = self.router.query();
        let mut bytes = Vec::new();
        query
            .as_wire()
            .encode_into(self.router.version(), &mut bytes);
        let action = self.plan.decide(Direction::ToCache, bytes.len());
        self.trace.push(TraceEvent::Fault {
            dir: Direction::ToCache,
            action: action.clone(),
        });
        match action {
            FaultAction::Deliver => {
                self.server.receive(self.session, &bytes);
                Ok(true)
            }
            FaultAction::Stall { delay } => {
                // Latency, not loss: the query arrives late, and the
                // router's freshness timers feel every second of it.
                self.clock.advance(delay);
                self.server.receive(self.session, &bytes);
                Ok(true)
            }
            FaultAction::Drop | FaultAction::Disconnect => Ok(false),
            FaultAction::Truncate { keep } => {
                // The prefix still reaches the cache (it will sit as an
                // incomplete frame or tear the session down), but the
                // connection is gone.
                self.server
                    .receive(self.session, &bytes[..keep.min(bytes.len())]);
                Ok(false)
            }
            FaultAction::Corrupt { offset, xor } => {
                // A poisoned query still travels: the cache answers
                // whatever it decodes (often a teardown), and the round
                // proceeds to observe the consequences.
                let mut mutated = bytes;
                let at = offset.min(mutated.len().saturating_sub(1));
                if let Some(byte) = mutated.get_mut(at) {
                    *byte ^= xor;
                }
                self.server.receive(self.session, &mutated);
                Ok(true)
            }
            FaultAction::Garbage { bytes: garbage } => {
                // Garbage in place of the query: the cache will decode
                // noise and respond (usually with a fatal report).
                self.server.receive(self.session, &garbage);
                Ok(true)
            }
        }
    }

    /// Splits `raw` into wire frames and pushes each through the
    /// ToRouter fault stream onto the in-flight buffer. Loss-class
    /// faults cut the connection: the rest of the response is dropped.
    fn deliver_to_router(&mut self, raw: &[u8]) {
        for frame in split_frames(raw) {
            let action = self.plan.decide(Direction::ToRouter, frame.len());
            self.trace.push(TraceEvent::Fault {
                dir: Direction::ToRouter,
                action: action.clone(),
            });
            match action {
                FaultAction::Deliver => self.to_router.extend_from_slice(frame),
                FaultAction::Stall { delay } => {
                    self.clock.advance(delay);
                    self.to_router.extend_from_slice(frame);
                }
                FaultAction::Drop | FaultAction::Disconnect => return,
                FaultAction::Truncate { keep } => {
                    self.to_router
                        .extend_from_slice(&frame[..keep.min(frame.len())]);
                    return;
                }
                FaultAction::Corrupt { offset, xor } => {
                    let mut mutated = frame.to_vec();
                    let at = offset.min(mutated.len().saturating_sub(1));
                    if let Some(byte) = mutated.get_mut(at) {
                        *byte ^= xor;
                    }
                    self.to_router.extend_from_slice(&mutated);
                }
                FaultAction::Garbage { bytes } => {
                    self.to_router.extend_from_slice(&bytes);
                    return;
                }
            }
        }
    }

    /// Re-establishes the connection after a failed attempt: the old
    /// session is torn off the registry, the router renegotiates from
    /// its *preferred* version (downgrades are per-connection, RFC 6810
    /// §7), any half-applied delta is aborted, and the pipes start
    /// clean.
    fn reconnect(&mut self) {
        self.router.abort_response();
        self.router.renegotiate();
        self.server.close_session(self.session);
        self.session = self.server.open_session();
        self.router_negotiation = Negotiation::with_max(self.router.version());
        self.to_router.clear();
        self.trace.push(TraceEvent::Reconnect {
            version: self.router.version(),
        });
    }

    /// The downgrade flavour of reconnect: one version down, keeping
    /// the synchronized state (RFC 6810 §7 — the data is still good,
    /// only the connection version changes).
    fn reconnect_downgrade(&mut self) {
        let from = self.router.version();
        let to = from - 1;
        self.router.downgrade_to(to);
        self.server.close_session(self.session);
        self.session = self.server.open_session();
        self.router_negotiation = Negotiation::with_max(to);
        self.to_router.clear();
        self.trace.push(TraceEvent::Downgrade { from, to });
    }
}

/// Splits a byte run into wire frames on the declared big-endian
/// length at offset 4, clamped to the run — trailing partial bytes
/// form the final "frame" so faults can still hit them.
fn split_frames(raw: &[u8]) -> Vec<&[u8]> {
    let mut frames = Vec::new();
    let mut rest = raw;
    while !rest.is_empty() {
        if rest.len() < HEADER_LEN {
            frames.push(rest);
            break;
        }
        let declared = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
        let len = declared
            .clamp(HEADER_LEN, rest.len().max(HEADER_LEN))
            .min(rest.len());
        let (frame, tail) = rest.split_at(len.max(1));
        frames.push(frame);
        rest = tail;
    }
    frames
}

/// A [`Transport`] wrapper that applies a [`FaultPlan`] to a live
/// pipe, from the router's seat: `send` travels [`Direction::ToCache`],
/// `recv` travels [`Direction::ToRouter`].
///
/// Over a stream transport every fault is **connection-terminating**:
/// TCP cannot lose or mangle a middle frame and keep the byte stream
/// coherent, so drops, truncation, stalls-turned-timeouts, corruption
/// and garbage all surface as either [`TransportError::Closed`] or a
/// protocol error, and the transport stays broken until
/// [`FaultyTransport::reconnect`] installs a fresh inner pipe — exactly
/// the recover-by-reconnect discipline RFC 8210 routers implement.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    broken: bool,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, faulting per `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            plan,
            broken: false,
        }
    }

    /// `true` once a fault has cut the connection; every operation
    /// fails until [`FaultyTransport::reconnect`].
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Installs a fresh inner pipe after a fault broke the old one.
    /// The fault plan keeps its position in the seed streams — the
    /// schedule spans reconnects.
    pub fn reconnect(&mut self, inner: T) {
        self.inner = inner;
        self.broken = false;
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn poisoned() -> TransportError {
        TransportError::Protocol(PduError::BadLength {
            type_code: 0xFF,
            length: 0,
        })
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, pdu: &Pdu) -> Result<(), TransportError> {
        if self.broken {
            return Err(TransportError::Closed);
        }
        // Frame length only parameterizes the fault draw.
        let mut bytes = Vec::new();
        pdu.as_wire().encode_into(PROTOCOL_V1, &mut bytes);
        match self.plan.decide(Direction::ToCache, bytes.len()) {
            FaultAction::Deliver | FaultAction::Stall { .. } => self.inner.send(pdu),
            FaultAction::Drop | FaultAction::Truncate { .. } | FaultAction::Disconnect => {
                self.broken = true;
                Err(TransportError::Closed)
            }
            FaultAction::Corrupt { .. } | FaultAction::Garbage { .. } => {
                self.broken = true;
                Err(Self::poisoned())
            }
        }
    }

    fn recv(&mut self) -> Result<Pdu, TransportError> {
        if self.broken {
            return Err(TransportError::Closed);
        }
        match self.plan.decide(Direction::ToRouter, HEADER_LEN) {
            FaultAction::Deliver | FaultAction::Stall { .. } => self.inner.recv(),
            FaultAction::Drop | FaultAction::Truncate { .. } | FaultAction::Disconnect => {
                self.broken = true;
                Err(TransportError::Closed)
            }
            FaultAction::Corrupt { .. } | FaultAction::Garbage { .. } => {
                self.broken = true;
                Err(Self::poisoned())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::memory_pair;

    fn vrps(list: &[&str]) -> Vec<Vrp> {
        list.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn fault_plan_is_replayable() {
        let config = FaultConfig::heavy();
        let mut a = FaultPlan::new(77, config);
        let mut b = FaultPlan::new(77, config);
        for i in 0..200 {
            let len = 8 + (i % 64);
            assert_eq!(
                a.decide(Direction::ToRouter, len),
                b.decide(Direction::ToRouter, len)
            );
            assert_eq!(
                a.decide(Direction::ToCache, len),
                b.decide(Direction::ToCache, len)
            );
        }
    }

    #[test]
    fn fault_plan_directions_are_independent_streams() {
        // Consuming one direction's stream must not perturb the other.
        let config = FaultConfig::heavy();
        let mut interleaved = FaultPlan::new(9, config);
        let mut solo = FaultPlan::new(9, config);
        let mut got = Vec::new();
        for _ in 0..50 {
            got.push(interleaved.decide(Direction::ToRouter, 32));
            let _ = interleaved.decide(Direction::ToCache, 32);
        }
        let want: Vec<FaultAction> = (0..50)
            .map(|_| solo.decide(Direction::ToRouter, 32))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn quiet_plan_always_delivers() {
        let mut plan = FaultPlan::quiet();
        for _ in 0..100 {
            assert_eq!(plan.decide(Direction::ToRouter, 16), FaultAction::Deliver);
            assert_eq!(plan.decide(Direction::ToCache, 16), FaultAction::Deliver);
        }
    }

    #[test]
    fn backoff_grows_to_the_cap_and_resets() {
        let base = Duration::from_secs(1);
        let cap = Duration::from_secs(60);
        let mut b = Backoff::new(3, base, cap);
        let first = b.next_delay();
        assert!(first >= base && first <= base + base / 4);
        let mut last = first;
        for _ in 0..10 {
            last = b.next_delay();
        }
        // 2^10 seconds saturates at the cap (plus jitter).
        assert!(last >= cap && last <= cap + cap / 4, "{last:?}");
        b.reset();
        let again = b.next_delay();
        assert!(again >= base && again <= base + base / 4);
    }

    #[test]
    fn chaos_without_faults_syncs_in_one_attempt() {
        let mut chaos = ChaosSession::new(7, &vrps(&["10.0.0.0/8 => AS1"]), 1, FaultConfig::none());
        let settled = chaos.settle();
        assert!(settled.converged);
        assert_eq!(settled.attempts, 1);
        assert_eq!(settled.freshness, Freshness::Fresh);
        assert!(settled.invariant_holds());
        chaos.apply_epoch(&vrps(&["11.0.0.0/8 => AS2"]), &[]);
        let settled = chaos.settle();
        assert!(settled.converged);
        assert!(chaos.converged());
    }

    #[test]
    fn chaos_under_heavy_faults_upholds_the_invariant() {
        for seed in 0..20u64 {
            let mut chaos =
                ChaosSession::new(5, &vrps(&["10.0.0.0/8 => AS1"]), seed, FaultConfig::heavy());
            for i in 0u32..6 {
                chaos.apply_epoch(&vrps(&[&format!("10.{}.0.0/16 => AS{}", i, 100 + i)]), &[]);
                let settled = chaos.settle();
                assert!(
                    settled.invariant_holds(),
                    "seed {seed} epoch {i}: converged={} freshness={:?}",
                    settled.converged,
                    settled.freshness
                );
            }
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed: u64| {
            let mut chaos =
                ChaosSession::new(5, &vrps(&["10.0.0.0/8 => AS1"]), seed, FaultConfig::heavy());
            for i in 0u32..4 {
                chaos.apply_epoch(&vrps(&[&format!("10.{}.0.0/16 => AS{}", i, 50 + i)]), &[]);
                chaos.settle();
            }
            chaos.trace().to_vec()
        };
        assert_eq!(run(42), run(42), "same seed must replay byte-for-byte");
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn downgraded_router_renegotiates_after_faulted_reconnect() {
        // v1 router against a v0 cache: every fresh connection must
        // re-open at the preferred v1 and be downgraded from scratch —
        // downgrades are per-connection, not per-router.
        let options = ChaosOptions {
            cache_version: PROTOCOL_V0,
            router_version: PROTOCOL_V1,
            ..ChaosOptions::default()
        };
        let mut chaos = ChaosSession::with_options(
            11,
            &vrps(&["10.0.0.0/8 => AS1"]),
            4,
            FaultConfig::heavy(),
            options,
        );
        let mut downgrades = 0;
        for i in 0u32..8 {
            chaos.apply_epoch(&vrps(&[&format!("10.{}.0.0/16 => AS{}", i, 70 + i)]), &[]);
            let settled = chaos.settle();
            assert!(settled.invariant_holds());
        }
        for event in chaos.trace() {
            if matches!(event, TraceEvent::Downgrade { .. }) {
                downgrades += 1;
            }
        }
        let reconnects = chaos
            .trace()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Reconnect { .. }))
            .count();
        if reconnects > 0 {
            assert!(
                downgrades > 1,
                "each post-fault reconnect must renegotiate from v1 \
                 ({reconnects} reconnects, {downgrades} downgrades)"
            );
        }
        // Every reconnect re-opened at the preferred version.
        for event in chaos.trace() {
            if let TraceEvent::Reconnect { version } = event {
                assert_eq!(*version, PROTOCOL_V1);
            }
        }
    }

    #[test]
    fn blackout_goes_stale_then_expires_then_heals() {
        // Total loss: every frame dropped. The router must degrade
        // honestly (Stale → Expired, data flushed), then heal to Fresh
        // once the pipe clears.
        let blackout = FaultConfig {
            drop: 1.0,
            ..FaultConfig::none()
        };
        let mut chaos = ChaosSession::new(3, &vrps(&["10.0.0.0/8 => AS1"]), 8, blackout);
        // First, sync cleanly by swapping in a quiet plan.
        chaos.plan = FaultPlan::quiet();
        assert!(chaos.settle().converged);
        assert_eq!(chaos.router().freshness(), Freshness::Fresh);

        // Now the blackout: churn the cache, watch the router degrade.
        chaos.plan = FaultPlan::new(8, blackout);
        chaos.apply_epoch(&vrps(&["11.0.0.0/8 => AS2"]), &[]);
        let settled = chaos.settle();
        assert!(!settled.converged);
        assert_ne!(settled.freshness, Freshness::Fresh);
        assert!(settled.invariant_holds());
        assert!(
            chaos.trace().contains(&TraceEvent::Expired),
            "a long blackout must trip the Expire timer"
        );
        assert!(chaos.router().vrps().is_empty(), "expired data is flushed");

        // Heal the pipe: full recovery to Fresh and convergence.
        chaos.plan = FaultPlan::quiet();
        let settled = chaos.settle();
        assert!(settled.converged);
        assert_eq!(settled.freshness, Freshness::Fresh);
    }

    #[test]
    fn faulty_transport_breaks_and_reconnects() {
        let all_drop = FaultConfig {
            drop: 1.0,
            ..FaultConfig::none()
        };
        let (a, _b) = memory_pair();
        let mut faulty = FaultyTransport::new(a, FaultPlan::new(1, all_drop));
        assert!(!faulty.is_broken());
        let err = faulty.send(&Pdu::ResetQuery).unwrap_err();
        assert_eq!(err, TransportError::Closed);
        assert!(faulty.is_broken());
        // Broken stays broken...
        assert!(faulty.send(&Pdu::ResetQuery).is_err());
        assert!(faulty.recv().is_err());
        // ...until a reconnect installs a fresh pipe.
        let (a2, _b2) = memory_pair();
        faulty.reconnect(a2);
        assert!(!faulty.is_broken());
    }

    #[test]
    fn split_frames_recovers_frame_boundaries() {
        let mut bytes = Vec::new();
        Pdu::ResetQuery
            .as_wire()
            .encode_into(PROTOCOL_V1, &mut bytes);
        let one = bytes.len();
        Pdu::SerialQuery {
            session_id: 1,
            serial: 2,
        }
        .as_wire()
        .encode_into(PROTOCOL_V1, &mut bytes);
        let frames = split_frames(&bytes);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].len(), one);
        // A trailing partial frame still comes out as a chunk.
        let frames = split_frames(&bytes[..one + 3]);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].len(), 3);
    }
}
