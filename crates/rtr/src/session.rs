//! A live cache ↔ router session: the churn stream as real PDUs.
//!
//! The sans-io state machines in [`cache`](crate::cache) and
//! [`client`](crate::client) are exercised here as one long-running
//! session over the in-memory transport: every epoch of a churn timeline
//! becomes a [`CacheServer::update_delta`] call, the Serial Notify travels
//! down the wire, the router answers with a Serial Query, and the delta
//! response (or a Cache Reset, once the router has fallen behind the
//! cache's history window) flows back — so incremental revalidation
//! downstream consumes exactly what RFC 8210 put on the wire, not a
//! function-call shortcut.
//!
//! [`LiveSession`] owns both endpoints plus the transport pair; tests,
//! the `churn` bench bin, and `examples/live_cache.rs` all drive it.

use rpki_roa::Vrp;

use crate::cache::CacheServer;
use crate::client::{ClientError, RouterClient};
use crate::pdu::Pdu;
use crate::transport::{memory_pair, MemoryTransport, Transport, TransportError};

/// What one synchronization round did, counted on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Prefix PDUs carrying the announce flag.
    pub announced: usize,
    /// Prefix PDUs carrying the withdraw flag.
    pub withdrawn: usize,
    /// Total PDUs the router received this round (including notifies,
    /// Cache Response / End of Data framing, and any Cache Reset).
    pub pdus: usize,
    /// `true` if the cache answered with a Cache Reset and the router had
    /// to rebuild its set from a full Reset Query response.
    pub reset: bool,
}

/// Session failures: a protocol error on the router side or a broken
/// transport.
#[derive(Debug)]
pub enum SessionError {
    /// The router-side state machine rejected a PDU.
    Client(ClientError),
    /// The pipe between the endpoints failed.
    Transport(TransportError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Client(e) => write!(f, "client: {e}"),
            SessionError::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ClientError> for SessionError {
    fn from(e: ClientError) -> Self {
        // Keep transport failures in their own arm even when they arrive
        // wrapped by the client.
        match e {
            ClientError::Transport(t) => SessionError::Transport(t),
            other => SessionError::Client(other),
        }
    }
}

impl From<TransportError> for SessionError {
    fn from(e: TransportError) -> Self {
        SessionError::Transport(e)
    }
}

/// A cache server and a router client joined by an in-memory transport,
/// stepped serially: update the cache, then let the router catch up.
#[derive(Debug)]
pub struct LiveSession {
    cache: CacheServer,
    router: RouterClient,
    /// The cache's end of the pipe.
    cache_side: MemoryTransport,
    /// The router's end of the pipe.
    router_side: MemoryTransport,
}

impl LiveSession {
    /// Wires a cache holding `vrps` to a fresh, unsynchronized router.
    pub fn new(session_id: u16, vrps: &[Vrp]) -> LiveSession {
        let (router_side, cache_side) = memory_pair();
        LiveSession {
            cache: CacheServer::new(session_id, vrps),
            router: RouterClient::new(),
            cache_side,
            router_side,
        }
    }

    /// The cache endpoint (e.g. to inspect serial/history state).
    pub fn cache(&self) -> &CacheServer {
        &self.cache
    }

    /// The router endpoint (e.g. to read the synchronized VRP set).
    pub fn router(&self) -> &RouterClient {
        &self.router
    }

    /// Applies one churn epoch to the cache, pushes the Serial Notify down
    /// the wire, and runs the router's synchronization round to
    /// completion. Returns the on-wire stats.
    pub fn apply_epoch(
        &mut self,
        announced: &[Vrp],
        withdrawn: &[Vrp],
    ) -> Result<SyncStats, SessionError> {
        let notify = self.cache.update_delta(announced, withdrawn);
        self.cache_side.send(&notify)?;
        self.synchronize()
    }

    /// One full synchronization round: the router sends the query its
    /// state calls for, the cache serves it, and the router consumes the
    /// response — following a Cache Reset with a Reset Query, exactly the
    /// RFC 8210 §8 recovery path.
    pub fn synchronize(&mut self) -> Result<SyncStats, SessionError> {
        let mut stats = SyncStats::default();
        // Bounded retries: a Cache Reset forces exactly one fallback to a
        // Reset Query; anything beyond that is a protocol loop.
        for _attempt in 0..2 {
            self.router_side.send(&self.router.query())?;
            self.cache.serve_one(&mut self.cache_side)?;
            let mut reset = false;
            loop {
                let pdu = self.router_side.recv()?;
                stats.pdus += 1;
                match &pdu {
                    Pdu::Prefix { flags, .. } => match flags {
                        crate::pdu::Flags::Announce => stats.announced += 1,
                        crate::pdu::Flags::Withdraw => stats.withdrawn += 1,
                    },
                    Pdu::CacheReset => {
                        stats.reset = true;
                        reset = true;
                    }
                    _ => {}
                }
                if self.router.handle(&pdu)? {
                    return Ok(stats);
                }
                if reset {
                    break; // fall back to a Reset Query
                }
            }
        }
        Err(SessionError::Transport(TransportError::Closed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn vrps(list: &[&str]) -> Vec<Vrp> {
        list.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn initial_sync_then_deltas() {
        let mut s = LiveSession::new(21, &vrps(&["10.0.0.0/8 => AS1"]));
        let stats = s.synchronize().unwrap();
        assert_eq!(stats.announced, 1);
        assert!(!stats.reset);
        assert_eq!(s.router().vrps().len(), 1);

        let stats = s
            .apply_epoch(&[vrp("11.0.0.0/8 => AS2")], &[vrp("10.0.0.0/8 => AS1")])
            .unwrap();
        assert_eq!((stats.announced, stats.withdrawn), (1, 1));
        assert_eq!(s.router().serial(), 1);
        let got: Vec<Vrp> = s.router().vrps().iter().copied().collect();
        assert_eq!(got, vrps(&["11.0.0.0/8 => AS2"]));
    }

    #[test]
    fn router_mirrors_cache_across_many_epochs() {
        let mut s = LiveSession::new(3, &vrps(&["10.0.0.0/8 => AS1"]));
        s.synchronize().unwrap();
        for i in 0u32..40 {
            let fresh = vrp(&format!("10.{}.0.0/16 => AS{}", i % 200, 100 + i));
            s.apply_epoch(&[fresh], &[]).unwrap();
            let cache_set: Vec<&Vrp> = s.cache().vrps().collect();
            let router_set: Vec<&Vrp> = s.router().vrps().iter().collect();
            assert_eq!(cache_set, router_set, "epoch {i}");
            assert_eq!(s.router().serial(), s.cache().serial());
        }
    }

    #[test]
    fn stale_router_recovers_via_cache_reset() {
        let mut s = LiveSession::new(8, &vrps(&["10.0.0.0/8 => AS1"]));
        s.synchronize().unwrap();
        // Age the router's serial out of the history window without
        // letting it catch up.
        for i in 0u32..40 {
            s.cache
                .update_delta(&[vrp(&format!("172.16.{}.0/24 => AS7", i % 256))], &[]);
        }
        let stats = s.synchronize().unwrap();
        assert!(stats.reset, "stale serial must force a Cache Reset");
        // Recovery delivers the full current set.
        let got: Vec<&Vrp> = s.router().vrps().iter().collect();
        let expect: Vec<&Vrp> = s.cache().vrps().collect();
        assert_eq!(got, expect);
        assert_eq!(s.router().serial(), s.cache().serial());
    }
}
