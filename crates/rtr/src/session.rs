//! A live cache ↔ router session: the churn stream as real PDUs.
//!
//! The sans-io state machines in [`cache`](crate::cache) and
//! [`client`](crate::client) are exercised here as one long-running
//! session **at the byte level**: every epoch of a churn timeline
//! becomes a [`FanoutServer::update_delta_and_notify`] call, the Serial
//! Notify is queued on the session's outbox through [`crate::wire`],
//! the router answers with a Serial Query, and the delta response (or a
//! Cache Reset, once the router has fallen behind the cache's history
//! window) flows back — so incremental revalidation downstream consumes
//! exactly what RFC 8210 put on the wire, not a function-call shortcut.
//!
//! The cache side runs through the same [`FanoutServer`] fan-out core
//! that the concurrent TCP service uses, so a single `LiveSession` and
//! a thousand-router fleet exercise one code path; the outbox bound is
//! lifted here because the driver always drains between epochs.
//!
//! The session also exercises version negotiation end to end: both
//! endpoints carry a protocol version, and a version-capped cache
//! answering a newer router triggers the RFC 6810 downgrade — the
//! recoverable Unsupported-Version report, a reconnect one version
//! down, and a fresh synchronization (visible in
//! [`SyncStats::downgraded`]).
//!
//! [`LiveSession`] owns both endpoints plus the byte pipes; tests, the
//! `churn` bench bin, and `examples/live_cache.rs` all drive it.

use rpki_roa::Vrp;

use crate::cache::CacheServer;
use crate::client::{ClientError, RouterClient};
use crate::clock::Clock;
use crate::pdu::{Flags, Pdu, PduError, PROTOCOL_V0, PROTOCOL_V1};
use crate::server::{FanoutServer, ServerConfig, SessionId};
use crate::transport::TransportError;
use crate::wire::{self, ErrorClass, Negotiation};

/// What one synchronization round did, counted on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Prefix PDUs carrying the announce flag.
    pub announced: usize,
    /// Prefix PDUs carrying the withdraw flag.
    pub withdrawn: usize,
    /// Total PDUs the router received this round (including notifies,
    /// Cache Response / End of Data framing, and any Cache Reset).
    pub pdus: usize,
    /// Bytes that crossed the wire this round, both directions —
    /// queries, responses, and any closing Error Report.
    pub bytes: usize,
    /// `true` if the cache answered with a Cache Reset and the router had
    /// to rebuild its set from a full Reset Query response.
    pub reset: bool,
    /// `true` if the round began at a version the cache rejected and the
    /// router reconnected one version down (RFC 6810 downgrade).
    pub downgraded: bool,
}

/// Session failures, split by which layer gave up: the router-side
/// state machine, the wire grammar, the byte pipe, or the retry budget.
///
/// The taxonomy matters to recovery code: a [`SessionError::Protocol`]
/// or [`SessionError::Client`] means the *peer* (or the stream carrying
/// it) is misbehaving and a reconnect-plus-resync is the only cure,
/// while a [`SessionError::Timeout`] means both endpoints were polite
/// but the exchange never completed inside the configured round budget
/// ([`SessionConfig::max_rounds`]) — the caller should back off and
/// retry rather than escalate.
#[derive(Debug)]
pub enum SessionError {
    /// The router-side state machine rejected a PDU it decoded fine —
    /// wrong session id, unexpected sequence, a cache-side Error Report.
    Client(ClientError),
    /// The bytes on the wire failed to parse as the negotiated
    /// protocol: a framing or grammar violation, not a state error.
    Protocol(PduError),
    /// The pipe between the endpoints failed (closed, I/O error).
    Transport(TransportError),
    /// The synchronization exchange exceeded its round budget without
    /// reaching End of Data — neither side faulted, progress just
    /// stopped (a protocol loop, or a response that ran dry).
    Timeout {
        /// Rounds attempted before giving up.
        rounds: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Client(e) => write!(f, "client: {e}"),
            SessionError::Protocol(e) => write!(f, "protocol: {e}"),
            SessionError::Transport(e) => write!(f, "transport: {e}"),
            SessionError::Timeout { rounds } => {
                write!(f, "synchronization incomplete after {rounds} round(s)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ClientError> for SessionError {
    fn from(e: ClientError) -> Self {
        // Keep lower-layer failures in their own arms even when they
        // arrive wrapped by the client.
        match e {
            ClientError::Transport(TransportError::Protocol(p)) => SessionError::Protocol(p),
            ClientError::Transport(t) => SessionError::Transport(t),
            other => SessionError::Client(other),
        }
    }
}

impl From<TransportError> for SessionError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Protocol(p) => SessionError::Protocol(p),
            other => SessionError::Transport(other),
        }
    }
}

impl From<PduError> for SessionError {
    fn from(e: PduError) -> Self {
        SessionError::Protocol(e)
    }
}

/// Knobs for a [`LiveSession`]: version caps on each endpoint, the
/// retry budget, and the clock the router's RFC 8210 timers read.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Highest protocol version the cache side speaks.
    pub cache_version: u8,
    /// Version the router opens with (downgrades on rejection).
    pub router_version: u8,
    /// Upper bound on query/response rounds inside one
    /// [`LiveSession::synchronize`] call before it fails with
    /// [`SessionError::Timeout`]. Each round is one query plus its full
    /// response; a Cache Reset fallback or a version downgrade each
    /// consume a round. The default of 3 covers the deepest legitimate
    /// chain (downgrade → Cache Reset → full rebuild).
    pub max_rounds: usize,
    /// Clock handed to the router client for freshness bookkeeping;
    /// defaults to the system clock, tests pass [`Clock::manual`].
    pub clock: Clock,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            cache_version: PROTOCOL_V1,
            router_version: PROTOCOL_V1,
            max_rounds: 3,
            clock: Clock::system(),
        }
    }
}

/// A cache server and a router client joined by in-memory byte pipes,
/// stepped serially: update the cache, then let the router catch up.
#[derive(Debug)]
pub struct LiveSession {
    /// The cache side, behind the same fan-out core the TCP service
    /// uses, with one registered session.
    server: FanoutServer,
    session: SessionId,
    router: RouterClient,
    /// The router's view (it accepts responses up to its own version).
    router_negotiation: Negotiation,
    /// Bytes in flight cache → router.
    to_router: Vec<u8>,
    /// Round budget per synchronization call.
    max_rounds: usize,
}

impl LiveSession {
    /// Wires a cache holding `vrps` to a fresh, unsynchronized router,
    /// both speaking protocol version 1.
    pub fn new(session_id: u16, vrps: &[Vrp]) -> LiveSession {
        LiveSession::with_versions(session_id, vrps, PROTOCOL_V1, PROTOCOL_V1)
    }

    /// A session pinned to one protocol version on both sides — the
    /// version scenario axis for tests and benches.
    pub fn with_version(session_id: u16, vrps: &[Vrp], version: u8) -> LiveSession {
        LiveSession::with_versions(session_id, vrps, version, version)
    }

    /// A session with independent version caps: `cache_version` is the
    /// highest version the cache speaks, `router_version` what the
    /// router opens with. A router above the cache's cap triggers the
    /// RFC 6810 downgrade on first synchronization.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions.
    pub fn with_versions(
        session_id: u16,
        vrps: &[Vrp],
        cache_version: u8,
        router_version: u8,
    ) -> LiveSession {
        LiveSession::with_session_config(
            session_id,
            vrps,
            SessionConfig {
                cache_version,
                router_version,
                ..SessionConfig::default()
            },
        )
    }

    /// The fully-parameterized constructor: version caps, round budget,
    /// and the clock the router's freshness timers read all come from
    /// `config`.
    ///
    /// # Panics
    ///
    /// Panics on unknown versions.
    pub fn with_session_config(
        session_id: u16,
        vrps: &[Vrp],
        config: SessionConfig,
    ) -> LiveSession {
        let cache = CacheServer::with_version(session_id, vrps, config.cache_version);
        // The single-session driver always drains between rounds, so
        // backpressure would only get in the way of deterministic
        // byte accounting.
        let server_config = ServerConfig {
            outbox_limit: usize::MAX,
            ..ServerConfig::default()
        };
        let mut server = FanoutServer::with_clock(cache, server_config, config.clock.clone());
        let session = server.open_session();
        let mut router = RouterClient::with_version(config.router_version);
        router.set_clock(config.clock);
        let router_negotiation = Negotiation::with_max(config.router_version);
        LiveSession {
            server,
            session,
            router,
            router_negotiation,
            to_router: Vec::new(),
            max_rounds: config.max_rounds,
        }
    }

    /// The cache endpoint (e.g. to inspect serial/history state).
    pub fn cache(&self) -> &CacheServer {
        self.server.cache()
    }

    /// The fan-out core the cache side runs on (e.g. to mutate the
    /// cache without notifying, or to read fan-out stats).
    pub fn server_mut(&mut self) -> &mut FanoutServer {
        &mut self.server
    }

    /// The router endpoint (e.g. to read the synchronized VRP set).
    pub fn router(&self) -> &RouterClient {
        &self.router
    }

    /// The version the session has negotiated on the wire, once pinned.
    pub fn negotiated_version(&self) -> Option<u8> {
        self.server.negotiated_version(self.session)
    }

    /// Applies one churn epoch to the cache, pushes the Serial Notify down
    /// the wire, and runs the router's synchronization round to
    /// completion. Returns the on-wire stats.
    pub fn apply_epoch(
        &mut self,
        announced: &[Vrp],
        withdrawn: &[Vrp],
    ) -> Result<SyncStats, SessionError> {
        self.server.update_delta_and_notify(announced, withdrawn);
        self.synchronize()
    }

    /// One full synchronization round: the router sends the query its
    /// state calls for, the cache serves it over the byte pipe, and the
    /// router consumes the response — following a Cache Reset with a
    /// Reset Query (RFC 8210 §8), and a recoverable version rejection
    /// with a reconnect one version down (RFC 6810 §7).
    pub fn synchronize(&mut self) -> Result<SyncStats, SessionError> {
        let mut stats = SyncStats::default();
        // Bounded retries: at most one version downgrade plus one Cache
        // Reset fallback inside the default budget; anything beyond
        // that is a protocol loop and times out.
        let mut downgraded = false;
        let max_rounds = self.max_rounds.max(1);
        for _attempt in 0..max_rounds {
            self.send_query(&mut stats);
            if let Some(error) = self.pump_cache(&mut stats) {
                let can_downgrade = error.class() == ErrorClass::Recoverable
                    && !downgraded
                    && self.router.version() > PROTOCOL_V0;
                if !can_downgrade {
                    return Err(error.into());
                }
                downgraded = true;
                stats.downgraded = true;
                // Account for the closing Error Report on the wire, then
                // reconnect one version down (a fresh connection: empty
                // pipes, unpinned negotiations).
                while self.recv_pdu(&mut stats)?.is_some() {}
                self.reconnect(self.router.version() - 1);
                continue;
            }
            let mut reset = false;
            while let Some(pdu) = self.recv_pdu(&mut stats)? {
                match &pdu {
                    Pdu::Prefix { flags, .. } => match flags {
                        Flags::Announce => stats.announced += 1,
                        Flags::Withdraw => stats.withdrawn += 1,
                    },
                    Pdu::CacheReset => {
                        stats.reset = true;
                        reset = true;
                    }
                    _ => {}
                }
                if self.router.handle(&pdu)? {
                    return Ok(stats);
                }
                if reset {
                    break; // fall back to a Reset Query
                }
            }
            if !reset {
                // The response ran dry without an End of Data: the
                // round made no progress and no further round can.
                return Err(SessionError::Timeout { rounds: max_rounds });
            }
        }
        Err(SessionError::Timeout { rounds: max_rounds })
    }

    /// Encodes the router's next query and feeds it to the fan-out core
    /// at the router's version.
    fn send_query(&mut self, stats: &mut SyncStats) {
        let query = self.router.query();
        let mut bytes = Vec::new();
        query
            .as_wire()
            .encode_into(self.router.version(), &mut bytes);
        stats.bytes += bytes.len();
        self.server.receive(self.session, &bytes);
    }

    /// Drains the session's outbox onto the router-bound pipe. Returns
    /// the teardown error, if the cache tore the session down.
    fn pump_cache(&mut self, stats: &mut SyncStats) -> Option<PduError> {
        stats.bytes += self.server.drain_output(self.session, &mut self.to_router);
        self.server.session_error(self.session).cloned()
    }

    /// Decodes the next PDU off the router-bound pipe, if one is
    /// complete, checking it against the router-side negotiation.
    fn recv_pdu(&mut self, stats: &mut SyncStats) -> Result<Option<Pdu>, SessionError> {
        let Some(frame) = wire::decode_frame(&self.to_router)? else {
            return Ok(None);
        };
        self.router_negotiation.accept(frame.version)?;
        let pdu = frame.pdu.to_owned();
        let len = frame.len;
        self.to_router.drain(..len);
        stats.pdus += 1;
        Ok(Some(pdu))
    }

    /// Re-establishes the connection at a lower version after a
    /// recoverable rejection: the torn session is closed on the
    /// registry and a fresh one opened, like a real reconnect.
    fn reconnect(&mut self, version: u8) {
        self.router.downgrade_to(version);
        self.server.close_session(self.session);
        self.session = self.server.open_session();
        self.router_negotiation = Negotiation::with_max(version);
        self.to_router.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn vrps(list: &[&str]) -> Vec<Vrp> {
        list.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn initial_sync_then_deltas() {
        let mut s = LiveSession::new(21, &vrps(&["10.0.0.0/8 => AS1"]));
        let stats = s.synchronize().unwrap();
        assert_eq!(stats.announced, 1);
        assert!(!stats.reset);
        assert!(stats.bytes > 0, "a real sync moves real bytes");
        assert_eq!(s.router().vrps().len(), 1);
        assert_eq!(s.negotiated_version(), Some(PROTOCOL_V1));

        let stats = s
            .apply_epoch(&[vrp("11.0.0.0/8 => AS2")], &[vrp("10.0.0.0/8 => AS1")])
            .unwrap();
        assert_eq!((stats.announced, stats.withdrawn), (1, 1));
        assert_eq!(s.router().serial(), 1);
        let got: Vec<Vrp> = s.router().vrps().iter().copied().collect();
        assert_eq!(got, vrps(&["11.0.0.0/8 => AS2"]));
    }

    #[test]
    fn router_mirrors_cache_across_many_epochs() {
        let mut s = LiveSession::new(3, &vrps(&["10.0.0.0/8 => AS1"]));
        s.synchronize().unwrap();
        for i in 0u32..40 {
            let fresh = vrp(&format!("10.{}.0.0/16 => AS{}", i % 200, 100 + i));
            s.apply_epoch(&[fresh], &[]).unwrap();
            let cache_set: Vec<Vrp> = s.cache().vrps().cloned().collect();
            let router_set: Vec<Vrp> = s.router().vrps().iter().cloned().collect();
            assert_eq!(cache_set, router_set, "epoch {i}");
            assert_eq!(s.router().serial(), s.cache().serial());
        }
    }

    #[test]
    fn stale_router_recovers_via_cache_reset() {
        let mut s = LiveSession::new(8, &vrps(&["10.0.0.0/8 => AS1"]));
        s.synchronize().unwrap();
        // Age the router's serial out of the history window without
        // letting it catch up (no notify: mutate the cache directly).
        for i in 0u32..40 {
            s.server_mut().with_cache(|c| {
                c.update_delta(&[vrp(&format!("172.16.{}.0/24 => AS7", i % 256))], &[]);
            });
        }
        let stats = s.synchronize().unwrap();
        assert!(stats.reset, "stale serial must force a Cache Reset");
        // Recovery delivers the full current set.
        let got: Vec<Vrp> = s.router().vrps().iter().cloned().collect();
        let expect: Vec<Vrp> = s.cache().vrps().cloned().collect();
        assert_eq!(got, expect);
        assert_eq!(s.router().serial(), s.cache().serial());
    }

    #[test]
    fn v0_session_end_to_end() {
        let mut s = LiveSession::with_version(5, &vrps(&["10.0.0.0/8 => AS1"]), PROTOCOL_V0);
        let stats = s.synchronize().unwrap();
        assert_eq!(stats.announced, 1);
        assert!(!stats.downgraded);
        assert_eq!(s.negotiated_version(), Some(PROTOCOL_V0));
        // Deltas keep flowing at v0 (12-byte End of Data and all).
        s.apply_epoch(&[vrp("11.0.0.0/8 => AS2")], &[]).unwrap();
        assert_eq!(s.router().vrps().len(), 2);
        assert_eq!(s.router().serial(), s.cache().serial());
    }

    #[test]
    fn v1_router_downgrades_to_v0_cache() {
        let mut s = LiveSession::with_versions(
            9,
            &vrps(&["10.0.0.0/8 => AS1", "11.0.0.0/8 => AS2"]),
            PROTOCOL_V0,
            PROTOCOL_V1,
        );
        let stats = s.synchronize().unwrap();
        assert!(stats.downgraded, "the v1 opener must be rejected");
        assert_eq!(s.router().version(), PROTOCOL_V0);
        assert_eq!(s.negotiated_version(), Some(PROTOCOL_V0));
        assert_eq!(s.router().vrps().len(), 2);
        // The session stays healthy at v0 afterwards.
        let stats = s.apply_epoch(&[vrp("12.0.0.0/8 => AS3")], &[]).unwrap();
        assert!(!stats.downgraded);
        assert_eq!(s.router().vrps().len(), 3);
    }

    #[test]
    fn exhausted_round_budget_is_a_timeout() {
        // A stale router needs two rounds (Serial Query → Cache Reset,
        // then the Reset Query rebuild); a budget of one must fail with
        // the typed timeout, not a transport error.
        let mut s = LiveSession::with_session_config(
            8,
            &vrps(&["10.0.0.0/8 => AS1"]),
            SessionConfig {
                max_rounds: 1,
                ..SessionConfig::default()
            },
        );
        s.synchronize().unwrap();
        for i in 0u32..40 {
            s.server_mut().with_cache(|c| {
                c.update_delta(&[vrp(&format!("172.16.{}.0/24 => AS7", i % 256))], &[]);
            });
        }
        match s.synchronize() {
            Err(SessionError::Timeout { rounds }) => assert_eq!(rounds, 1),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn manual_clock_threads_through_to_router_freshness() {
        use crate::client::Freshness;
        use crate::pdu::Timing;
        use std::time::Duration;

        let clock = Clock::manual();
        let mut s = LiveSession::with_session_config(
            4,
            &vrps(&["10.0.0.0/8 => AS1"]),
            SessionConfig {
                clock: clock.clone(),
                ..SessionConfig::default()
            },
        );
        s.server_mut().with_cache(|c| {
            c.set_timing(Timing {
                refresh: 10,
                retry: 5,
                expire: 30,
            })
        });
        s.synchronize().unwrap();
        assert_eq!(s.router().freshness(), Freshness::Fresh);
        clock.advance(Duration::from_secs(11));
        assert!(matches!(s.router().freshness(), Freshness::Stale { .. }));
        clock.advance(Duration::from_secs(20));
        assert_eq!(s.router().freshness(), Freshness::Expired);
        // A new synchronization round restores freshness.
        s.apply_epoch(&[vrp("11.0.0.0/8 => AS2")], &[]).unwrap();
        assert_eq!(s.router().freshness(), Freshness::Fresh);
    }

    #[test]
    fn v0_router_works_against_v1_cache() {
        // The other direction needs no downgrade: the v1-capable cache
        // simply answers at the router's v0.
        let mut s =
            LiveSession::with_versions(2, &vrps(&["10.0.0.0/8 => AS1"]), PROTOCOL_V1, PROTOCOL_V0);
        let stats = s.synchronize().unwrap();
        assert!(!stats.downgraded);
        assert_eq!(s.negotiated_version(), Some(PROTOCOL_V0));
        assert_eq!(s.router().vrps().len(), 1);
    }
}
