use std::fmt;

use rpki_prefix::Prefix;

use crate::{Asn, RouteOrigin, Vrp};

/// One prefix entry inside a ROA: an IP prefix plus an optional maxLength
/// (RFC 6482 `ROAIPAddress`).
///
/// `max_len: None` means the ROA authorizes exactly this prefix — the
/// conservative form the paper recommends (§8). `Some(m)` authorizes every
/// subprefix up to length `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoaPrefix {
    /// The authorized prefix.
    pub prefix: Prefix,
    /// Optional maxLength attribute.
    pub max_len: Option<u8>,
}

impl RoaPrefix {
    /// An entry without maxLength.
    pub fn exact(prefix: Prefix) -> Self {
        RoaPrefix {
            prefix,
            max_len: None,
        }
    }

    /// An entry with an explicit maxLength.
    pub fn with_max_len(prefix: Prefix, max_len: u8) -> Self {
        RoaPrefix {
            prefix,
            max_len: Some(max_len),
        }
    }

    /// The effective maxLength: the explicit attribute, or the prefix
    /// length when absent (RFC 6482 §4).
    pub fn effective_max_len(&self) -> u8 {
        self.max_len.unwrap_or_else(|| self.prefix.len())
    }

    /// RFC 6482 validity: an explicit maxLength must lie between the prefix
    /// length and the address-family maximum.
    pub fn is_well_formed(&self) -> bool {
        match self.max_len {
            None => true,
            Some(m) => m >= self.prefix.len() && m <= self.prefix.max_len(),
        }
    }
}

impl fmt::Display for RoaPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max_len {
            Some(m) => write!(f, "{}-{}", self.prefix, m),
            None => write!(f, "{}", self.prefix),
        }
    }
}

/// Errors constructing a [`Roa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoaError {
    /// RFC 6482 requires at least one prefix.
    EmptyPrefixSet,
    /// An entry's maxLength is below its prefix length or beyond the family
    /// maximum.
    BadMaxLength(RoaPrefix),
}

impl fmt::Display for RoaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoaError::EmptyPrefixSet => write!(f, "ROA contains no prefixes"),
            RoaError::BadMaxLength(p) => write!(f, "ROA entry {p} has invalid maxLength"),
        }
    }
}

impl std::error::Error for RoaError {}

/// A Route Origin Authorization (RFC 6482): a single origin AS authorized
/// to announce a *set* of prefixes, each with an optional maxLength.
///
/// The paper leans on the set-ness (§3, §5): "multiple ROAs are not
/// required since ROAs support sets of IP prefixes" — converting a
/// non-minimal maxLength-using ROA to a minimal one never needs extra ROA
/// objects, only more entries inside the same object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Roa {
    asn: Asn,
    prefixes: Vec<RoaPrefix>,
}

impl Roa {
    /// Creates a ROA, validating RFC 6482 constraints. Entries are sorted
    /// and de-duplicated so equal authorization sets compare equal.
    pub fn new(asn: Asn, mut prefixes: Vec<RoaPrefix>) -> Result<Roa, RoaError> {
        if prefixes.is_empty() {
            return Err(RoaError::EmptyPrefixSet);
        }
        if let Some(bad) = prefixes.iter().find(|p| !p.is_well_formed()) {
            return Err(RoaError::BadMaxLength(*bad));
        }
        prefixes.sort_unstable();
        prefixes.dedup();
        Ok(Roa { asn, prefixes })
    }

    /// The authorized origin AS.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The prefix entries, sorted.
    pub fn prefixes(&self) -> &[RoaPrefix] {
        &self.prefixes
    }

    /// The number of prefix entries.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }

    /// `true` if any entry carries an explicit maxLength beyond its prefix
    /// length — the "maxLength-using" ROAs of §6.
    pub fn uses_max_len(&self) -> bool {
        self.prefixes
            .iter()
            .any(|p| p.effective_max_len() > p.prefix.len())
    }

    /// The VRPs (PDUs) this ROA expands to: one per prefix entry, with the
    /// effective maxLength materialized.
    pub fn vrps(&self) -> impl Iterator<Item = Vrp> + '_ {
        self.prefixes
            .iter()
            .map(|p| Vrp::new(p.prefix, p.effective_max_len(), self.asn))
    }

    /// `true` if this ROA makes `route` RPKI-valid.
    pub fn authorizes(&self, route: &RouteOrigin) -> bool {
        self.vrps().any(|v| v.matches(route))
    }

    /// `true` if any entry covers `route`'s prefix (regardless of origin or
    /// maxLength).
    pub fn covers(&self, route: &RouteOrigin) -> bool {
        self.prefixes.iter().any(|p| p.prefix.covers(route.prefix))
    }
}

impl fmt::Display for Roa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ROA:({{")?;
        for (i, p) in self.prefixes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}, {})", self.asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn running_example_roa() {
        // ROA:(168.122.0.0/16-24, AS 111) from §3.
        let roa = Roa::new(
            Asn(111),
            vec![RoaPrefix::with_max_len(pfx("168.122.0.0/16"), 24)],
        )
        .unwrap();
        assert!(roa.uses_max_len());
        assert_eq!(roa.to_string(), "ROA:({168.122.0.0/16-24}, AS111)");

        // It authorizes the de-aggregated /24 from §3...
        assert!(roa.authorizes(&"168.122.225.0/24 => AS111".parse().unwrap()));
        // ...every /17 and /18...
        assert!(roa.authorizes(&"168.122.128.0/17 => AS111".parse().unwrap()));
        // ...but not a /25.
        assert!(!roa.authorizes(&"168.122.0.0/25 => AS111".parse().unwrap()));
    }

    #[test]
    fn minimal_roa_with_prefix_set() {
        // The minimal alternative from §3:
        // ROA:({168.122.0.0/16, 168.122.225.0/24}, AS 111).
        let roa = Roa::new(
            Asn(111),
            vec![
                RoaPrefix::exact(pfx("168.122.0.0/16")),
                RoaPrefix::exact(pfx("168.122.225.0/24")),
            ],
        )
        .unwrap();
        assert!(!roa.uses_max_len());
        assert_eq!(roa.prefix_count(), 2);
        assert!(roa.authorizes(&"168.122.0.0/16 => AS111".parse().unwrap()));
        assert!(roa.authorizes(&"168.122.225.0/24 => AS111".parse().unwrap()));
        // The forged-origin subprefix hijack from §4 now fails:
        assert!(!roa.authorizes(&"168.122.0.0/24 => AS111".parse().unwrap()));
        // ...though it is still covered (hence Invalid, not NotFound).
        assert!(roa.covers(&"168.122.0.0/24 => AS111".parse().unwrap()));
    }

    #[test]
    fn rejects_empty_and_bad_maxlen() {
        assert_eq!(Roa::new(Asn(1), vec![]), Err(RoaError::EmptyPrefixSet));
        let bad = RoaPrefix::with_max_len(pfx("10.0.0.0/16"), 8);
        assert_eq!(
            Roa::new(Asn(1), vec![bad]),
            Err(RoaError::BadMaxLength(bad))
        );
        let too_long = RoaPrefix::with_max_len(pfx("10.0.0.0/16"), 33);
        assert!(Roa::new(Asn(1), vec![too_long]).is_err());
    }

    #[test]
    fn max_len_at_family_bound_ok() {
        assert!(Roa::new(
            Asn(1),
            vec![RoaPrefix::with_max_len(pfx("10.0.0.0/16"), 32)]
        )
        .is_ok());
        assert!(Roa::new(
            Asn(1),
            vec![RoaPrefix::with_max_len(pfx("2001:db8::/32"), 128)]
        )
        .is_ok());
    }

    #[test]
    fn entries_sorted_and_deduped() {
        let roa = Roa::new(
            Asn(1),
            vec![
                RoaPrefix::exact(pfx("11.0.0.0/8")),
                RoaPrefix::exact(pfx("10.0.0.0/8")),
                RoaPrefix::exact(pfx("10.0.0.0/8")),
            ],
        )
        .unwrap();
        assert_eq!(roa.prefix_count(), 2);
        assert_eq!(roa.prefixes()[0].prefix, pfx("10.0.0.0/8"));
    }

    #[test]
    fn vrps_materialize_effective_maxlen() {
        let roa = Roa::new(
            Asn(31283),
            vec![
                RoaPrefix::exact(pfx("87.254.32.0/19")),
                RoaPrefix::with_max_len(pfx("87.254.32.0/20"), 21),
            ],
        )
        .unwrap();
        let vrps: Vec<_> = roa.vrps().collect();
        assert_eq!(vrps.len(), 2);
        assert_eq!(vrps[0].max_len, 19);
        assert_eq!(vrps[1].max_len, 21);
        assert!(vrps.iter().all(|v| v.asn == Asn(31283)));
    }

    #[test]
    fn explicit_maxlen_equal_to_len_is_not_using() {
        let roa = Roa::new(
            Asn(1),
            vec![RoaPrefix::with_max_len(pfx("10.0.0.0/16"), 16)],
        )
        .unwrap();
        assert!(!roa.uses_max_len());
    }

    #[test]
    fn mixed_family_roa() {
        let roa = Roa::new(
            Asn(1),
            vec![
                RoaPrefix::exact(pfx("10.0.0.0/8")),
                RoaPrefix::exact(pfx("2001:db8::/32")),
            ],
        )
        .unwrap();
        assert!(roa.authorizes(&"10.0.0.0/8 => AS1".parse().unwrap()));
        assert!(roa.authorizes(&"2001:db8::/32 => AS1".parse().unwrap()));
    }
}
