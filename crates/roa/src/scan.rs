//! A drop-in equivalent of the `scan_roas` utility from the RPKI
//! relying-party tools (paper §7.1).
//!
//! `scan_roas` walks a directory tree of validated ROA objects and prints
//! one line per ROA prefix: the `(origin AS, prefix, maxLength)` tuples
//! that become router PDUs. The paper's `compress_roas` is specified as a
//! drop-in *post-processor* of this output, so this module reproduces both
//! the directory walk and the line format, reading the mock signed objects
//! produced by [`envelope::seal_roa`](crate::envelope::seal_roa).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::envelope::{open_roa, EnvelopeError};
use crate::{Roa, Vrp};

/// The result of scanning one directory tree.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Successfully validated ROAs, in directory order.
    pub roas: Vec<Roa>,
    /// Files that failed validation, with the reason — a relying party
    /// logs and skips these rather than aborting the scan.
    pub rejected: Vec<(PathBuf, EnvelopeError)>,
}

impl ScanResult {
    /// Expands every scanned ROA into its VRPs, preserving order.
    pub fn vrps(&self) -> Vec<Vrp> {
        self.roas.iter().flat_map(|r| r.vrps()).collect()
    }

    /// Renders the scan in `scan_roas` line format: one
    /// `ASN prefix/len-maxlen` line per VRP (the `-maxlen` suffix present
    /// only when it exceeds the prefix length).
    pub fn to_scan_lines(&self) -> String {
        let mut out = String::new();
        for vrp in self.vrps() {
            out.push_str(&scan_line(&vrp));
            out.push('\n');
        }
        out
    }
}

/// Formats one VRP in `scan_roas` output style, e.g.
/// `31283 87.254.32.0/19-20`.
pub fn scan_line(vrp: &Vrp) -> String {
    if vrp.uses_max_len() {
        format!("{} {}-{}", vrp.asn.into_u32(), vrp.prefix, vrp.max_len)
    } else {
        format!("{} {}", vrp.asn.into_u32(), vrp.prefix)
    }
}

/// Recursively scans `dir` for `.roa` files, validating each one.
///
/// Invalid objects are collected in [`ScanResult::rejected`]; I/O errors
/// (other than a file vanishing mid-scan) abort the walk.
pub fn scan_dir(dir: &Path) -> io::Result<ScanResult> {
    let mut result = ScanResult::default();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&d)?.collect::<io::Result<_>>()?;
        // Deterministic order regardless of filesystem enumeration.
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "roa") {
                let data = fs::read(&path)?;
                match open_roa(&data) {
                    Ok(roa) => result.roas.push(roa),
                    Err(e) => result.rejected.push((path, e)),
                }
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::seal_roa;
    use crate::{Asn, RoaPrefix};
    use rpki_prefix::Prefix;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rpki-roa-scan-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_roa(asn: u32, prefix: &str, max_len: Option<u8>) -> Roa {
        let entry = match max_len {
            Some(m) => RoaPrefix::with_max_len(pfx(prefix), m),
            None => RoaPrefix::exact(pfx(prefix)),
        };
        Roa::new(Asn(asn), vec![entry]).unwrap()
    }

    #[test]
    fn scans_nested_directories() {
        let dir = tmpdir("nested");
        fs::create_dir_all(dir.join("repo/a")).unwrap();
        fs::write(
            dir.join("repo/a/one.roa"),
            seal_roa(&sample_roa(111, "168.122.0.0/16", None)),
        )
        .unwrap();
        fs::write(
            dir.join("two.roa"),
            seal_roa(&sample_roa(31283, "87.254.32.0/19", Some(20))),
        )
        .unwrap();
        // Non-.roa files are ignored.
        fs::write(dir.join("README.txt"), b"not a roa").unwrap();

        let result = scan_dir(&dir).unwrap();
        assert_eq!(result.roas.len(), 2);
        assert!(result.rejected.is_empty());
        let vrps = result.vrps();
        assert_eq!(vrps.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_objects_are_rejected_not_fatal() {
        let dir = tmpdir("corrupt");
        let mut sealed = seal_roa(&sample_roa(111, "10.0.0.0/8", None));
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        fs::write(dir.join("bad.roa"), sealed).unwrap();
        fs::write(
            dir.join("good.roa"),
            seal_roa(&sample_roa(222, "11.0.0.0/8", None)),
        )
        .unwrap();

        let result = scan_dir(&dir).unwrap();
        assert_eq!(result.roas.len(), 1);
        assert_eq!(result.rejected.len(), 1);
        assert_eq!(result.rejected[0].1, EnvelopeError::DigestMismatch);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_line_format() {
        let with_ml: Vrp = "87.254.32.0/19-20 => AS31283".parse().unwrap();
        assert_eq!(scan_line(&with_ml), "31283 87.254.32.0/19-20");
        let without: Vrp = "87.254.32.0/21 => AS31283".parse().unwrap();
        assert_eq!(scan_line(&without), "31283 87.254.32.0/21");
    }

    #[test]
    fn scan_lines_output() {
        let dir = tmpdir("lines");
        fs::write(
            dir.join("a.roa"),
            seal_roa(&sample_roa(31283, "87.254.32.0/19", Some(20))),
        )
        .unwrap();
        let result = scan_dir(&dir).unwrap();
        assert_eq!(result.to_scan_lines(), "31283 87.254.32.0/19-20\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory() {
        let dir = tmpdir("empty");
        let result = scan_dir(&dir).unwrap();
        assert!(result.roas.is_empty());
        assert!(result.rejected.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// [`scan_dir`] parallelized over `threads` workers — relying-party
/// repositories hold tens of thousands of objects, and validation is
/// embarrassingly parallel. Output order (and therefore the VRP list) is
/// identical to the serial scan.
pub fn scan_dir_parallel(dir: &Path, threads: usize) -> io::Result<ScanResult> {
    let threads = threads.max(1);
    // Enumerate deterministically first (cheap), then validate in
    // parallel (expensive).
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&d)?.collect::<io::Result<_>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "roa") {
                files.push(path);
            }
        }
    }

    type Validated = (usize, PathBuf, Result<crate::Roa, EnvelopeError>);
    let results: io::Result<Vec<Validated>> = crossbeam::thread::scope(|scope| {
        let files = &files;
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move |_| -> io::Result<Vec<Validated>> {
                    let mut out = Vec::new();
                    for (i, path) in files.iter().enumerate() {
                        if i % threads != worker {
                            continue;
                        }
                        let data = fs::read(path)?;
                        out.push((i, path.clone(), open_roa(&data)));
                    }
                    Ok(out)
                })
            })
            .collect();
        let mut all = Vec::with_capacity(files.len());
        for h in handles {
            all.extend(h.join().expect("scan worker panicked")?);
        }
        Ok(all)
    })
    .expect("scope joins cleanly");

    let mut all = results?;
    all.sort_by_key(|(i, _, _)| *i);
    let mut result = ScanResult::default();
    for (_, path, outcome) in all {
        match outcome {
            Ok(roa) => result.roas.push(roa),
            Err(e) => result.rejected.push((path, e)),
        }
    }
    Ok(result)
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::envelope::seal_roa;
    use crate::{Asn, Roa, RoaPrefix};
    use rpki_prefix::Prefix;
    use std::fs;

    #[test]
    fn parallel_scan_matches_serial() {
        let dir = std::env::temp_dir().join(format!("rpki-roa-parscan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("sub")).unwrap();
        for i in 0..40u32 {
            let prefix: Prefix = format!("10.{}.0.0/16", i).parse().unwrap();
            let roa = Roa::new(Asn(i + 1), vec![RoaPrefix::exact(prefix)]).unwrap();
            let where_ = if i % 2 == 0 { "" } else { "sub/" };
            fs::write(dir.join(format!("{where_}{i:03}.roa")), seal_roa(&roa)).unwrap();
        }
        // One corrupt object.
        let mut bad = seal_roa(
            &Roa::new(
                Asn(99),
                vec![RoaPrefix::exact("99.0.0.0/8".parse().unwrap())],
            )
            .unwrap(),
        );
        let last = bad.len() - 1;
        bad[last] ^= 1;
        fs::write(dir.join("zz.roa"), bad).unwrap();

        let serial = scan_dir(&dir).unwrap();
        for threads in [1, 2, 4, 7] {
            let parallel = scan_dir_parallel(&dir, threads).unwrap();
            assert_eq!(parallel.roas, serial.roas, "{threads} threads");
            assert_eq!(parallel.rejected.len(), serial.rejected.len());
            assert_eq!(parallel.vrps(), serial.vrps());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_scan_empty_dir() {
        let dir =
            std::env::temp_dir().join(format!("rpki-roa-parscan-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let result = scan_dir_parallel(&dir, 4).unwrap();
        assert!(result.roas.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
