use std::fmt;
use std::str::FromStr;

/// An autonomous system number (32-bit, RFC 6793).
///
/// Displays in the canonical `AS64496` form; parses either that form or a
/// bare decimal number.
///
/// ```
/// use rpki_roa::Asn;
/// let a: Asn = "AS111".parse().unwrap();
/// let b: Asn = "111".parse().unwrap();
/// assert_eq!(a, b);
/// assert_eq!(a.to_string(), "AS111");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl Asn {
    /// The AS number as a plain integer.
    #[inline]
    pub const fn into_u32(self) -> u32 {
        self.0
    }

    /// `true` if this is a private-use ASN (RFC 6996 ranges).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64512 && self.0 <= 65534) || self.0 >= 4_200_000_000
    }

    /// `true` for AS 0, which RFC 7607 forbids as a route origin. A ROA for
    /// AS 0 is a deliberate "nobody may originate this" statement.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<u32> for Asn {
    fn from(n: u32) -> Asn {
        Asn(n)
    }
}

impl From<Asn> for u32 {
    fn from(asn: Asn) -> u32 {
        asn.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Error parsing an [`Asn`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsnError(String);

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS number: {:?}", self.0)
    }
}

impl std::error::Error for ParseAsnError {}

impl FromStr for Asn {
    type Err = ParseAsnError;

    fn from_str(s: &str) -> Result<Asn, ParseAsnError> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| ParseAsnError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        assert_eq!("AS111".parse::<Asn>().unwrap(), Asn(111));
        assert_eq!("as111".parse::<Asn>().unwrap(), Asn(111));
        assert_eq!("111".parse::<Asn>().unwrap(), Asn(111));
        assert_eq!("4294967295".parse::<Asn>().unwrap(), Asn(u32::MAX));
        assert!("AS".parse::<Asn>().is_err());
        assert!("AS-1".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Asn(31283).to_string(), "AS31283");
    }

    #[test]
    fn classification() {
        assert!(Asn(0).is_zero());
        assert!(!Asn(111).is_zero());
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(3356).is_private());
    }

    #[test]
    fn conversions() {
        let a: Asn = 42u32.into();
        assert_eq!(u32::from(a), 42);
        assert_eq!(a.into_u32(), 42);
    }
}
