use std::fmt;
use std::str::FromStr;

use rpki_prefix::Prefix;

use crate::{Asn, RouteOrigin};

/// A Validated ROA Payload: the `(IP prefix, maxLength, origin AS)` tuple
/// that the RPKI local cache extracts from validated ROAs and ships to
/// routers (RFC 6811 terminology; the paper calls these "PDUs", §6).
///
/// `max_len` is always materialized: a ROA prefix without an explicit
/// maxLength behaves exactly as if `maxLength == prefix length` (RFC 6482),
/// so the VRP stores the effective value. [`Vrp::uses_max_len`] recovers
/// whether the tuple authorizes anything beyond the prefix itself.
///
/// Displays in the paper's notation: `168.122.0.0/16-24 => AS111`, with the
/// `-maxLength` suffix omitted when it equals the prefix length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vrp {
    /// The authorized prefix.
    pub prefix: Prefix,
    /// The effective maximum length (always in `prefix.len()..=afi max`).
    pub max_len: u8,
    /// The authorized origin AS.
    pub asn: Asn,
}

impl Vrp {
    /// Creates a VRP, clamping `max_len` into the valid range
    /// `prefix.len()..=family max`. RFC 6482 forbids maxLength outside this
    /// range; measurement pipelines clamp rather than drop, matching how
    /// relying-party software treats in-range-but-useless values.
    pub fn new(prefix: Prefix, max_len: u8, asn: Asn) -> Self {
        let max_len = max_len.clamp(prefix.len(), prefix.max_len());
        Vrp {
            prefix,
            max_len,
            asn,
        }
    }

    /// A VRP that authorizes exactly its prefix (`maxLength == length`).
    pub fn exact(prefix: Prefix, asn: Asn) -> Self {
        Vrp {
            prefix,
            max_len: prefix.len(),
            asn,
        }
    }

    /// A maximally-permissive VRP: maxLength 32 (IPv4) or 128 (IPv6).
    /// Used only for the paper's §6 compression lower bound — such VRPs are
    /// maximally vulnerable to forged-origin subprefix hijacks.
    pub fn max_permissive(prefix: Prefix, asn: Asn) -> Self {
        Vrp {
            prefix,
            max_len: prefix.max_len(),
            asn,
        }
    }

    /// `true` if the tuple authorizes prefixes beyond the prefix itself,
    /// i.e. `maxLength > prefix length`. These are the "maxLength-using"
    /// tuples counted in §6.
    #[inline]
    pub fn uses_max_len(&self) -> bool {
        self.max_len > self.prefix.len()
    }

    /// `true` if this VRP *covers* the route's prefix (RFC 6811): the VRP
    /// prefix is an equal-or-shorter prefix of it. Covering says nothing
    /// about validity — a covered route with no *matching* VRP is Invalid.
    #[inline]
    pub fn covers(&self, route: &RouteOrigin) -> bool {
        self.prefix.covers(route.prefix)
    }

    /// `true` if this VRP *matches* the route (RFC 6811): it covers the
    /// route, the route's length does not exceed maxLength, and the origin
    /// AS agrees (and is not AS 0, RFC 7607).
    #[inline]
    pub fn matches(&self, route: &RouteOrigin) -> bool {
        self.covers(route)
            && route.prefix.len() <= self.max_len
            && self.asn == route.origin
            && !self.asn.is_zero()
    }

    /// The number of distinct prefixes this VRP authorizes
    /// (`2^(maxLength - length + 1) - 1`), saturating. The measure of how
    /// much attack surface a non-minimal tuple exposes (§4).
    pub fn authorized_prefix_count(&self) -> u128 {
        self.prefix.subprefix_count(self.max_len)
    }

    /// Iterates over every `(prefix, ASN)` route this VRP authorizes.
    /// Beware: exponential in `maxLength - length`.
    pub fn authorized_routes(&self) -> impl Iterator<Item = RouteOrigin> + '_ {
        let asn = self.asn;
        self.prefix
            .subprefixes(self.max_len)
            .map(move |p| RouteOrigin::new(p, asn))
    }
}

impl fmt::Display for Vrp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.uses_max_len() {
            write!(f, "{}-{} => {}", self.prefix, self.max_len, self.asn)
        } else {
            write!(f, "{} => {}", self.prefix, self.asn)
        }
    }
}

/// Error parsing a [`Vrp`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVrpError(String);

impl fmt::Display for ParseVrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid VRP: {:?}", self.0)
    }
}

impl std::error::Error for ParseVrpError {}

impl FromStr for Vrp {
    type Err = ParseVrpError;

    fn from_str(s: &str) -> Result<Vrp, ParseVrpError> {
        let err = || ParseVrpError(s.to_string());
        let (lhs, asn) = s.split_once("=>").ok_or_else(err)?;
        let asn: Asn = asn.trim().parse().map_err(|_| err())?;
        let lhs = lhs.trim();
        // `prefix/len-maxlen` — the dash after the length, if any, carries
        // the maxLength. Split at the *last* dash following the slash so
        // IPv6 text (which never contains dashes) and lengths stay intact.
        let slash = lhs.rfind('/').ok_or_else(err)?;
        let (prefix_str, max_len) = match lhs[slash..].find('-') {
            Some(rel) => {
                let at = slash + rel;
                let ml: u8 = lhs[at + 1..].trim().parse().map_err(|_| err())?;
                (&lhs[..at], Some(ml))
            }
            None => (lhs, None),
        };
        let prefix: Prefix = prefix_str.trim().parse().map_err(|_| err())?;
        match max_len {
            Some(ml) => {
                if ml < prefix.len() || ml > prefix.max_len() {
                    return Err(err());
                }
                Ok(Vrp::new(prefix, ml, asn))
            }
            None => Ok(Vrp::exact(prefix, asn)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn route(s: &str) -> RouteOrigin {
        s.parse().unwrap()
    }

    #[test]
    fn display_paper_notation() {
        // The paper's running example: ROA:(168.122.0.0/16-24, AS 111).
        let v = vrp("168.122.0.0/16-24 => AS111");
        assert_eq!(v.to_string(), "168.122.0.0/16-24 => AS111");
        let exact = vrp("168.122.0.0/16 => AS111");
        assert_eq!(exact.to_string(), "168.122.0.0/16 => AS111");
        assert_eq!(exact.max_len, 16);
    }

    #[test]
    fn parse_round_trip() {
        for s in [
            "168.122.0.0/16-24 => AS111",
            "10.0.0.0/8 => AS0",
            "2001:db8::/32-48 => AS65000",
            "2001:db8::/128 => AS1",
        ] {
            assert_eq!(vrp(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_maxlen() {
        assert!("10.0.0.0/16-8 => AS1".parse::<Vrp>().is_err()); // maxLen < len
        assert!("10.0.0.0/16-33 => AS1".parse::<Vrp>().is_err()); // beyond family
        assert!("10.0.0.0/16-x => AS1".parse::<Vrp>().is_err());
        assert!("10.0.0.0/16 - 24 => AS1".parse::<Vrp>().is_ok()); // spaces ok
    }

    #[test]
    fn new_clamps() {
        let p: Prefix = "10.0.0.0/16".parse().unwrap();
        assert_eq!(Vrp::new(p, 8, Asn(1)).max_len, 16);
        assert_eq!(Vrp::new(p, 40, Asn(1)).max_len, 32);
        assert_eq!(Vrp::new(p, 24, Asn(1)).max_len, 24);
    }

    #[test]
    fn uses_max_len() {
        assert!(vrp("168.122.0.0/16-24 => AS111").uses_max_len());
        assert!(!vrp("168.122.0.0/16 => AS111").uses_max_len());
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(Vrp::max_permissive(p, Asn(1)).uses_max_len());
        assert_eq!(Vrp::max_permissive(p, Asn(1)).max_len, 32);
    }

    #[test]
    fn covering_and_matching_running_example() {
        // §2: the ROA (168.122.0.0/16, AS 111).
        let roa_vrp = vrp("168.122.0.0/16 => AS111");

        // AS 111's own /16 announcement matches.
        assert!(roa_vrp.matches(&route("168.122.0.0/16 => AS111")));

        // A subprefix announcement by AS 111 is covered but NOT matched
        // (maxLength is 16) — the de-aggregation problem of §3.
        let deagg = route("168.122.225.0/24 => AS111");
        assert!(roa_vrp.covers(&deagg));
        assert!(!roa_vrp.matches(&deagg));

        // The subprefix hijack of §2 is covered but not matched.
        let hijack = route("168.122.0.0/24 => AS666");
        assert!(roa_vrp.covers(&hijack));
        assert!(!roa_vrp.matches(&hijack));
    }

    #[test]
    fn maxlength_authorizes_forged_origin_subprefix() {
        // §4: with maxLength 24 the hijacker's forged-origin announcement
        // "168.122.0.0/24: AS m, AS 111" is VALID because the VRP matches
        // the (prefix, origin) pair.
        let v = vrp("168.122.0.0/16-24 => AS111");
        assert!(v.matches(&route("168.122.0.0/24 => AS111")));
        assert!(!v.matches(&route("168.122.0.0/25 => AS111"))); // beyond maxLength
        assert!(!v.matches(&route("168.122.0.0/24 => AS666"))); // wrong origin
    }

    #[test]
    fn as0_never_matches() {
        let v = vrp("10.0.0.0/8-24 => AS0");
        assert!(v.covers(&route("10.0.0.0/16 => AS0")));
        assert!(!v.matches(&route("10.0.0.0/16 => AS0")));
    }

    #[test]
    fn cross_family_never_covers() {
        let v = vrp("10.0.0.0/8 => AS1");
        assert!(!v.covers(&route("2001:db8::/32 => AS1")));
    }

    #[test]
    fn authorized_routes_enumeration() {
        let v = vrp("168.122.0.0/16-17 => AS111");
        let routes: Vec<_> = v.authorized_routes().collect();
        assert_eq!(routes.len(), 3);
        assert_eq!(v.authorized_prefix_count(), 3);
        assert!(routes.iter().all(|r| r.origin == Asn(111)));
        assert!(routes.iter().all(|r| v.matches(r)));
    }

    #[test]
    fn ordering_is_by_prefix_then_maxlen_then_asn() {
        let a = vrp("10.0.0.0/8-9 => AS5");
        let b = vrp("10.0.0.0/8-10 => AS1");
        let c = vrp("10.0.0.0/9 => AS1");
        assert!(a < b && b < c);
    }
}
