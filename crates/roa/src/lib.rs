//! Route Origin Authorization (ROA) objects and their encodings.
//!
//! This crate provides the RPKI object model used across the workspace:
//!
//! * [`Asn`] — an autonomous system number,
//! * [`RouteOrigin`] — a `(prefix, origin AS)` pair as announced in BGP,
//! * [`Vrp`] — a Validated ROA Payload `(prefix, maxLength, ASN)`, the
//!   "PDU" of the paper (§6): the unit the local cache sends to routers,
//! * [`Roa`] / [`RoaPrefix`] — a ROA per RFC 6482: one AS plus a set of
//!   prefixes, each with an optional maxLength,
//! * a minimal ASN.1 **DER** codec ([`der`]) and the RFC 6482
//!   `RouteOriginAttestation` encoding ([`codec`]),
//! * a mock signed-object [`envelope`] standing in for the RPKI CMS
//!   wrapping (the paper's pipeline runs strictly *after* cryptographic
//!   validation, so a deterministic checksum envelope preserves every
//!   relevant behaviour — see DESIGN.md),
//! * [`scan`] — a drop-in equivalent of the `scan_roas` utility from the
//!   RPKI relying-party tools, which turns a directory of ROA files into
//!   the VRP list that `compress_roas` post-processes (paper §7.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asn;
pub mod codec;
pub mod der;
pub mod envelope;
mod origin;
mod roa;
pub mod scan;
mod vrp;

pub use asn::Asn;
pub use origin::RouteOrigin;
pub use roa::{Roa, RoaError, RoaPrefix};
pub use vrp::Vrp;
