//! A minimal ASN.1 DER codec — just the subset the RPKI ROA profile needs.
//!
//! DER (Distinguished Encoding Rules, X.690) is TLV-structured:
//! a one-byte tag, a definite length, and the contents. This module
//! implements the five universal types used by RFC 6482
//! (`RouteOriginAttestation`) plus context-specific constructed tags, with
//! strict DER checks on decode: minimal length encodings, minimal integer
//! encodings, and no trailing garbage.
//!
//! ```
//! use rpki_roa::der::{Writer, Reader, Tag};
//!
//! let mut w = Writer::new();
//! w.write_sequence(|w| {
//!     w.write_u32(31283);
//!     w.write_octet_string(&[0, 1]);
//! });
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! r.read_sequence(|r| {
//!     assert_eq!(r.read_u32()?, 31283);
//!     assert_eq!(r.read_octet_string()?, vec![0, 1]);
//!     Ok(())
//! }).unwrap();
//! ```

use std::fmt;

/// ASN.1 tag bytes for the types used by the ROA profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tag(pub u8);

impl Tag {
    /// Universal INTEGER (0x02).
    pub const INTEGER: Tag = Tag(0x02);
    /// Universal BIT STRING (0x03).
    pub const BIT_STRING: Tag = Tag(0x03);
    /// Universal OCTET STRING (0x04).
    pub const OCTET_STRING: Tag = Tag(0x04);
    /// Universal SEQUENCE / SEQUENCE OF (constructed, 0x30).
    pub const SEQUENCE: Tag = Tag(0x30);
    /// Context-specific constructed tag `[0]` (0xA0).
    pub const CTX_0: Tag = Tag(0xA0);
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02X}", self.0)
    }
}

/// Errors raised by strict DER decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerError {
    /// Input ended before a complete TLV.
    Truncated,
    /// A different tag was required at this position.
    UnexpectedTag {
        /// The tag the caller demanded.
        expected: Tag,
        /// The tag actually present.
        found: Tag,
    },
    /// The length octets violate DER (non-minimal or reserved form).
    BadLength,
    /// An INTEGER was not minimally encoded or does not fit the target type.
    BadInteger,
    /// A BIT STRING had an invalid unused-bits count.
    BadBitString,
    /// Bytes remained after the outermost value was read.
    TrailingBytes,
    /// The contents were structurally valid DER but semantically wrong for
    /// the profile being decoded.
    BadValue(&'static str),
}

impl fmt::Display for DerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerError::Truncated => write!(f, "DER input truncated"),
            DerError::UnexpectedTag { expected, found } => {
                write!(f, "expected tag {expected}, found {found}")
            }
            DerError::BadLength => write!(f, "invalid DER length encoding"),
            DerError::BadInteger => write!(f, "invalid DER integer"),
            DerError::BadBitString => write!(f, "invalid DER bit string"),
            DerError::TrailingBytes => write!(f, "trailing bytes after DER value"),
            DerError::BadValue(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DerError {}

/// Serializes DER values into a growable buffer.
///
/// Nested constructed types take a closure; the writer buffers the inner
/// contents and prepends the definite length afterwards.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a TLV with raw contents.
    pub fn write_raw(&mut self, tag: Tag, contents: &[u8]) {
        self.buf.push(tag.0);
        Self::push_len(&mut self.buf, contents.len());
        self.buf.extend_from_slice(contents);
    }

    /// Writes an INTEGER holding an unsigned 32-bit value.
    pub fn write_u32(&mut self, value: u32) {
        self.write_unsigned(value as u64);
    }

    /// Writes an INTEGER holding an unsigned value with minimal contents.
    pub fn write_unsigned(&mut self, value: u64) {
        let be = value.to_be_bytes();
        let mut start = be.iter().position(|&b| b != 0).unwrap_or(7);
        // A leading 1-bit would flip the sign: prepend a zero octet.
        if be[start] & 0x80 != 0 {
            start = start.saturating_sub(1);
            if be[start] != 0 {
                // start was 0 and the top byte has the high bit: emit an
                // explicit 0x00 prefix.
                self.buf.push(Tag::INTEGER.0);
                Self::push_len(&mut self.buf, 9);
                self.buf.push(0);
                self.buf.extend_from_slice(&be);
                return;
            }
        }
        self.write_raw(Tag::INTEGER, &be[start..]);
    }

    /// Writes an OCTET STRING.
    pub fn write_octet_string(&mut self, contents: &[u8]) {
        self.write_raw(Tag::OCTET_STRING, contents);
    }

    /// Writes a BIT STRING with `bit_len` significant bits taken from
    /// `bytes` (which must hold at least `ceil(bit_len / 8)` bytes).
    /// Trailing unused bits are zeroed, as DER requires.
    pub fn write_bit_string(&mut self, bytes: &[u8], bit_len: usize) {
        let byte_len = bit_len.div_ceil(8);
        assert!(bytes.len() >= byte_len, "bit string source too short");
        let unused = (byte_len * 8 - bit_len) as u8;
        let mut contents = Vec::with_capacity(byte_len + 1);
        contents.push(unused);
        contents.extend_from_slice(&bytes[..byte_len]);
        if unused > 0 {
            let last = contents.last_mut().expect("non-empty");
            *last &= 0xFFu8 << unused;
        }
        self.write_raw(Tag::BIT_STRING, &contents);
    }

    /// Writes a SEQUENCE whose contents are produced by `f`.
    pub fn write_sequence(&mut self, f: impl FnOnce(&mut Writer)) {
        self.write_constructed(Tag::SEQUENCE, f);
    }

    /// Writes any constructed TLV whose contents are produced by `f`.
    pub fn write_constructed(&mut self, tag: Tag, f: impl FnOnce(&mut Writer)) {
        let mut inner = Writer::new();
        f(&mut inner);
        self.write_raw(tag, &inner.buf);
    }

    fn push_len(buf: &mut Vec<u8>, len: usize) {
        if len < 0x80 {
            buf.push(len as u8);
        } else {
            let be = (len as u64).to_be_bytes();
            let start = be.iter().position(|&b| b != 0).expect("len >= 0x80");
            buf.push(0x80 | (8 - start) as u8);
            buf.extend_from_slice(&be[start..]);
        }
    }
}

/// Strict DER reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when all input is consumed.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless all input has been consumed (DER forbids trailing
    /// bytes).
    pub fn expect_end(&self) -> Result<(), DerError> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(DerError::TrailingBytes)
        }
    }

    /// Peeks the tag of the next TLV without consuming it.
    pub fn peek_tag(&self) -> Option<Tag> {
        self.data.get(self.pos).map(|&b| Tag(b))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DerError> {
        if self.remaining() < n {
            return Err(DerError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads the next TLV, returning its tag and contents.
    pub fn read_tlv(&mut self) -> Result<(Tag, &'a [u8]), DerError> {
        let tag = Tag(self.take(1)?[0]);
        let first = self.take(1)?[0];
        let len = if first < 0x80 {
            first as usize
        } else if first == 0x80 || first == 0xFF {
            // Indefinite length and the reserved form are not DER.
            return Err(DerError::BadLength);
        } else {
            let n = (first & 0x7F) as usize;
            if n > 8 {
                return Err(DerError::BadLength);
            }
            let octets = self.take(n)?;
            if octets[0] == 0 {
                return Err(DerError::BadLength); // non-minimal
            }
            let mut len = 0usize;
            for &b in octets {
                len = len
                    .checked_mul(256)
                    .and_then(|l| l.checked_add(b as usize))
                    .ok_or(DerError::BadLength)?;
            }
            if len < 0x80 {
                return Err(DerError::BadLength); // should have used short form
            }
            len
        };
        let contents = self.take(len)?;
        Ok((tag, contents))
    }

    /// Reads the next TLV, demanding a specific tag.
    pub fn read_expect(&mut self, expected: Tag) -> Result<&'a [u8], DerError> {
        match self.peek_tag() {
            Some(found) if found != expected => Err(DerError::UnexpectedTag { expected, found }),
            None => Err(DerError::Truncated),
            _ => Ok(self.read_tlv()?.1),
        }
    }

    /// Reads an INTEGER as an unsigned 64-bit value, enforcing minimal
    /// encoding and non-negativity.
    pub fn read_unsigned(&mut self) -> Result<u64, DerError> {
        let contents = self.read_expect(Tag::INTEGER)?;
        decode_unsigned(contents)
    }

    /// Reads an INTEGER as an unsigned 32-bit value.
    pub fn read_u32(&mut self) -> Result<u32, DerError> {
        let v = self.read_unsigned()?;
        u32::try_from(v).map_err(|_| DerError::BadInteger)
    }

    /// Reads an OCTET STRING's contents.
    pub fn read_octet_string(&mut self) -> Result<Vec<u8>, DerError> {
        Ok(self.read_expect(Tag::OCTET_STRING)?.to_vec())
    }

    /// Reads a BIT STRING, returning `(bytes, bit_len)`. Verifies the
    /// unused-bit count and that unused bits are zero (DER).
    pub fn read_bit_string(&mut self) -> Result<(Vec<u8>, usize), DerError> {
        let contents = self.read_expect(Tag::BIT_STRING)?;
        let (&unused, body) = contents.split_first().ok_or(DerError::BadBitString)?;
        if unused > 7 || (body.is_empty() && unused != 0) {
            return Err(DerError::BadBitString);
        }
        if unused > 0 {
            let last = *body.last().expect("non-empty checked");
            if last & ((1u8 << unused) - 1) != 0 {
                return Err(DerError::BadBitString);
            }
        }
        Ok((body.to_vec(), body.len() * 8 - unused as usize))
    }

    /// Reads a SEQUENCE and hands a sub-reader over its contents to `f`.
    /// The sub-reader must be fully consumed.
    pub fn read_sequence<T>(
        &mut self,
        f: impl FnOnce(&mut Reader<'a>) -> Result<T, DerError>,
    ) -> Result<T, DerError> {
        self.read_constructed(Tag::SEQUENCE, f)
    }

    /// Reads any constructed TLV with the demanded tag; `f` must consume
    /// the contents entirely.
    pub fn read_constructed<T>(
        &mut self,
        tag: Tag,
        f: impl FnOnce(&mut Reader<'a>) -> Result<T, DerError>,
    ) -> Result<T, DerError> {
        let contents = self.read_expect(tag)?;
        let mut inner = Reader::new(contents);
        let out = f(&mut inner)?;
        inner.expect_end()?;
        Ok(out)
    }
}

fn decode_unsigned(contents: &[u8]) -> Result<u64, DerError> {
    match contents {
        [] => Err(DerError::BadInteger),
        [b, ..] if *b & 0x80 != 0 => Err(DerError::BadInteger), // negative
        [0] => Ok(0),
        [0, second, ..] if *second & 0x80 == 0 => Err(DerError::BadInteger), // non-minimal
        _ => {
            let body = if contents[0] == 0 {
                &contents[1..]
            } else {
                contents
            };
            if body.len() > 8 {
                return Err(DerError::BadInteger);
            }
            let mut v = 0u64;
            for &b in body {
                v = v << 8 | b as u64;
            }
            Ok(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_u32(v: u32) -> Vec<u8> {
        let mut w = Writer::new();
        w.write_u32(v);
        w.into_bytes()
    }

    #[test]
    fn integer_known_vectors() {
        assert_eq!(encode_u32(0), [0x02, 0x01, 0x00]);
        assert_eq!(encode_u32(127), [0x02, 0x01, 0x7F]);
        // 128 needs a sign-padding zero.
        assert_eq!(encode_u32(128), [0x02, 0x02, 0x00, 0x80]);
        assert_eq!(encode_u32(256), [0x02, 0x02, 0x01, 0x00]);
        assert_eq!(
            encode_u32(u32::MAX),
            [0x02, 0x05, 0x00, 0xFF, 0xFF, 0xFF, 0xFF]
        );
    }

    #[test]
    fn integer_round_trip() {
        for v in [
            0u32,
            1,
            42,
            127,
            128,
            255,
            256,
            31283,
            65535,
            1 << 24,
            u32::MAX,
        ] {
            let bytes = encode_u32(v);
            let mut r = Reader::new(&bytes);
            assert_eq!(r.read_u32().unwrap(), v, "value {v}");
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn unsigned_64_round_trip() {
        for v in [0u64, u32::MAX as u64 + 1, u64::MAX, 1 << 63] {
            let mut w = Writer::new();
            w.write_unsigned(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.read_unsigned().unwrap(), v);
        }
    }

    #[test]
    fn integer_rejects_negative_and_non_minimal() {
        // Negative (high bit set).
        let mut r = Reader::new(&[0x02, 0x01, 0x80]);
        assert_eq!(r.read_unsigned(), Err(DerError::BadInteger));
        // Non-minimal 0x00 0x7F.
        let mut r = Reader::new(&[0x02, 0x02, 0x00, 0x7F]);
        assert_eq!(r.read_unsigned(), Err(DerError::BadInteger));
        // Empty contents.
        let mut r = Reader::new(&[0x02, 0x00]);
        assert_eq!(r.read_unsigned(), Err(DerError::BadInteger));
        // Too wide for u32.
        let mut r = Reader::new(&[0x02, 0x05, 0x01, 0, 0, 0, 0]);
        assert_eq!(r.read_u32(), Err(DerError::BadInteger));
    }

    #[test]
    fn long_form_length() {
        let contents = vec![0xAB; 200];
        let mut w = Writer::new();
        w.write_octet_string(&contents);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[..3], &[0x04, 0x81, 200]);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_octet_string().unwrap(), contents);
    }

    #[test]
    fn length_rejects_non_der_forms() {
        // Indefinite length.
        let mut r = Reader::new(&[0x04, 0x80, 0x00, 0x00]);
        assert_eq!(r.read_tlv().unwrap_err(), DerError::BadLength);
        // Long form used for a short value.
        let mut r = Reader::new(&[0x04, 0x81, 0x05, 1, 2, 3, 4, 5]);
        assert_eq!(r.read_tlv().unwrap_err(), DerError::BadLength);
        // Leading zero in long-form length.
        let mut r = Reader::new(&[0x04, 0x82, 0x00, 0x85]);
        assert_eq!(r.read_tlv().unwrap_err(), DerError::BadLength);
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.write_sequence(|w| w.write_u32(31283));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = r.read_sequence(|r| r.read_u32());
            assert!(res.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bit_string_round_trip() {
        // 19 significant bits: 87.254.32.0/19's address bytes.
        let addr = [87u8, 254, 32];
        let mut w = Writer::new();
        w.write_bit_string(&addr, 19);
        let bytes = w.into_bytes();
        // 0x03, len 4, unused=5, 3 content bytes.
        assert_eq!(bytes[0], 0x03);
        assert_eq!(bytes[2], 5);
        let mut r = Reader::new(&bytes);
        let (body, bit_len) = r.read_bit_string().unwrap();
        assert_eq!(bit_len, 19);
        assert_eq!(body, addr);
    }

    #[test]
    fn bit_string_zeroes_unused_bits() {
        // Source with dirty trailing bits must be masked on write.
        let mut w = Writer::new();
        w.write_bit_string(&[0xFF], 3);
        let bytes = w.into_bytes();
        assert_eq!(bytes, [0x03, 0x02, 0x05, 0xE0]);
    }

    #[test]
    fn bit_string_rejects_dirty_unused_bits() {
        // unused=5 but low bits set.
        let mut r = Reader::new(&[0x03, 0x02, 0x05, 0xFF]);
        assert_eq!(r.read_bit_string(), Err(DerError::BadBitString));
        // unused > 7.
        let mut r = Reader::new(&[0x03, 0x02, 0x08, 0x00]);
        assert_eq!(r.read_bit_string(), Err(DerError::BadBitString));
        // Empty body with nonzero unused count.
        let mut r = Reader::new(&[0x03, 0x01, 0x03]);
        assert_eq!(r.read_bit_string(), Err(DerError::BadBitString));
    }

    #[test]
    fn empty_bit_string() {
        let mut w = Writer::new();
        w.write_bit_string(&[], 0);
        let bytes = w.into_bytes();
        assert_eq!(bytes, [0x03, 0x01, 0x00]);
        let mut r = Reader::new(&bytes);
        let (body, bit_len) = r.read_bit_string().unwrap();
        assert!(body.is_empty());
        assert_eq!(bit_len, 0);
    }

    #[test]
    fn nested_sequences() {
        let mut w = Writer::new();
        w.write_sequence(|w| {
            w.write_u32(1);
            w.write_sequence(|w| {
                w.write_u32(2);
                w.write_u32(3);
            });
        });
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let (a, b, c) = r
            .read_sequence(|r| {
                let a = r.read_u32()?;
                let (b, c) = r.read_sequence(|r| Ok((r.read_u32()?, r.read_u32()?)))?;
                Ok((a, b, c))
            })
            .unwrap();
        assert_eq!((a, b, c), (1, 2, 3));
        assert!(r.is_at_end());
    }

    #[test]
    fn sequence_rejects_inner_trailing() {
        let mut w = Writer::new();
        w.write_sequence(|w| {
            w.write_u32(1);
            w.write_u32(2);
        });
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        // Only consume one integer: must flag trailing bytes.
        let res = r.read_sequence(|r| r.read_u32());
        assert_eq!(res.unwrap_err(), DerError::TrailingBytes);
    }

    #[test]
    fn unexpected_tag_reported() {
        let bytes = encode_u32(5);
        let mut r = Reader::new(&bytes);
        let err = r.read_octet_string().unwrap_err();
        assert_eq!(
            err,
            DerError::UnexpectedTag {
                expected: Tag::OCTET_STRING,
                found: Tag::INTEGER
            }
        );
    }

    #[test]
    fn context_tag_round_trip() {
        let mut w = Writer::new();
        w.write_constructed(Tag::CTX_0, |w| w.write_u32(0));
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 0xA0);
        let mut r = Reader::new(&bytes);
        let v = r.read_constructed(Tag::CTX_0, |r| r.read_u32()).unwrap();
        assert_eq!(v, 0);
    }

    #[test]
    fn peek_does_not_consume() {
        let bytes = encode_u32(7);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.peek_tag(), Some(Tag::INTEGER));
        assert_eq!(r.peek_tag(), Some(Tag::INTEGER));
        assert_eq!(r.read_u32().unwrap(), 7);
        assert_eq!(r.peek_tag(), None);
    }
}
