//! RFC 6482 `RouteOriginAttestation` encoding and decoding.
//!
//! ```text
//! RouteOriginAttestation ::= SEQUENCE {
//!     version [0] INTEGER DEFAULT 0,
//!     asID ASID,
//!     ipAddrBlocks SEQUENCE OF ROAIPAddressFamily }
//!
//! ROAIPAddressFamily ::= SEQUENCE {
//!     addressFamily OCTET STRING (SIZE (2..3)),
//!     addresses SEQUENCE OF ROAIPAddress }
//!
//! ROAIPAddress ::= SEQUENCE {
//!     address IPAddress,        -- BIT STRING, RFC 3779 style
//!     maxLength INTEGER OPTIONAL }
//! ```
//!
//! DER requires DEFAULT components to be absent, so a version-0 ROA never
//! carries the `[0]` tag; the decoder still accepts an explicit zero only
//! in the position RFC 6482 allows and rejects any other version.

use rpki_prefix::{Afi, Prefix};

use crate::der::{DerError, Reader, Tag, Writer};
use crate::{Asn, Roa, RoaPrefix};

/// Encodes a ROA's `RouteOriginAttestation` eContent as DER.
///
/// Prefix entries are grouped per address family; the IPv4 block precedes
/// the IPv6 block and entries keep the ROA's canonical sorted order.
pub fn encode_roa(roa: &Roa) -> Vec<u8> {
    let mut w = Writer::new();
    w.write_sequence(|w| {
        // version 0 is DEFAULT: omitted under DER.
        w.write_u32(roa.asn().into_u32());
        w.write_sequence(|w| {
            for afi in [Afi::V4, Afi::V6] {
                let entries: Vec<&RoaPrefix> = roa
                    .prefixes()
                    .iter()
                    .filter(|p| p.prefix.afi() == afi)
                    .collect();
                if entries.is_empty() {
                    continue;
                }
                w.write_sequence(|w| {
                    w.write_octet_string(&afi.code().to_be_bytes());
                    w.write_sequence(|w| {
                        for entry in entries {
                            write_roa_ip_address(w, entry);
                        }
                    });
                });
            }
        });
    });
    w.into_bytes()
}

fn write_roa_ip_address(w: &mut Writer, entry: &RoaPrefix) {
    w.write_sequence(|w| {
        let bits = entry.prefix.bits_u128().to_be_bytes();
        w.write_bit_string(&bits, entry.prefix.len() as usize);
        if let Some(max_len) = entry.max_len {
            w.write_u32(max_len as u32);
        }
    });
}

/// Decodes a DER-encoded `RouteOriginAttestation` back into a [`Roa`].
///
/// Strictness follows RFC 6482 plus DER: unknown versions, out-of-range
/// maxLengths, unknown address families, oversized address bit strings, and
/// trailing bytes are all rejected.
pub fn decode_roa(data: &[u8]) -> Result<Roa, DerError> {
    let mut outer = Reader::new(data);
    let roa = outer.read_sequence(|r| {
        if r.peek_tag() == Some(Tag::CTX_0) {
            // An explicitly encoded version: RFC 6482 only defines 0, and
            // DER forbids encoding the default — be liberal enough to read
            // a spelled-out zero but nothing else.
            let version = r.read_constructed(Tag::CTX_0, |r| r.read_u32())?;
            if version != 0 {
                return Err(DerError::BadValue("unsupported ROA version"));
            }
        }
        let asn = Asn(r.read_u32()?);
        let mut prefixes = Vec::new();
        r.read_sequence(|r| {
            while !r.is_at_end() {
                read_address_family(r, &mut prefixes)?;
            }
            Ok(())
        })?;
        Roa::new(asn, prefixes).map_err(|_| DerError::BadValue("invalid ROA contents"))
    })?;
    outer.expect_end()?;
    Ok(roa)
}

fn read_address_family(r: &mut Reader<'_>, prefixes: &mut Vec<RoaPrefix>) -> Result<(), DerError> {
    r.read_sequence(|r| {
        let family = r.read_octet_string()?;
        // SIZE (2..3): an optional third octet carries a SAFI we ignore.
        let afi = match family.as_slice() {
            [a, b] | [a, b, _] => Afi::from_code(u16::from_be_bytes([*a, *b]))
                .ok_or(DerError::BadValue("unknown address family"))?,
            _ => return Err(DerError::BadValue("malformed addressFamily")),
        };
        r.read_sequence(|r| {
            while !r.is_at_end() {
                prefixes.push(read_roa_ip_address(r, afi)?);
            }
            Ok(())
        })
    })
}

fn read_roa_ip_address(r: &mut Reader<'_>, afi: Afi) -> Result<RoaPrefix, DerError> {
    r.read_sequence(|r| {
        let (bytes, bit_len) = r.read_bit_string()?;
        if bit_len > afi.max_len() as usize {
            return Err(DerError::BadValue("address longer than family maximum"));
        }
        let mut padded = [0u8; 16];
        padded[..bytes.len()].copy_from_slice(&bytes);
        let prefix = Prefix::from_bits_u128(afi, u128::from_be_bytes(padded), bit_len as u8)
            .map_err(|_| DerError::BadValue("invalid prefix bits"))?;
        let max_len = if r.is_at_end() {
            None
        } else {
            let ml = r.read_u32()?;
            let ml = u8::try_from(ml).map_err(|_| DerError::BadValue("maxLength too large"))?;
            Some(ml)
        };
        Ok(RoaPrefix { prefix, max_len })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn paper_roa() -> Roa {
        // §7's example: ROA: ({87.254.32.0/19-20, 87.254.32.0/21}, AS 31283)
        Roa::new(
            Asn(31283),
            vec![
                RoaPrefix::with_max_len(pfx("87.254.32.0/19"), 20),
                RoaPrefix::exact(pfx("87.254.32.0/21")),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_paper_example() {
        let roa = paper_roa();
        let der = encode_roa(&roa);
        let back = decode_roa(&der).unwrap();
        assert_eq!(roa, back);
    }

    #[test]
    fn round_trip_mixed_families() {
        let roa = Roa::new(
            Asn(65000),
            vec![
                RoaPrefix::exact(pfx("10.0.0.0/8")),
                RoaPrefix::with_max_len(pfx("10.64.0.0/10"), 24),
                RoaPrefix::exact(pfx("2001:db8::/32")),
                RoaPrefix::with_max_len(pfx("2001:db8:1::/48"), 64),
            ],
        )
        .unwrap();
        let back = decode_roa(&encode_roa(&roa)).unwrap();
        assert_eq!(roa, back);
    }

    #[test]
    fn round_trip_edge_prefixes() {
        for entry in [
            RoaPrefix::exact(pfx("0.0.0.0/0")),
            RoaPrefix::with_max_len(pfx("0.0.0.0/0"), 32),
            RoaPrefix::exact(pfx("255.255.255.255/32")),
            RoaPrefix::exact(pfx("::/0")),
            RoaPrefix::with_max_len(pfx("::/0"), 128),
            RoaPrefix::exact(pfx("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff/128")),
        ] {
            let roa = Roa::new(Asn(1), vec![entry]).unwrap();
            assert_eq!(decode_roa(&encode_roa(&roa)).unwrap(), roa, "{entry:?}");
        }
    }

    #[test]
    fn v4_block_precedes_v6() {
        let roa = Roa::new(
            Asn(1),
            vec![
                RoaPrefix::exact(pfx("2001:db8::/32")),
                RoaPrefix::exact(pfx("10.0.0.0/8")),
            ],
        )
        .unwrap();
        let der = encode_roa(&roa);
        // Find the two family OCTET STRINGs (tag 0x04, len 2).
        let fams: Vec<u16> = der
            .windows(4)
            .filter(|w| w[0] == 0x04 && w[1] == 2)
            .map(|w| u16::from_be_bytes([w[2], w[3]]))
            .collect();
        assert_eq!(fams, vec![1, 2]);
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let der = encode_roa(&paper_roa());
        for cut in 0..der.len() {
            assert!(decode_roa(&der[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut der = encode_roa(&paper_roa());
        der.push(0x00);
        assert_eq!(decode_roa(&der), Err(DerError::TrailingBytes));
    }

    #[test]
    fn rejects_unknown_family() {
        let mut w = Writer::new();
        w.write_sequence(|w| {
            w.write_u32(1);
            w.write_sequence(|w| {
                w.write_sequence(|w| {
                    w.write_octet_string(&[0x00, 0x07]); // AFI 7: not a thing
                    w.write_sequence(|w| {
                        w.write_sequence(|w| w.write_bit_string(&[10], 8));
                    });
                });
            });
        });
        assert_eq!(
            decode_roa(&w.into_bytes()),
            Err(DerError::BadValue("unknown address family"))
        );
    }

    #[test]
    fn rejects_bad_maxlength_semantics() {
        // maxLength 8 on a /16: structurally valid DER, invalid ROA.
        let mut w = Writer::new();
        w.write_sequence(|w| {
            w.write_u32(1);
            w.write_sequence(|w| {
                w.write_sequence(|w| {
                    w.write_octet_string(&[0x00, 0x01]);
                    w.write_sequence(|w| {
                        w.write_sequence(|w| {
                            w.write_bit_string(&[10, 0], 16);
                            w.write_u32(8);
                        });
                    });
                });
            });
        });
        assert!(decode_roa(&w.into_bytes()).is_err());
    }

    #[test]
    fn rejects_overlong_address() {
        // 40-bit "IPv4" address.
        let mut w = Writer::new();
        w.write_sequence(|w| {
            w.write_u32(1);
            w.write_sequence(|w| {
                w.write_sequence(|w| {
                    w.write_octet_string(&[0x00, 0x01]);
                    w.write_sequence(|w| {
                        w.write_sequence(|w| w.write_bit_string(&[1, 2, 3, 4, 5], 40));
                    });
                });
            });
        });
        assert_eq!(
            decode_roa(&w.into_bytes()),
            Err(DerError::BadValue("address longer than family maximum"))
        );
    }

    #[test]
    fn rejects_nonzero_version() {
        let mut w = Writer::new();
        w.write_sequence(|w| {
            w.write_constructed(Tag::CTX_0, |w| w.write_u32(1));
            w.write_u32(1);
            w.write_sequence(|_| {});
        });
        assert_eq!(
            decode_roa(&w.into_bytes()),
            Err(DerError::BadValue("unsupported ROA version"))
        );
    }

    #[test]
    fn accepts_explicit_zero_version() {
        let mut w = Writer::new();
        w.write_sequence(|w| {
            w.write_constructed(Tag::CTX_0, |w| w.write_u32(0));
            w.write_u32(31283);
            w.write_sequence(|w| {
                w.write_sequence(|w| {
                    w.write_octet_string(&[0x00, 0x01]);
                    w.write_sequence(|w| {
                        w.write_sequence(|w| w.write_bit_string(&[87, 254, 32], 19));
                    });
                });
            });
        });
        let roa = decode_roa(&w.into_bytes()).unwrap();
        assert_eq!(roa.asn(), Asn(31283));
        assert_eq!(roa.prefixes()[0].prefix, pfx("87.254.32.0/19"));
    }

    #[test]
    fn rejects_empty_roa() {
        let mut w = Writer::new();
        w.write_sequence(|w| {
            w.write_u32(1);
            w.write_sequence(|_| {});
        });
        assert!(decode_roa(&w.into_bytes()).is_err());
    }

    #[test]
    fn accepts_three_byte_family_with_safi() {
        let mut w = Writer::new();
        w.write_sequence(|w| {
            w.write_u32(1);
            w.write_sequence(|w| {
                w.write_sequence(|w| {
                    w.write_octet_string(&[0x00, 0x01, 0x01]); // AFI 1 + SAFI
                    w.write_sequence(|w| {
                        w.write_sequence(|w| w.write_bit_string(&[10], 8));
                    });
                });
            });
        });
        let roa = decode_roa(&w.into_bytes()).unwrap();
        assert_eq!(roa.prefixes()[0].prefix, pfx("10.0.0.0/8"));
    }
}
