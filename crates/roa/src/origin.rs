use std::fmt;
use std::str::FromStr;

use rpki_prefix::Prefix;

use crate::Asn;

/// A `(prefix, origin AS)` pair — one row of a BGP routing table as seen by
/// the paper's measurement pipeline (§6), which compares Route Views dumps
/// against ROAs.
///
/// Parses from and displays as `prefix => ASN`, e.g.
/// `168.122.0.0/16 => AS111`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouteOrigin {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The AS originating the announcement.
    pub origin: Asn,
}

impl RouteOrigin {
    /// Creates a route origin pair.
    pub fn new(prefix: Prefix, origin: Asn) -> Self {
        RouteOrigin { prefix, origin }
    }
}

impl fmt::Display for RouteOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} => {}", self.prefix, self.origin)
    }
}

/// Error parsing a [`RouteOrigin`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRouteOriginError(String);

impl fmt::Display for ParseRouteOriginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid route origin: {:?}", self.0)
    }
}

impl std::error::Error for ParseRouteOriginError {}

impl FromStr for RouteOrigin {
    type Err = ParseRouteOriginError;

    fn from_str(s: &str) -> Result<RouteOrigin, ParseRouteOriginError> {
        let (prefix, asn) = s
            .split_once("=>")
            .ok_or_else(|| ParseRouteOriginError(s.to_string()))?;
        let prefix: Prefix = prefix
            .trim()
            .parse()
            .map_err(|_| ParseRouteOriginError(s.to_string()))?;
        let origin: Asn = asn
            .trim()
            .parse()
            .map_err(|_| ParseRouteOriginError(s.to_string()))?;
        Ok(RouteOrigin { prefix, origin })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let r: RouteOrigin = "168.122.0.0/16 => AS111".parse().unwrap();
        assert_eq!(r.prefix.to_string(), "168.122.0.0/16");
        assert_eq!(r.origin, Asn(111));
        assert_eq!(r.to_string(), "168.122.0.0/16 => AS111");
        let back: RouteOrigin = r.to_string().parse().unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn parse_v6_and_bare_asn() {
        let r: RouteOrigin = "2001:db8::/32=>65000".parse().unwrap();
        assert!(r.prefix.is_v6());
        assert_eq!(r.origin, Asn(65000));
    }

    #[test]
    fn rejects_malformed() {
        assert!("168.122.0.0/16".parse::<RouteOrigin>().is_err());
        assert!("=> AS111".parse::<RouteOrigin>().is_err());
        assert!("foo => AS111".parse::<RouteOrigin>().is_err());
        assert!("10.0.0.0/8 => banana".parse::<RouteOrigin>().is_err());
    }

    #[test]
    fn ordering_groups_by_prefix() {
        let a: RouteOrigin = "10.0.0.0/8 => AS2".parse().unwrap();
        let b: RouteOrigin = "10.0.0.0/8 => AS3".parse().unwrap();
        let c: RouteOrigin = "11.0.0.0/8 => AS1".parse().unwrap();
        assert!(a < b && b < c);
    }
}
