//! A mock signed-object envelope standing in for the RPKI CMS wrapping.
//!
//! Real ROAs travel inside a CMS `SignedData` structure (RFC 6488) with an
//! X.509 resource certificate chain. Everything this workspace measures
//! happens strictly *after* a relying party has cryptographically validated
//! that envelope (paper §7.1: `scan_roas` runs on
//! "cryptographically-validated ROAs"), so the envelope here replaces the
//! crypto with a deterministic integrity check: a 64-bit FNV-1a digest
//! plays the role of the signature. Corrupted objects are rejected exactly
//! where invalidly-signed ROAs would be, exercising the same error paths
//! in the pipeline.
//!
//! Wire layout (all integers big-endian):
//!
//! ```text
//! +---------+---------+----------------+-------------------+---------+
//! | "RPKI-M"| version | payload length | FNV-1a-64 digest  | payload |
//! | 6 bytes | 1 byte  | u32            | u64               | DER     |
//! +---------+---------+----------------+-------------------+---------+
//! ```

use std::fmt;

use crate::codec::{decode_roa, encode_roa};
use crate::der::DerError;
use crate::Roa;

const MAGIC: &[u8; 6] = b"RPKI-M";
const VERSION: u8 = 1;
const HEADER_LEN: usize = 6 + 1 + 4 + 8;

/// Errors opening a mock signed object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The magic bytes are absent — not one of our objects.
    BadMagic,
    /// An envelope version this implementation does not understand.
    BadVersion(u8),
    /// The object ends before the declared payload length.
    Truncated,
    /// The digest does not match the payload — the stand-in for a bad
    /// signature.
    DigestMismatch,
    /// The payload is not a valid `RouteOriginAttestation`.
    Content(DerError),
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::BadMagic => write!(f, "not a mock RPKI signed object"),
            EnvelopeError::BadVersion(v) => write!(f, "unsupported envelope version {v}"),
            EnvelopeError::Truncated => write!(f, "signed object truncated"),
            EnvelopeError::DigestMismatch => {
                write!(f, "digest mismatch (signature validation failed)")
            }
            EnvelopeError::Content(e) => write!(f, "invalid ROA content: {e}"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

impl From<DerError> for EnvelopeError {
    fn from(e: DerError) -> Self {
        EnvelopeError::Content(e)
    }
}

/// "Signs" a ROA: encodes its eContent as DER and wraps it in the mock
/// envelope.
pub fn seal_roa(roa: &Roa) -> Vec<u8> {
    let payload = encode_roa(roa);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// "Validates" a mock signed object and extracts the ROA, rejecting
/// structural corruption the way a relying party rejects bad signatures.
pub fn open_roa(data: &[u8]) -> Result<Roa, EnvelopeError> {
    if data.len() < HEADER_LEN {
        return if data.len() >= 6 && &data[..6] != MAGIC {
            Err(EnvelopeError::BadMagic)
        } else {
            Err(EnvelopeError::Truncated)
        };
    }
    if &data[..6] != MAGIC {
        return Err(EnvelopeError::BadMagic);
    }
    if data[6] != VERSION {
        return Err(EnvelopeError::BadVersion(data[6]));
    }
    let len = u32::from_be_bytes(data[7..11].try_into().expect("4 bytes")) as usize;
    let digest = u64::from_be_bytes(data[11..19].try_into().expect("8 bytes"));
    let payload = data
        .get(HEADER_LEN..HEADER_LEN + len)
        .ok_or(EnvelopeError::Truncated)?;
    if fnv1a64(payload) != digest {
        return Err(EnvelopeError::DigestMismatch);
    }
    Ok(decode_roa(payload)?)
}

/// FNV-1a, 64-bit: small, deterministic, good-enough dispersion for an
/// integrity stand-in (explicitly NOT cryptographic).
fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asn, RoaPrefix};
    use rpki_prefix::Prefix;

    fn sample_roa() -> Roa {
        Roa::new(
            Asn(111),
            vec![RoaPrefix::with_max_len(
                "168.122.0.0/16".parse::<Prefix>().unwrap(),
                24,
            )],
        )
        .unwrap()
    }

    #[test]
    fn seal_open_round_trip() {
        let roa = sample_roa();
        let sealed = seal_roa(&roa);
        assert_eq!(open_roa(&sealed).unwrap(), roa);
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut sealed = seal_roa(&sample_roa());
        sealed[0] = b'X';
        assert_eq!(open_roa(&sealed), Err(EnvelopeError::BadMagic));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut sealed = seal_roa(&sample_roa());
        sealed[6] = 9;
        assert_eq!(open_roa(&sealed), Err(EnvelopeError::BadVersion(9)));
    }

    #[test]
    fn rejects_payload_corruption() {
        let mut sealed = seal_roa(&sample_roa());
        let last = sealed.len() - 1;
        sealed[last] ^= 0x01;
        assert_eq!(open_roa(&sealed), Err(EnvelopeError::DigestMismatch));
    }

    #[test]
    fn rejects_digest_corruption() {
        let mut sealed = seal_roa(&sample_roa());
        sealed[12] ^= 0xFF;
        assert_eq!(open_roa(&sealed), Err(EnvelopeError::DigestMismatch));
    }

    #[test]
    fn rejects_truncation() {
        let sealed = seal_roa(&sample_roa());
        for cut in 0..sealed.len() {
            let res = open_roa(&sealed[..cut]);
            assert!(res.is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(open_roa(&[]), Err(EnvelopeError::Truncated));
    }
}
