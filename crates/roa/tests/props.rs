//! Property tests: ROA DER encoding and the mock envelope must round-trip
//! arbitrary well-formed ROAs, and the codec must never panic on garbage.

use proptest::prelude::*;
use rpki_prefix::{Prefix, Prefix4, Prefix6};
use rpki_roa::codec::{decode_roa, encode_roa};
use rpki_roa::envelope::{open_roa, seal_roa};
use rpki_roa::{Asn, Roa, RoaPrefix, Vrp};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        (any::<u32>(), 0u8..=32).prop_map(|(b, l)| Prefix::V4(Prefix4::new_truncated(b, l))),
        (any::<u128>(), 0u8..=128).prop_map(|(b, l)| Prefix::V6(Prefix6::new_truncated(b, l))),
    ]
}

fn arb_roa_prefix() -> impl Strategy<Value = RoaPrefix> {
    (arb_prefix(), any::<u8>(), any::<bool>()).prop_map(|(p, extra, with_ml)| {
        if with_ml {
            let ml = p.len().saturating_add(extra % 9).min(p.max_len());
            RoaPrefix::with_max_len(p, ml)
        } else {
            RoaPrefix::exact(p)
        }
    })
}

fn arb_roa() -> impl Strategy<Value = Roa> {
    (any::<u32>(), prop::collection::vec(arb_roa_prefix(), 1..20))
        .prop_map(|(asn, prefixes)| Roa::new(Asn(asn), prefixes).expect("well-formed"))
}

proptest! {
    #[test]
    fn der_round_trip(roa in arb_roa()) {
        let der = encode_roa(&roa);
        let back = decode_roa(&der).unwrap();
        prop_assert_eq!(roa, back);
    }

    #[test]
    fn envelope_round_trip(roa in arb_roa()) {
        let sealed = seal_roa(&roa);
        let back = open_roa(&sealed).unwrap();
        prop_assert_eq!(roa, back);
    }

    #[test]
    fn envelope_detects_single_bit_flips(roa in arb_roa(), at in any::<prop::sample::Index>(), bit in 0u8..8) {
        let sealed = seal_roa(&roa);
        let mut corrupt = sealed.clone();
        let idx = at.index(corrupt.len());
        corrupt[idx] ^= 1 << bit;
        // A flipped bit must never silently yield a *different* ROA.
        if let Ok(back) = open_roa(&corrupt) { prop_assert_eq!(back, roa) }
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_roa(&data);
        let _ = open_roa(&data);
    }

    #[test]
    fn vrp_display_parse_round_trip(p in arb_prefix(), extra in 0u8..9, asn in any::<u32>()) {
        let ml = p.len().saturating_add(extra).min(p.max_len());
        let vrp = Vrp::new(p, ml, Asn(asn));
        let text = vrp.to_string();
        let back: Vrp = text.parse().unwrap();
        prop_assert_eq!(vrp, back);
    }

    #[test]
    fn vrps_of_roa_all_well_bounded(roa in arb_roa()) {
        for vrp in roa.vrps() {
            prop_assert!(vrp.max_len >= vrp.prefix.len());
            prop_assert!(vrp.max_len <= vrp.prefix.max_len());
            prop_assert_eq!(vrp.asn, roa.asn());
        }
    }
}
