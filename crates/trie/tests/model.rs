//! Model-based property tests: the radix trie must behave exactly like a
//! `BTreeMap` under an arbitrary interleaving of operations, and its query
//! operations must agree with brute-force scans.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rpki_prefix::Prefix4;
use rpki_trie::RadixTrie;

fn arb_prefix() -> impl Strategy<Value = Prefix4> {
    // A small bit-universe to force collisions, junctions, and deep nesting.
    (any::<u8>(), 0u8..=8).prop_map(|(bits, len)| Prefix4::new_truncated((bits as u32) << 24, len))
}

fn arb_wide_prefix() -> impl Strategy<Value = Prefix4> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix4::new_truncated(bits, len))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Prefix4, u32),
    Remove(Prefix4),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (arb_prefix(), any::<u32>()).prop_map(|(p, v)| Op::Insert(p, v)),
            1 => arb_prefix().prop_map(Op::Remove),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn behaves_like_btreemap(ops in arb_ops(), probes in prop::collection::vec(arb_prefix(), 20)) {
        let mut trie = RadixTrie::new();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(trie.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(trie.remove(k), model.remove(&k));
                }
            }
            prop_assert_eq!(trie.len(), model.len());
        }
        // Exhaustive agreement on the final state.
        let trie_entries: Vec<_> = trie.iter().map(|(k, v)| (k, *v)).collect();
        let model_entries: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(trie_entries, model_entries);
        for probe in probes {
            prop_assert_eq!(trie.get(probe), model.get(&probe));
        }
    }

    #[test]
    fn longest_match_agrees_with_scan(
        entries in prop::collection::btree_map(arb_wide_prefix(), any::<u32>(), 0..100),
        query in arb_wide_prefix(),
    ) {
        let trie: RadixTrie<Prefix4, u32> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        let expect = entries
            .keys()
            .filter(|k| k.covers(query))
            .max_by_key(|k| k.len())
            .copied();
        prop_assert_eq!(trie.longest_match(query).map(|(k, _)| k), expect);
    }

    #[test]
    fn covering_agrees_with_scan(
        entries in prop::collection::btree_map(arb_wide_prefix(), any::<u32>(), 0..100),
        query in arb_wide_prefix(),
    ) {
        let trie: RadixTrie<Prefix4, u32> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        let got: Vec<_> = trie.iter_covering(query).map(|(k, _)| k).collect();
        let expect: Vec<_> = entries.keys().copied().filter(|k| k.covers(query)).collect();
        prop_assert_eq!(got, expect); // both in ascending length order
    }

    #[test]
    fn covered_by_agrees_with_scan(
        entries in prop::collection::btree_map(arb_wide_prefix(), any::<u32>(), 0..100),
        query in arb_wide_prefix(),
    ) {
        let trie: RadixTrie<Prefix4, u32> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        let got: Vec<_> = trie.iter_covered_by(query).map(|(k, _)| k).collect();
        let expect: Vec<_> = entries.keys().copied().filter(|k| query.covers(*k)).collect();
        prop_assert_eq!(got, expect); // sorted order matches BTreeMap order
    }

    #[test]
    fn count_covered_matches_filtered_scan(
        entries in prop::collection::btree_map(arb_prefix(), any::<u32>(), 0..60),
        query in arb_prefix(),
        max_len in 0u8..=8,
    ) {
        let trie: RadixTrie<Prefix4, u32> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        let expect = entries
            .keys()
            .filter(|k| query.covers(**k) && k.len() <= max_len)
            .count();
        prop_assert_eq!(trie.count_covered_by(query, max_len), expect);
    }

    #[test]
    fn iter_is_sorted_and_complete(
        entries in prop::collection::btree_map(arb_wide_prefix(), any::<u32>(), 0..100),
    ) {
        let trie: RadixTrie<Prefix4, u32> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        let keys: Vec<_> = trie.keys().collect();
        let expect: Vec<_> = entries.keys().copied().collect();
        prop_assert_eq!(keys, expect);
    }

    #[test]
    fn insert_remove_round_trip_leaves_no_trace(
        base in prop::collection::btree_map(arb_prefix(), any::<u32>(), 0..40),
        extra in prop::collection::vec(arb_prefix(), 0..20),
    ) {
        let mut trie: RadixTrie<Prefix4, u32> = base.iter().map(|(k, v)| (*k, *v)).collect();
        // Insert then remove keys not in the base set; state must revert.
        let fresh: Vec<_> = extra.into_iter().filter(|k| !base.contains_key(k)).collect();
        for k in &fresh {
            trie.insert(*k, 0xDEAD);
        }
        for k in &fresh {
            trie.remove(*k);
        }
        let entries: Vec<_> = trie.iter().map(|(k, v)| (k, *v)).collect();
        let expect: Vec<_> = base.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(entries, expect);
    }
}
