use rpki_prefix::{Prefix4, Prefix6};

/// A key that can index a binary radix trie.
///
/// A key is a bit string of bounded length; the trie organizes keys by the
/// prefix partial order. [`Prefix4`] and [`Prefix6`] implement this
/// directly. The trait's contract mirrors CIDR semantics:
///
/// * `covers` is the prefix-of relation (reflexive),
/// * `bit(i)` is the i-th most significant bit, defined for `i < len()`,
/// * `common_ancestor` returns the longest key covering both operands.
pub trait TrieKey: Copy + Eq + Ord + std::fmt::Debug {
    /// The maximum key length in bits.
    const MAX_LEN: u8;

    /// The key length in bits.
    fn key_len(self) -> u8;

    /// The bit at `index` (0-based from the most significant end).
    /// Only defined for `index < self.key_len()`.
    fn bit(self, index: u8) -> bool;

    /// `true` if `self` is a (non-strict) prefix of `other`.
    fn covers(self, other: Self) -> bool;

    /// The longest key that covers both `self` and `other`.
    fn common_ancestor(self, other: Self) -> Self;
}

impl TrieKey for Prefix4 {
    const MAX_LEN: u8 = 32;

    #[inline]
    fn key_len(self) -> u8 {
        self.len()
    }

    #[inline]
    fn bit(self, index: u8) -> bool {
        Prefix4::bit(self, index)
    }

    #[inline]
    fn covers(self, other: Self) -> bool {
        Prefix4::covers(self, other)
    }

    #[inline]
    fn common_ancestor(self, other: Self) -> Self {
        Prefix4::common_ancestor(self, other)
    }
}

impl TrieKey for Prefix6 {
    const MAX_LEN: u8 = 128;

    #[inline]
    fn key_len(self) -> u8 {
        self.len()
    }

    #[inline]
    fn bit(self, index: u8) -> bool {
        Prefix6::bit(self, index)
    }

    #[inline]
    fn covers(self, other: Self) -> bool {
        Prefix6::covers(self, other)
    }

    #[inline]
    fn common_ancestor(self, other: Self) -> Self {
        Prefix6::common_ancestor(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix4_key_contract() {
        let p: Prefix4 = "10.0.0.0/8".parse().unwrap();
        let q: Prefix4 = "10.128.0.0/9".parse().unwrap();
        assert_eq!(p.key_len(), 8);
        assert!(TrieKey::covers(p, q));
        assert!(TrieKey::bit(q, 8)); // the 9th bit distinguishes q from p's left child
        assert_eq!(TrieKey::common_ancestor(p, q), p);
    }

    #[test]
    fn prefix6_key_contract() {
        let p: Prefix6 = "2001:db8::/32".parse().unwrap();
        let q: Prefix6 = "2001:db8:8000::/33".parse().unwrap();
        assert!(TrieKey::covers(p, q));
        assert!(TrieKey::bit(q, 32));
        assert_eq!(TrieKey::common_ancestor(p, q), p);
    }
}
