use crate::node::Node;
use crate::TrieKey;

/// A path-compressed binary radix trie mapping prefix-like keys to values.
///
/// All operations are `O(key length)` in node visits. See the crate docs
/// for an overview and the structural invariants maintained.
#[derive(Debug, Clone)]
pub struct RadixTrie<K, V> {
    root: Option<Box<Node<K, V>>>,
    len: usize,
}

impl<K: TrieKey, V> Default for RadixTrie<K, V> {
    fn default() -> Self {
        RadixTrie::new()
    }
}

impl<K: TrieKey, V> RadixTrie<K, V> {
    /// Creates an empty trie.
    pub const fn new() -> Self {
        RadixTrie { root: None, len: 0 }
    }

    /// The number of stored entries (junction nodes are not counted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    /// Inserts `value` at `key`, returning the previous value at that exact
    /// key if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let old = Self::insert_rec(&mut self.root, key, value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(slot: &mut Option<Box<Node<K, V>>>, key: K, value: V) -> Option<V> {
        let Some(node) = slot else {
            *slot = Some(Box::new(Node::leaf(key, value)));
            return None;
        };
        if node.key == key {
            return node.value.replace(value);
        }
        if node.key.covers(key) {
            return Self::insert_rec(node.child_for(key), key, value);
        }
        if key.covers(node.key) {
            // New node becomes the parent of the current node.
            let old = slot.take().expect("checked non-empty");
            let old_key = old.key;
            let mut new_node = Box::new(Node::leaf(key, value));
            *new_node.child_for(old_key) = Some(old);
            *slot = Some(new_node);
            return None;
        }
        // Diverging keys: join them under a fresh junction.
        let ancestor = key.common_ancestor(node.key);
        let old = slot.take().expect("checked non-empty");
        let old_key = old.key;
        let mut junction = Box::new(Node::junction(ancestor));
        *junction.child_for(old_key) = Some(old);
        *junction.child_for(key) = Some(Box::new(Node::leaf(key, value)));
        *slot = Some(junction);
        None
    }

    /// The value stored at exactly `key`.
    pub fn get(&self, key: K) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        loop {
            if node.key == key {
                return node.value.as_ref();
            }
            if !(node.key.covers(key) && key.key_len() > node.key.key_len()) {
                return None;
            }
            node = node.child_for_ref(key).as_deref()?;
        }
    }

    /// Mutable access to the value stored at exactly `key`.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        let mut node = self.root.as_deref_mut()?;
        loop {
            if node.key == key {
                return node.value.as_mut();
            }
            if !(node.key.covers(key) && key.key_len() > node.key.key_len()) {
                return None;
            }
            node = node.child_for(key).as_deref_mut()?;
        }
    }

    /// `true` if a value is stored at exactly `key`.
    pub fn contains_key(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts a value computed from `default` if `key` is vacant, then
    /// returns a mutable reference to the value at `key`.
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key, default());
        }
        self.get_mut(key).expect("just inserted")
    }

    /// Removes and returns the value at exactly `key`. Junctions left with a
    /// single child are collapsed so the structure stays minimal.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(slot: &mut Option<Box<Node<K, V>>>, key: K) -> Option<V> {
        let node = slot.as_deref_mut()?;
        let removed = if node.key == key {
            node.value.take()
        } else if node.key.covers(key) && key.key_len() > node.key.key_len() {
            let child_slot = node.child_for(key);
            Self::remove_rec(child_slot, key)
        } else {
            None
        };
        if removed.is_some() {
            Self::normalize(slot);
        }
        removed
    }

    /// Restores the invariants after a removal below `slot`: drops empty
    /// value-less nodes and collapses single-child junctions.
    fn normalize(slot: &mut Option<Box<Node<K, V>>>) {
        let Some(node) = slot.as_deref_mut() else {
            return;
        };
        if !node.is_junction() {
            return;
        }
        match node.child_count() {
            0 => *slot = None,
            1 => {
                let child = node.take_only_child().expect("count is one");
                *slot = Some(child);
            }
            _ => {}
        }
    }

    /// Longest-prefix match: the entry with the longest key covering
    /// `query`, as a router's FIB lookup would select it.
    pub fn longest_match(&self, query: K) -> Option<(K, &V)> {
        let mut best = None;
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if !n.key.covers(query) {
                break;
            }
            if let Some(v) = n.value.as_ref() {
                best = Some((n.key, v));
            }
            if n.key == query {
                break;
            }
            node = n.child_for_ref(query).as_deref();
        }
        best
    }

    /// Iterates over all entries whose key covers `query` (the RFC 6811
    /// "covering" set), from shortest to longest key.
    pub fn iter_covering(&self, query: K) -> IterCovering<'_, K, V> {
        IterCovering {
            node: self.root.as_deref(),
            query,
        }
    }

    /// Iterates over all entries whose key is covered by `query` (the
    /// subtree under `query`), in sorted key order.
    pub fn iter_covered_by(&self, query: K) -> IterCoveredBy<'_, K, V> {
        // Descend until the remaining subtree is entirely covered by the
        // query (or provably disjoint from it).
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if query.covers(n.key) {
                return IterCoveredBy { stack: vec![n] };
            }
            if n.key.covers(query) && query.key_len() > n.key.key_len() {
                node = n.child_for_ref(query).as_deref();
            } else {
                break;
            }
        }
        IterCoveredBy { stack: Vec::new() }
    }

    /// Counts entries covered by `query` with key length at most `max_len`.
    pub fn count_covered_by(&self, query: K, max_len: u8) -> usize {
        self.iter_covered_by(query)
            .filter(|(k, _)| k.key_len() <= max_len)
            .count()
    }

    /// Iterates over all entries in sorted key order (a parent always
    /// precedes the keys it covers).
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            stack: self.root.as_deref().into_iter().collect(),
        }
    }

    /// Iterates over all keys in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over all values in sorted key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

/// Sorted-order iterator over a trie; see [`RadixTrie::iter`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K: TrieKey, V> Iterator for Iter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<(K, &'a V)> {
        // Pre-order DFS (node, left, right) emits keys in (bits, len) order.
        while let Some(node) = self.stack.pop() {
            if let Some(r) = node.right.as_deref() {
                self.stack.push(r);
            }
            if let Some(l) = node.left.as_deref() {
                self.stack.push(l);
            }
            if let Some(v) = node.value.as_ref() {
                return Some((node.key, v));
            }
        }
        None
    }
}

impl<'a, K: TrieKey, V> IntoIterator for &'a RadixTrie<K, V> {
    type Item = (K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Iter<'a, K, V> {
        self.iter()
    }
}

impl<K: TrieKey, V> FromIterator<(K, V)> for RadixTrie<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut trie = RadixTrie::new();
        for (k, v) in iter {
            trie.insert(k, v);
        }
        trie
    }
}

impl<K: TrieKey, V> Extend<(K, V)> for RadixTrie<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// Iterator over covering entries; see [`RadixTrie::iter_covering`].
pub struct IterCovering<'a, K, V> {
    node: Option<&'a Node<K, V>>,
    query: K,
}

impl<'a, K: TrieKey, V> Iterator for IterCovering<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<(K, &'a V)> {
        while let Some(n) = self.node {
            if !n.key.covers(self.query) {
                self.node = None;
                return None;
            }
            let hit = n.value.as_ref().map(|v| (n.key, v));
            self.node = if n.key == self.query {
                None
            } else {
                n.child_for_ref(self.query).as_deref()
            };
            if hit.is_some() {
                return hit;
            }
        }
        None
    }
}

/// Iterator over a covered subtree; see [`RadixTrie::iter_covered_by`].
pub struct IterCoveredBy<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K: TrieKey, V> Iterator for IterCoveredBy<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<(K, &'a V)> {
        while let Some(node) = self.stack.pop() {
            if let Some(r) = node.right.as_deref() {
                self.stack.push(r);
            }
            if let Some(l) = node.left.as_deref() {
                self.stack.push(l);
            }
            if let Some(v) = node.value.as_ref() {
                return Some((node.key, v));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpki_prefix::Prefix4;

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn sample() -> RadixTrie<Prefix4, u32> {
        let mut t = RadixTrie::new();
        for (i, s) in [
            "10.0.0.0/8",
            "10.0.0.0/16",
            "10.1.0.0/16",
            "10.1.128.0/17",
            "192.168.0.0/16",
            "0.0.0.0/0",
        ]
        .iter()
        .enumerate()
        {
            t.insert(p(s), i as u32);
        }
        t
    }

    #[test]
    fn insert_get_basic() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t.get(p("10.1.0.0/16")), Some(&2));
        assert_eq!(t.get(p("10.2.0.0/16")), None);
        assert_eq!(t.get(p("10.0.0.0/9")), None); // junction, no value
        assert!(t.contains_key(p("0.0.0.0/0")));
    }

    #[test]
    fn insert_replaces() {
        let mut t = sample();
        assert_eq!(t.insert(p("10.0.0.0/8"), 99), Some(0));
        assert_eq!(t.len(), 6);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&99));
    }

    #[test]
    fn insert_above_existing() {
        let mut t = RadixTrie::new();
        t.insert(p("10.1.0.0/16"), 1);
        t.insert(p("10.0.0.0/8"), 2); // becomes parent of the /16
        assert_eq!(t.get(p("10.1.0.0/16")), Some(&1));
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_mut_and_or_insert() {
        let mut t = sample();
        *t.get_mut(p("10.0.0.0/8")).unwrap() += 100;
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&100));
        let v = t.get_or_insert_with(p("172.16.0.0/12"), || 7);
        assert_eq!(*v, 7);
        let v = t.get_or_insert_with(p("172.16.0.0/12"), || 8);
        assert_eq!(*v, 7);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn remove_leaf_and_collapse() {
        let mut t = RadixTrie::new();
        t.insert(p("10.0.0.0/16"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        // A junction at 10.0.0.0/15 now joins the two.
        assert_eq!(t.remove(p("10.0.0.0/16")), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.1.0.0/16")), Some(&2));
        assert_eq!(t.remove(p("10.1.0.0/16")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(p("10.1.0.0/16")), None);
    }

    #[test]
    fn remove_interior_keeps_children() {
        let mut t = sample();
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(0));
        assert_eq!(t.len(), 5);
        // Children still reachable.
        assert_eq!(t.get(p("10.0.0.0/16")), Some(&1));
        assert_eq!(t.get(p("10.1.0.0/16")), Some(&2));
        assert_eq!(t.get(p("10.1.128.0/17")), Some(&3));
        // Removed key gone.
        assert_eq!(t.get(p("10.0.0.0/8")), None);
    }

    #[test]
    fn remove_missing_does_not_disturb() {
        let mut t = sample();
        assert_eq!(t.remove(p("10.255.0.0/16")), None);
        assert_eq!(t.remove(p("10.0.0.0/9")), None); // junction position
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn longest_match_prefers_deepest() {
        let t = sample();
        assert_eq!(
            t.longest_match(p("10.1.200.0/24")).map(|(k, _)| k),
            Some(p("10.1.128.0/17"))
        );
        assert_eq!(
            t.longest_match(p("10.1.1.0/24")).map(|(k, _)| k),
            Some(p("10.1.0.0/16"))
        );
        assert_eq!(
            t.longest_match(p("10.200.0.0/16")).map(|(k, _)| k),
            Some(p("10.0.0.0/8"))
        );
        assert_eq!(
            t.longest_match(p("8.8.8.8/32")).map(|(k, _)| k),
            Some(p("0.0.0.0/0"))
        );
        // Exact key is its own longest match.
        assert_eq!(
            t.longest_match(p("10.0.0.0/8")).map(|(k, _)| k),
            Some(p("10.0.0.0/8"))
        );
    }

    #[test]
    fn longest_match_empty() {
        let t: RadixTrie<Prefix4, ()> = RadixTrie::new();
        assert!(t.longest_match(p("1.2.3.4/32")).is_none());
    }

    #[test]
    fn iter_covering_walks_ancestors() {
        let t = sample();
        let covering: Vec<_> = t
            .iter_covering(p("10.1.200.0/24"))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(
            covering,
            vec![
                p("0.0.0.0/0"),
                p("10.0.0.0/8"),
                p("10.1.0.0/16"),
                p("10.1.128.0/17")
            ]
        );
        let covering: Vec<_> = t
            .iter_covering(p("172.16.0.0/12"))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(covering, vec![p("0.0.0.0/0")]);
    }

    #[test]
    fn iter_covered_by_subtree() {
        let t = sample();
        let under: Vec<_> = t.iter_covered_by(p("10.0.0.0/8")).map(|(k, _)| k).collect();
        assert_eq!(
            under,
            vec![
                p("10.0.0.0/8"),
                p("10.0.0.0/16"),
                p("10.1.0.0/16"),
                p("10.1.128.0/17")
            ]
        );
        let under: Vec<_> = t
            .iter_covered_by(p("10.1.0.0/16"))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(under, vec![p("10.1.0.0/16"), p("10.1.128.0/17")]);
        assert_eq!(t.iter_covered_by(p("11.0.0.0/8")).count(), 0);
        // Query below every stored key.
        let under: Vec<_> = t
            .iter_covered_by(p("10.1.128.0/18"))
            .map(|(k, _)| k)
            .collect();
        assert!(under.is_empty());
    }

    #[test]
    fn count_covered_by_respects_max_len() {
        let t = sample();
        assert_eq!(t.count_covered_by(p("10.0.0.0/8"), 32), 4);
        assert_eq!(t.count_covered_by(p("10.0.0.0/8"), 16), 3);
        assert_eq!(t.count_covered_by(p("10.0.0.0/8"), 8), 1);
    }

    #[test]
    fn iter_sorted() {
        let t = sample();
        let keys: Vec<_> = t.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn from_iter_and_extend() {
        let mut t: RadixTrie<Prefix4, u8> = [(p("10.0.0.0/8"), 1)].into_iter().collect();
        t.extend([(p("11.0.0.0/8"), 2)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut t = sample();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        t.insert(p("10.0.0.0/8"), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn values_iterator() {
        let t = sample();
        let sum: u32 = t.values().sum();
        assert_eq!(sum, 1 + 2 + 3 + 4 + 5);
    }
}
