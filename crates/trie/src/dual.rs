//! A pair of per-family tries presenting a single map keyed by
//! [`rpki_prefix::Prefix`].
//!
//! The RPKI keeps IPv4 and IPv6 strictly separate, but most pipeline stages
//! (VRP indexes, BGP tables) want to treat a mixed collection uniformly.
//! [`DualTrie`] dispatches on the address family and otherwise mirrors the
//! [`RadixTrie`] API.

use rpki_prefix::{Afi, Prefix};

use crate::{RadixTrie, Trie4, Trie6};

/// A map from [`Prefix`] (either family) to `V`, backed by one
/// [`RadixTrie`] per address family.
#[derive(Debug, Clone, Default)]
pub struct DualTrie<V> {
    v4: Trie4<V>,
    v6: Trie6<V>,
}

impl<V> DualTrie<V> {
    /// Creates an empty map.
    pub const fn new() -> Self {
        DualTrie {
            v4: RadixTrie::new(),
            v6: RadixTrie::new(),
        }
    }

    /// Total number of entries across both families.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// `true` if both families are empty.
    pub fn is_empty(&self) -> bool {
        self.v4.is_empty() && self.v6.is_empty()
    }

    /// Number of entries in one family.
    pub fn len_for(&self, afi: Afi) -> usize {
        match afi {
            Afi::V4 => self.v4.len(),
            Afi::V6 => self.v6.len(),
        }
    }

    /// The IPv4-side trie.
    pub fn v4(&self) -> &Trie4<V> {
        &self.v4
    }

    /// The IPv6-side trie.
    pub fn v6(&self) -> &Trie6<V> {
        &self.v6
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.v4.clear();
        self.v6.clear();
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: Prefix, value: V) -> Option<V> {
        match key {
            Prefix::V4(p) => self.v4.insert(p, value),
            Prefix::V6(p) => self.v6.insert(p, value),
        }
    }

    /// The value stored at exactly `key`.
    pub fn get(&self, key: Prefix) -> Option<&V> {
        match key {
            Prefix::V4(p) => self.v4.get(p),
            Prefix::V6(p) => self.v6.get(p),
        }
    }

    /// Mutable access to the value stored at exactly `key`.
    pub fn get_mut(&mut self, key: Prefix) -> Option<&mut V> {
        match key {
            Prefix::V4(p) => self.v4.get_mut(p),
            Prefix::V6(p) => self.v6.get_mut(p),
        }
    }

    /// `true` if a value is stored at exactly `key`.
    pub fn contains_key(&self, key: Prefix) -> bool {
        self.get(key).is_some()
    }

    /// Inserts a value computed from `default` if `key` is vacant, then
    /// returns a mutable reference to the value at `key`.
    pub fn get_or_insert_with(&mut self, key: Prefix, default: impl FnOnce() -> V) -> &mut V {
        match key {
            Prefix::V4(p) => self.v4.get_or_insert_with(p, default),
            Prefix::V6(p) => self.v6.get_or_insert_with(p, default),
        }
    }

    /// Removes and returns the value at exactly `key`.
    pub fn remove(&mut self, key: Prefix) -> Option<V> {
        match key {
            Prefix::V4(p) => self.v4.remove(p),
            Prefix::V6(p) => self.v6.remove(p),
        }
    }

    /// Longest-prefix match within `key`'s family.
    pub fn longest_match(&self, key: Prefix) -> Option<(Prefix, &V)> {
        match key {
            Prefix::V4(p) => self.v4.longest_match(p).map(|(k, v)| (Prefix::V4(k), v)),
            Prefix::V6(p) => self.v6.longest_match(p).map(|(k, v)| (Prefix::V6(k), v)),
        }
    }

    /// All entries whose key covers `query`, shortest first.
    pub fn iter_covering(&self, query: Prefix) -> Box<dyn Iterator<Item = (Prefix, &V)> + '_> {
        match query {
            Prefix::V4(p) => Box::new(self.v4.iter_covering(p).map(|(k, v)| (Prefix::V4(k), v))),
            Prefix::V6(p) => Box::new(self.v6.iter_covering(p).map(|(k, v)| (Prefix::V6(k), v))),
        }
    }

    /// All entries whose key is covered by `query`, in sorted order.
    pub fn iter_covered_by(&self, query: Prefix) -> Box<dyn Iterator<Item = (Prefix, &V)> + '_> {
        match query {
            Prefix::V4(p) => Box::new(self.v4.iter_covered_by(p).map(|(k, v)| (Prefix::V4(k), v))),
            Prefix::V6(p) => Box::new(self.v6.iter_covered_by(p).map(|(k, v)| (Prefix::V6(k), v))),
        }
    }

    /// Counts entries covered by `query` with prefix length at most `max_len`.
    pub fn count_covered_by(&self, query: Prefix, max_len: u8) -> usize {
        match query {
            Prefix::V4(p) => self.v4.count_covered_by(p, max_len),
            Prefix::V6(p) => self.v6.count_covered_by(p, max_len),
        }
    }

    /// All entries: IPv4 in sorted order, then IPv6 in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        self.v4
            .iter()
            .map(|(k, v)| (Prefix::V4(k), v))
            .chain(self.v6.iter().map(|(k, v)| (Prefix::V6(k), v)))
    }

    /// All keys: IPv4 first, then IPv6, each in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

impl<V> FromIterator<(Prefix, V)> for DualTrie<V> {
    fn from_iter<I: IntoIterator<Item = (Prefix, V)>>(iter: I) -> Self {
        let mut t = DualTrie::new();
        for (k, v) in iter {
            t.insert(k, v);
        }
        t
    }
}

impl<V> Extend<(Prefix, V)> for DualTrie<V> {
    fn extend<I: IntoIterator<Item = (Prefix, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn families_are_disjoint() {
        let mut t = DualTrie::new();
        t.insert(p("10.0.0.0/8"), 4);
        t.insert(p("2001:db8::/32"), 6);
        assert_eq!(t.len(), 2);
        assert_eq!(t.len_for(Afi::V4), 1);
        assert_eq!(t.len_for(Afi::V6), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&4));
        assert_eq!(t.get(p("2001:db8::/32")), Some(&6));
        // A v6 query never matches v4 content.
        assert!(
            t.longest_match(p("::1/128")).map(|(k, _)| k)
                == Some(p("2001:db8::/32")).filter(|q| q.covers(p("::1/128")))
                || t.longest_match(p("::1/128")).is_none()
        );
    }

    #[test]
    fn longest_match_dispatches() {
        let mut t = DualTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        t.insert(p("2001:db8::/32"), 3);
        assert_eq!(
            t.longest_match(p("10.1.2.0/24")).map(|(k, _)| k),
            Some(p("10.1.0.0/16"))
        );
        assert_eq!(
            t.longest_match(p("2001:db8:1::/48")).map(|(k, _)| k),
            Some(p("2001:db8::/32"))
        );
        assert!(t.longest_match(p("2002::/16")).is_none());
    }

    #[test]
    fn iter_chains_families() {
        let mut t = DualTrie::new();
        t.insert(p("2001:db8::/32"), 0);
        t.insert(p("10.0.0.0/8"), 1);
        let keys: Vec<_> = t.keys().collect();
        assert_eq!(keys, vec![p("10.0.0.0/8"), p("2001:db8::/32")]);
    }

    #[test]
    fn covering_and_covered() {
        let mut t = DualTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.iter_covering(p("10.1.0.0/24")).count(), 2);
        assert_eq!(t.iter_covered_by(p("10.0.0.0/8")).count(), 2);
        assert_eq!(t.count_covered_by(p("10.0.0.0/8"), 8), 1);
    }

    #[test]
    fn remove_and_mutate() {
        let mut t = DualTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        *t.get_mut(p("10.0.0.0/8")).unwrap() = 9;
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(9));
        assert!(t.is_empty());
        t.get_or_insert_with(p("::/0"), || 5);
        assert!(t.contains_key(p("::/0")));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn from_iter_collects() {
        let t: DualTrie<u8> = [(p("10.0.0.0/8"), 1), (p("::/0"), 2)].into_iter().collect();
        assert_eq!(t.len(), 2);
    }
}
