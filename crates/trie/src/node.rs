use crate::TrieKey;

/// One trie node. A node either carries a stored value (`value.is_some()`)
/// or is a *junction* inserted where two stored keys diverge.
///
/// Structural invariants maintained by all mutating operations:
///
/// 1. A child's key strictly extends its parent's key, and the child on the
///    `left` slot has bit `parent.key_len()` equal to 0 (`right` → 1).
/// 2. A junction always has exactly two children (a junction with fewer
///    children is collapsed away on removal).
/// 3. The root is the only node that may be a junction with a key equal to
///    the common ancestor of everything stored.
#[derive(Debug, Clone)]
pub(crate) struct Node<K, V> {
    pub key: K,
    pub value: Option<V>,
    pub left: Option<Box<Node<K, V>>>,
    pub right: Option<Box<Node<K, V>>>,
}

impl<K: TrieKey, V> Node<K, V> {
    pub fn leaf(key: K, value: V) -> Self {
        Node {
            key,
            value: Some(value),
            left: None,
            right: None,
        }
    }

    pub fn junction(key: K) -> Self {
        Node {
            key,
            value: None,
            left: None,
            right: None,
        }
    }

    /// The child slot (`left`/`right`) that a key extending `self.key`
    /// descends into, selected by the first bit after `self.key`.
    pub fn child_for(&mut self, key: K) -> &mut Option<Box<Node<K, V>>> {
        debug_assert!(self.key.covers(key) && key.key_len() > self.key.key_len());
        if key.bit(self.key.key_len()) {
            &mut self.right
        } else {
            &mut self.left
        }
    }

    /// Immutable variant of [`child_for`](Self::child_for).
    pub fn child_for_ref(&self, key: K) -> &Option<Box<Node<K, V>>> {
        debug_assert!(self.key.covers(key) && key.key_len() > self.key.key_len());
        if key.bit(self.key.key_len()) {
            &self.right
        } else {
            &self.left
        }
    }

    pub fn child_count(&self) -> usize {
        self.left.is_some() as usize + self.right.is_some() as usize
    }

    /// Takes the sole child of a node that has exactly one. Used when
    /// collapsing junctions.
    pub fn take_only_child(&mut self) -> Option<Box<Node<K, V>>> {
        debug_assert!(self.child_count() == 1);
        self.left.take().or_else(|| self.right.take())
    }

    pub fn is_junction(&self) -> bool {
        self.value.is_none()
    }
}
