//! A path-compressed binary radix trie keyed by IP prefixes.
//!
//! This is the shared index structure of the workspace: the RFC 6811
//! validated-payload index (`rpki-rov`), the simulated routers'
//! longest-prefix-match FIB (`bgpsim`), and the §6 vulnerability census
//! all run on [`RadixTrie`].
//!
//! The trie follows the classic PATRICIA layout: every stored key is a node,
//! and *junction* nodes (carrying no value) are inserted where two keys
//! diverge. Junctions are created and collapsed automatically, so the
//! structure stays proportional to the number of stored entries regardless
//! of key length.
//!
//! Keys are anything implementing [`TrieKey`]; implementations are provided
//! for [`Prefix4`](rpki_prefix::Prefix4) and [`Prefix6`](rpki_prefix::Prefix6).
//!
//! ```
//! use rpki_trie::RadixTrie;
//! use rpki_prefix::Prefix4;
//!
//! let mut fib: RadixTrie<Prefix4, &str> = RadixTrie::new();
//! fib.insert("10.0.0.0/8".parse().unwrap(), "via A");
//! fib.insert("10.2.0.0/16".parse().unwrap(), "via B");
//!
//! // Longest-prefix match, as a router's data plane would do:
//! let dst: Prefix4 = "10.2.3.4/32".parse().unwrap();
//! let (key, via) = fib.longest_match(dst).unwrap();
//! assert_eq!(key.to_string(), "10.2.0.0/16");
//! assert_eq!(*via, "via B");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dual;
mod key;
mod node;
mod trie;

pub use dual::DualTrie;
pub use key::TrieKey;
pub use trie::{Iter, IterCoveredBy, IterCovering, RadixTrie};

/// A radix trie keyed by IPv4 prefixes.
pub type Trie4<V> = RadixTrie<rpki_prefix::Prefix4, V>;

/// A radix trie keyed by IPv6 prefixes.
pub type Trie6<V> = RadixTrie<rpki_prefix::Prefix6, V>;
