//! Property-based tests for prefix invariants.

use proptest::prelude::*;
use rpki_prefix::{Afi, Prefix, Prefix4, Prefix6};

fn arb_prefix4() -> impl Strategy<Value = Prefix4> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix4::new_truncated(bits, len))
}

fn arb_prefix6() -> impl Strategy<Value = Prefix6> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Prefix6::new_truncated(bits, len))
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        arb_prefix4().prop_map(Prefix::V4),
        arb_prefix6().prop_map(Prefix::V6),
    ]
}

proptest! {
    #[test]
    fn v4_parse_display_round_trip(p in arb_prefix4()) {
        let s = p.to_string();
        let back: Prefix4 = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn v6_parse_display_round_trip(p in arb_prefix6()) {
        let s = p.to_string();
        let back: Prefix6 = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn enum_parse_display_round_trip(p in arb_prefix()) {
        let back: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn v4_parent_covers_child(p in arb_prefix4()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.covers(p));
            prop_assert!(!p.covers(parent));
            prop_assert_eq!(parent.len(), p.len() - 1);
        }
    }

    #[test]
    fn v4_children_partition(p in arb_prefix4()) {
        if let Some((l, r)) = p.children() {
            prop_assert!(p.covers(l));
            prop_assert!(p.covers(r));
            prop_assert!(!l.covers(r));
            prop_assert!(!r.covers(l));
            prop_assert_eq!(l.parent().unwrap(), p);
            prop_assert_eq!(r.parent().unwrap(), p);
            prop_assert_eq!(l.sibling().unwrap(), r);
            prop_assert_eq!(r.sibling().unwrap(), l);
            prop_assert!(l.is_left_child());
            prop_assert!(!r.is_left_child());
            // Children exactly halve the address span.
            prop_assert_eq!(l.addr_count() + r.addr_count(), p.addr_count());
            prop_assert_eq!(l.first_addr(), p.first_addr());
            prop_assert_eq!(r.last_addr(), p.last_addr());
        }
    }

    #[test]
    fn v6_children_partition(p in arb_prefix6()) {
        if let Some((l, r)) = p.children() {
            prop_assert!(p.covers(l) && p.covers(r));
            prop_assert_eq!(l.sibling().unwrap(), r);
            prop_assert_eq!(l.parent().unwrap(), p);
            prop_assert_eq!(l.first_addr(), p.first_addr());
            prop_assert_eq!(r.last_addr(), p.last_addr());
        }
    }

    #[test]
    fn v4_covers_iff_ancestor(a in arb_prefix4(), b in arb_prefix4()) {
        let covers = a.covers(b);
        let via_ancestor = b.ancestor_at(a.len()) == Some(a);
        prop_assert_eq!(covers, via_ancestor);
    }

    #[test]
    fn v4_covers_transitive(a in arb_prefix4(), b in arb_prefix4(), c in arb_prefix4()) {
        if a.covers(b) && b.covers(c) {
            prop_assert!(a.covers(c));
        }
    }

    #[test]
    fn v4_common_ancestor_properties(a in arb_prefix4(), b in arb_prefix4()) {
        let ca = a.common_ancestor(b);
        prop_assert!(ca.covers(a));
        prop_assert!(ca.covers(b));
        // It is the *longest* such: one level deeper no longer covers both.
        for child in [ca.left_child(), ca.right_child()].into_iter().flatten() {
            prop_assert!(!(child.covers(a) && child.covers(b)));
        }
    }

    #[test]
    fn v4_subprefixes_covered_and_counted(p in arb_prefix4(), extra in 0u8..=4) {
        let max_len = (p.len() + extra).min(32);
        let subs: Vec<_> = p.subprefixes(max_len).collect();
        prop_assert_eq!(subs.len() as u64, p.subprefix_count(max_len));
        for s in &subs {
            prop_assert!(p.covers(*s));
            prop_assert!(s.len() >= p.len() && s.len() <= max_len);
        }
        // All distinct.
        let mut dedup = subs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), subs.len());
    }

    #[test]
    fn v4_contains_addr_consistent_with_covers(p in arb_prefix4(), addr in any::<u32>()) {
        let host = Prefix4::host(std::net::Ipv4Addr::from(addr));
        prop_assert_eq!(p.contains_addr(std::net::Ipv4Addr::from(addr)), p.covers(host));
    }

    #[test]
    fn uniform_key_round_trip(p in arb_prefix()) {
        let back = Prefix::from_bits_u128(p.afi(), p.bits_u128(), p.len()).unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn uniform_key_preserves_order_within_family(a in arb_prefix4(), b in arb_prefix4()) {
        // (bits, len) lexicographic order must survive the u128 embedding.
        let (pa, pb) = (Prefix::V4(a), Prefix::V4(b));
        let lhs = (a.bits(), a.len()) < (b.bits(), b.len());
        let rhs = (pa.bits_u128(), pa.len()) < (pb.bits_u128(), pb.len());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn afi_consistency(p in arb_prefix()) {
        prop_assert_eq!(p.len() <= p.afi().max_len(), true);
        prop_assert_eq!(Afi::from_code(p.afi().code()), Some(p.afi()));
    }
}

proptest! {
    #[test]
    fn v6_covers_transitive(a in arb_prefix6(), b in arb_prefix6(), c in arb_prefix6()) {
        if a.covers(b) && b.covers(c) {
            prop_assert!(a.covers(c));
        }
    }

    #[test]
    fn v6_covers_iff_ancestor(a in arb_prefix6(), b in arb_prefix6()) {
        prop_assert_eq!(a.covers(b), b.ancestor_at(a.len()) == Some(a));
    }

    #[test]
    fn v6_common_ancestor_properties(a in arb_prefix6(), b in arb_prefix6()) {
        let ca = a.common_ancestor(b);
        prop_assert!(ca.covers(a) && ca.covers(b));
        for child in [ca.left_child(), ca.right_child()].into_iter().flatten() {
            prop_assert!(!(child.covers(a) && child.covers(b)));
        }
    }

    #[test]
    fn v6_subprefixes_covered_and_counted(p in arb_prefix6(), extra in 0u8..=3) {
        let max_len = (p.len() + extra).min(128);
        let subs: Vec<_> = p.subprefixes(max_len).collect();
        prop_assert_eq!(subs.len() as u128, p.subprefix_count(max_len));
        for s in &subs {
            prop_assert!(p.covers(*s));
        }
    }

    #[test]
    fn v6_contains_addr_consistent(p in arb_prefix6(), addr in any::<u128>()) {
        let host = Prefix6::host(std::net::Ipv6Addr::from(addr));
        prop_assert_eq!(p.contains_addr(std::net::Ipv6Addr::from(addr)), p.covers(host));
    }

    #[test]
    fn cross_family_relations_always_false(a in arb_prefix4(), b in arb_prefix6()) {
        let (pa, pb) = (Prefix::V4(a), Prefix::V6(b));
        prop_assert!(!pa.covers(pb));
        prop_assert!(!pb.covers(pa));
        prop_assert!(!pa.covered_by(pb));
    }
}
