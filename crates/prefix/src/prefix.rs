use std::fmt;
use std::net::IpAddr;
use std::str::FromStr;

use crate::{Afi, Prefix4, Prefix6, PrefixError};

/// An address-family-agnostic IP prefix.
///
/// Most of the analysis pipeline (ROAs, VRPs, BGP tables) mixes IPv4 and
/// IPv6 entries in the same collections; this enum lets them share indexes
/// and algorithms while the family-specific types do the bit work.
/// Cross-family comparisons are well-defined and never "cover" each other:
/// all relational predicates return `false` across families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Prefix {
    /// An IPv4 prefix.
    V4(Prefix4),
    /// An IPv6 prefix.
    V6(Prefix6),
}

impl Prefix {
    /// The address family of this prefix.
    #[inline]
    pub const fn afi(self) -> Afi {
        match self {
            Prefix::V4(_) => Afi::V4,
            Prefix::V6(_) => Afi::V6,
        }
    }

    /// `true` if this is an IPv4 prefix.
    #[inline]
    pub const fn is_v4(self) -> bool {
        matches!(self, Prefix::V4(_))
    }

    /// `true` if this is an IPv6 prefix.
    #[inline]
    pub const fn is_v6(self) -> bool {
        matches!(self, Prefix::V6(_))
    }

    /// The prefix length. (A length of 0 is the default route, not an
    /// "empty" prefix — there is deliberately no `is_empty`.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        match self {
            Prefix::V4(p) => p.len(),
            Prefix::V6(p) => p.len(),
        }
    }

    /// The maximum prefix length for this prefix's family (32 or 128).
    #[inline]
    pub const fn max_len(self) -> u8 {
        self.afi().max_len()
    }

    /// The prefix bits left-aligned in a `u128`. For IPv4 the 32 address
    /// bits occupy the **top** of the word, so `(bits_u128, len, afi)` is a
    /// uniform trie key for either family.
    #[inline]
    pub const fn bits_u128(self) -> u128 {
        match self {
            Prefix::V4(p) => (p.bits() as u128) << 96,
            Prefix::V6(p) => p.bits(),
        }
    }

    /// Reconstructs a prefix from the uniform `(afi, bits_u128, len)` key.
    /// Inverse of [`bits_u128`](Self::bits_u128) + [`len`](Self::len).
    pub fn from_bits_u128(afi: Afi, bits: u128, len: u8) -> Result<Prefix, PrefixError> {
        match afi {
            Afi::V4 => {
                if len > 32 {
                    return Err(PrefixError::LengthOutOfRange { len, max: 32 });
                }
                if bits & ((1u128 << 96) - 1) != 0 {
                    return Err(PrefixError::HostBitsSet);
                }
                Prefix4::new((bits >> 96) as u32, len).map(Prefix::V4)
            }
            Afi::V6 => Prefix6::new(bits, len).map(Prefix::V6),
        }
    }

    /// `true` if `self` covers `other`. Always `false` across families.
    #[inline]
    pub fn covers(self, other: Prefix) -> bool {
        match (self, other) {
            (Prefix::V4(a), Prefix::V4(b)) => a.covers(b),
            (Prefix::V6(a), Prefix::V6(b)) => a.covers(b),
            _ => false,
        }
    }

    /// `true` if `self` is covered by `other`.
    #[inline]
    pub fn covered_by(self, other: Prefix) -> bool {
        other.covers(self)
    }

    /// `true` if the prefix contains the given address (always `false`
    /// across families).
    pub fn contains_addr(self, addr: IpAddr) -> bool {
        match (self, addr) {
            (Prefix::V4(p), IpAddr::V4(a)) => p.contains_addr(a),
            (Prefix::V6(p), IpAddr::V6(a)) => p.contains_addr(a),
            _ => false,
        }
    }

    /// The parent prefix, or `None` for a default route.
    #[inline]
    pub fn parent(self) -> Option<Prefix> {
        match self {
            Prefix::V4(p) => p.parent().map(Prefix::V4),
            Prefix::V6(p) => p.parent().map(Prefix::V6),
        }
    }

    /// The sibling prefix, or `None` for a default route.
    #[inline]
    pub fn sibling(self) -> Option<Prefix> {
        match self {
            Prefix::V4(p) => p.sibling().map(Prefix::V4),
            Prefix::V6(p) => p.sibling().map(Prefix::V6),
        }
    }

    /// `true` if this prefix is the left (0-bit) child of its parent.
    #[inline]
    pub fn is_left_child(self) -> bool {
        match self {
            Prefix::V4(p) => p.is_left_child(),
            Prefix::V6(p) => p.is_left_child(),
        }
    }

    /// The left child, or `None` at maximum length.
    #[inline]
    pub fn left_child(self) -> Option<Prefix> {
        match self {
            Prefix::V4(p) => p.left_child().map(Prefix::V4),
            Prefix::V6(p) => p.left_child().map(Prefix::V6),
        }
    }

    /// The right child, or `None` at maximum length.
    #[inline]
    pub fn right_child(self) -> Option<Prefix> {
        match self {
            Prefix::V4(p) => p.right_child().map(Prefix::V4),
            Prefix::V6(p) => p.right_child().map(Prefix::V6),
        }
    }

    /// Both children as `(left, right)`, or `None` at maximum length.
    #[inline]
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        Some((self.left_child()?, self.right_child()?))
    }

    /// The ancestor at exactly `len` bits, or `None` if `len > self.len()`.
    pub fn ancestor_at(self, len: u8) -> Option<Prefix> {
        match self {
            Prefix::V4(p) => p.ancestor_at(len).map(Prefix::V4),
            Prefix::V6(p) => p.ancestor_at(len).map(Prefix::V6),
        }
    }

    /// The number of subprefixes (including `self`) with lengths in
    /// `self.len()..=max_len`, saturating at `u128::MAX`.
    pub fn subprefix_count(self, max_len: u8) -> u128 {
        match self {
            Prefix::V4(p) => p.subprefix_count(max_len) as u128,
            Prefix::V6(p) => p.subprefix_count(max_len),
        }
    }

    /// Iterates over subprefixes up to `max_len`, including `self`.
    pub fn subprefixes(self, max_len: u8) -> Box<dyn Iterator<Item = Prefix>> {
        match self {
            Prefix::V4(p) => Box::new(p.subprefixes(max_len).map(Prefix::V4)),
            Prefix::V6(p) => Box::new(p.subprefixes(max_len).map(Prefix::V6)),
        }
    }

    /// The IPv4 prefix, if this is one.
    #[inline]
    pub fn as_v4(self) -> Option<Prefix4> {
        match self {
            Prefix::V4(p) => Some(p),
            Prefix::V6(_) => None,
        }
    }

    /// The IPv6 prefix, if this is one.
    #[inline]
    pub fn as_v6(self) -> Option<Prefix6> {
        match self {
            Prefix::V6(p) => Some(p),
            Prefix::V4(_) => None,
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => p.fmt(f),
            Prefix::V6(p) => p.fmt(f),
        }
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Prefix, PrefixError> {
        if s.contains(':') {
            s.parse().map(Prefix::V6)
        } else {
            s.parse().map(Prefix::V4)
        }
    }
}

impl From<Prefix4> for Prefix {
    fn from(p: Prefix4) -> Prefix {
        Prefix::V4(p)
    }
}

impl From<Prefix6> for Prefix {
    fn from(p: Prefix6) -> Prefix {
        Prefix::V6(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_dispatches_by_family() {
        assert!(p("10.0.0.0/8").is_v4());
        assert!(p("2001:db8::/32").is_v6());
        assert_eq!(p("10.0.0.0/8").afi(), Afi::V4);
        assert_eq!(p("2001:db8::/32").afi(), Afi::V6);
    }

    #[test]
    fn display_round_trip() {
        for s in ["10.0.0.0/8", "2001:db8::/32", "0.0.0.0/0", "::/0"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn cross_family_never_covers() {
        let v4 = p("0.0.0.0/0");
        let v6 = p("::/0");
        assert!(!v4.covers(v6));
        assert!(!v6.covers(v4));
        assert!(!v4.covered_by(v6));
    }

    #[test]
    fn covers_within_family() {
        assert!(p("10.0.0.0/8").covers(p("10.1.0.0/16")));
        assert!(p("2001:db8::/32").covers(p("2001:db8:a::/48")));
    }

    #[test]
    fn contains_addr_cross_family() {
        let v4 = p("0.0.0.0/0");
        assert!(v4.contains_addr("1.2.3.4".parse().unwrap()));
        assert!(!v4.contains_addr("::1".parse().unwrap()));
    }

    #[test]
    fn bits_u128_round_trip() {
        for s in [
            "10.0.0.0/8",
            "168.122.225.0/24",
            "2001:db8::/32",
            "::/0",
            "0.0.0.0/0",
        ] {
            let pre = p(s);
            let back = Prefix::from_bits_u128(pre.afi(), pre.bits_u128(), pre.len()).unwrap();
            assert_eq!(pre, back);
        }
    }

    #[test]
    fn from_bits_u128_rejects_bad() {
        assert!(Prefix::from_bits_u128(Afi::V4, 0, 33).is_err());
        assert!(Prefix::from_bits_u128(Afi::V4, 1, 32).is_err()); // low bits set
        assert!(Prefix::from_bits_u128(Afi::V6, 1, 127).is_err());
    }

    #[test]
    fn navigation_delegates() {
        let q = p("10.0.0.0/16");
        assert_eq!(q.parent().unwrap().to_string(), "10.0.0.0/15");
        assert_eq!(q.sibling().unwrap().to_string(), "10.1.0.0/16");
        let (l, r) = q.children().unwrap();
        assert_eq!(l.to_string(), "10.0.0.0/17");
        assert_eq!(r.to_string(), "10.0.128.0/17");
        assert!(q.left_child().unwrap().is_left_child());
        assert_eq!(q.ancestor_at(8).unwrap().to_string(), "10.0.0.0/8");
        assert_eq!(q.max_len(), 32);
        assert_eq!(p("::/0").max_len(), 128);
    }

    #[test]
    fn subprefixes_delegate() {
        assert_eq!(p("10.0.0.0/24").subprefix_count(25), 3);
        assert_eq!(p("10.0.0.0/24").subprefixes(25).count(), 3);
        assert_eq!(p("2001:db8::/32").subprefix_count(33), 3);
    }

    #[test]
    fn as_family_accessors() {
        assert!(p("10.0.0.0/8").as_v4().is_some());
        assert!(p("10.0.0.0/8").as_v6().is_none());
        assert!(p("::/0").as_v6().is_some());
        assert!(p("::/0").as_v4().is_none());
    }

    #[test]
    fn ordering_v4_before_v6() {
        // Enum discriminant order: all V4 sort before all V6.
        assert!(p("255.0.0.0/8") < p("::/0"));
    }
}
