use std::fmt;

/// Errors produced when constructing or parsing prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The prefix length exceeds the maximum for the address family
    /// (32 for IPv4, 128 for IPv6).
    LengthOutOfRange {
        /// The offending length.
        len: u8,
        /// The maximum permitted length for the family.
        max: u8,
    },
    /// The address has bits set beyond the prefix length
    /// (e.g. `10.0.0.1/8`). Canonical prefixes must have host bits zero.
    HostBitsSet,
    /// The textual form could not be parsed as `addr/len`.
    Malformed(String),
    /// An operation mixed IPv4 and IPv6 operands.
    AfiMismatch,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange { len, max } => {
                write!(f, "prefix length {len} out of range (max {max})")
            }
            PrefixError::HostBitsSet => {
                write!(f, "address has host bits set beyond the prefix length")
            }
            PrefixError::Malformed(s) => write!(f, "malformed prefix: {s:?}"),
            PrefixError::AfiMismatch => write!(f, "mixed IPv4/IPv6 operands"),
        }
    }
}

impl std::error::Error for PrefixError {}
