use std::fmt;

/// Address family identifier: IPv4 or IPv6.
///
/// The RPKI keeps IPv4 and IPv6 resources strictly separate — a ROA prefix,
/// a VRP, an RTR PDU, and a BGP route each belong to exactly one family —
/// and the `compress_roas` algorithm builds one trie per (ASN, AFI) pair
/// (paper §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Afi {
    /// IPv4 (maximum prefix length 32).
    V4,
    /// IPv6 (maximum prefix length 128).
    V6,
}

impl Afi {
    /// The maximum prefix length for this family: 32 or 128.
    #[inline]
    pub const fn max_len(self) -> u8 {
        match self {
            Afi::V4 => 32,
            Afi::V6 => 128,
        }
    }

    /// The AFI code used on the wire in the RTR protocol and in RFC 3779
    /// address blocks (1 = IPv4, 2 = IPv6).
    #[inline]
    pub const fn code(self) -> u16 {
        match self {
            Afi::V4 => 1,
            Afi::V6 => 2,
        }
    }

    /// Inverse of [`Afi::code`].
    pub const fn from_code(code: u16) -> Option<Afi> {
        match code {
            1 => Some(Afi::V4),
            2 => Some(Afi::V6),
            _ => None,
        }
    }
}

impl fmt::Display for Afi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Afi::V4 => write!(f, "IPv4"),
            Afi::V6 => write!(f, "IPv6"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_len() {
        assert_eq!(Afi::V4.max_len(), 32);
        assert_eq!(Afi::V6.max_len(), 128);
    }

    #[test]
    fn code_round_trip() {
        for afi in [Afi::V4, Afi::V6] {
            assert_eq!(Afi::from_code(afi.code()), Some(afi));
        }
        assert_eq!(Afi::from_code(0), None);
        assert_eq!(Afi::from_code(3), None);
    }

    #[test]
    fn display() {
        assert_eq!(Afi::V4.to_string(), "IPv4");
        assert_eq!(Afi::V6.to_string(), "IPv6");
    }
}
