use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

use crate::PrefixError;

/// An IPv6 CIDR prefix in canonical form.
///
/// The IPv6 analogue of [`Prefix4`](crate::Prefix4): bits are left-aligned
/// in a `u128` with everything beyond `len` cleared. See [`Prefix4`]'s
/// documentation for the trie-navigation model shared by both types.
///
/// [`Prefix4`]: crate::Prefix4
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix6 {
    bits: u128,
    len: u8,
}

impl Prefix6 {
    /// The maximum prefix length (128).
    pub const MAX_LEN: u8 = 128;

    /// The default route `::/0`.
    pub const DEFAULT: Prefix6 = Prefix6 { bits: 0, len: 0 };

    /// Creates a prefix, rejecting out-of-range lengths and set host bits.
    pub fn new(bits: u128, len: u8) -> Result<Prefix6, PrefixError> {
        if len > Self::MAX_LEN {
            return Err(PrefixError::LengthOutOfRange {
                len,
                max: Self::MAX_LEN,
            });
        }
        if bits & !mask(len) != 0 {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Prefix6 { bits, len })
    }

    /// Creates a prefix, silently clearing any host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 128`.
    pub fn new_truncated(bits: u128, len: u8) -> Prefix6 {
        assert!(len <= Self::MAX_LEN, "prefix length {len} > 128");
        Prefix6 {
            bits: bits & mask(len),
            len,
        }
    }

    /// Creates a host prefix (`/128`) from an address.
    pub fn host(addr: Ipv6Addr) -> Prefix6 {
        Prefix6 {
            bits: u128::from(addr),
            len: 128,
        }
    }

    /// Creates a prefix from an [`Ipv6Addr`] and a length.
    pub fn from_addr(addr: Ipv6Addr, len: u8) -> Result<Prefix6, PrefixError> {
        Prefix6::new(u128::from(addr), len)
    }

    /// The left-aligned address bits (host bits are always zero).
    #[inline]
    pub const fn bits(self) -> u128 {
        self.bits
    }

    /// The prefix length. (A length of 0 is the default route, not an
    /// "empty" prefix — there is deliberately no `is_empty`.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// `true` only for the default route `::/0`.
    #[inline]
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// The network address as an [`Ipv6Addr`].
    #[inline]
    pub fn addr(self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits)
    }

    /// The first address covered by this prefix.
    #[inline]
    pub fn first_addr(self) -> Ipv6Addr {
        self.addr()
    }

    /// The last address covered by this prefix.
    #[inline]
    pub fn last_addr(self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits | !mask(self.len))
    }

    /// `true` if `self` covers `other` (RFC 6811 covering relation).
    #[inline]
    pub fn covers(self, other: Prefix6) -> bool {
        self.len <= other.len && (other.bits & mask(self.len)) == self.bits
    }

    /// `true` if `self` is covered by `other`.
    #[inline]
    pub fn covered_by(self, other: Prefix6) -> bool {
        other.covers(self)
    }

    /// `true` if the prefix contains the given address.
    #[inline]
    pub fn contains_addr(self, addr: Ipv6Addr) -> bool {
        (u128::from(addr) & mask(self.len)) == self.bits
    }

    /// `true` if the two prefixes overlap (one covers the other).
    #[inline]
    pub fn overlaps(self, other: Prefix6) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The value of the bit at `index` (0-based from the most significant
    /// bit). `index` must be less than 128.
    #[inline]
    pub fn bit(self, index: u8) -> bool {
        debug_assert!(index < 128);
        self.bits & (1u128 << 127 >> index) != 0
    }

    /// The parent prefix (one bit shorter), or `None` for `::/0`.
    #[inline]
    pub fn parent(self) -> Option<Prefix6> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Prefix6 {
            bits: self.bits & mask(len),
            len,
        })
    }

    /// The ancestor at exactly `len` bits, or `None` if `len > self.len()`.
    pub fn ancestor_at(self, len: u8) -> Option<Prefix6> {
        if len > self.len {
            return None;
        }
        Some(Prefix6 {
            bits: self.bits & mask(len),
            len,
        })
    }

    /// The sibling prefix: same parent, final bit flipped. `None` for `::/0`.
    #[inline]
    pub fn sibling(self) -> Option<Prefix6> {
        if self.len == 0 {
            return None;
        }
        Some(Prefix6 {
            bits: self.bits ^ (1u128 << 127 >> (self.len - 1)),
            len: self.len,
        })
    }

    /// `true` if this prefix is the left (0-bit) child of its parent.
    #[inline]
    pub fn is_left_child(self) -> bool {
        self.len > 0 && !self.bit(self.len - 1)
    }

    /// The left child (appending a 0 bit), or `None` for `/128`.
    #[inline]
    pub fn left_child(self) -> Option<Prefix6> {
        if self.len >= 128 {
            return None;
        }
        Some(Prefix6 {
            bits: self.bits,
            len: self.len + 1,
        })
    }

    /// The right child (appending a 1 bit), or `None` for `/128`.
    #[inline]
    pub fn right_child(self) -> Option<Prefix6> {
        if self.len >= 128 {
            return None;
        }
        Some(Prefix6 {
            bits: self.bits | (1u128 << 127 >> self.len),
            len: self.len + 1,
        })
    }

    /// Both children as `(left, right)`, or `None` for `/128`.
    #[inline]
    pub fn children(self) -> Option<(Prefix6, Prefix6)> {
        Some((self.left_child()?, self.right_child()?))
    }

    /// Iterates over every subprefix with lengths in `self.len()..=max_len`,
    /// including `self`. See [`Prefix4::subprefixes`] for the semantics;
    /// beware that IPv6 ranges can be astronomically large.
    ///
    /// [`Prefix4::subprefixes`]: crate::Prefix4::subprefixes
    pub fn subprefixes(self, max_len: u8) -> SubPrefixes6 {
        let max_len = max_len.min(128);
        SubPrefixes6 {
            base: self,
            cur_len: self.len,
            cur_index: 0,
            max_len,
        }
    }

    /// The number of subprefixes (including `self`) with lengths in
    /// `self.len()..=max_len`, saturating at `u128::MAX`.
    pub fn subprefix_count(self, max_len: u8) -> u128 {
        let max_len = max_len.min(128);
        if max_len < self.len {
            return 0;
        }
        let levels = (max_len - self.len + 1) as u32;
        if levels >= 128 {
            u128::MAX
        } else {
            (1u128 << levels) - 1
        }
    }

    /// The longest prefix covering both `self` and `other`.
    pub fn common_ancestor(self, other: Prefix6) -> Prefix6 {
        let max = self.len.min(other.len);
        let diff = self.bits ^ other.bits;
        let len = (diff.leading_zeros() as u8).min(max);
        Prefix6 {
            bits: self.bits & mask(len),
            len,
        }
    }
}

/// Iterator over the subprefixes of a [`Prefix6`]; see
/// [`Prefix6::subprefixes`].
#[derive(Debug, Clone)]
pub struct SubPrefixes6 {
    base: Prefix6,
    cur_len: u8,
    cur_index: u128,
    max_len: u8,
}

impl Iterator for SubPrefixes6 {
    type Item = Prefix6;

    fn next(&mut self) -> Option<Prefix6> {
        if self.cur_len > self.max_len {
            return None;
        }
        let bits = if self.cur_len == 0 {
            0 // only the default route lives at length 0
        } else {
            self.base.bits | (self.cur_index << (128 - self.cur_len as u32))
        };
        let item = Prefix6 {
            bits,
            len: self.cur_len,
        };
        self.cur_index += 1;
        let level = self.cur_len - self.base.len;
        if level >= 127 || self.cur_index >= (1u128 << level) {
            self.cur_index = 0;
            self.cur_len += 1;
        }
        Some(item)
    }
}

#[inline]
fn mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

impl fmt::Display for Prefix6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl FromStr for Prefix6 {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Prefix6, PrefixError> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_string()))?;
        let addr: Ipv6Addr = addr
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        Prefix6::from_addr(addr, len)
    }
}

impl From<Ipv6Addr> for Prefix6 {
    fn from(addr: Ipv6Addr) -> Prefix6 {
        Prefix6::host(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix6 {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_round_trip() {
        for s in ["::/0", "2001:db8::/32", "2001:db8:a::/48", "::1/128"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("2001:db8::".parse::<Prefix6>().is_err());
        assert!("2001:db8::/129".parse::<Prefix6>().is_err());
        assert!("2001:db8::1/32".parse::<Prefix6>().is_err());
        assert!("zz::/32".parse::<Prefix6>().is_err());
    }

    #[test]
    fn new_validates() {
        assert_eq!(
            Prefix6::new(0, 129),
            Err(PrefixError::LengthOutOfRange { len: 129, max: 128 })
        );
        assert_eq!(Prefix6::new(1, 127), Err(PrefixError::HostBitsSet));
        assert!(Prefix6::new(1, 128).is_ok());
    }

    #[test]
    fn covers_basic() {
        let doc = p("2001:db8::/32");
        assert!(doc.covers(doc));
        assert!(doc.covers(p("2001:db8:a::/48")));
        assert!(!doc.covers(p("2001:db9::/48")));
        assert!(p("::/0").covers(doc));
        assert!(!doc.covers(p("::/0")));
    }

    #[test]
    fn contains_addr() {
        let doc = p("2001:db8::/32");
        assert!(doc.contains_addr("2001:db8::1".parse().unwrap()));
        assert!(!doc.contains_addr("2001:db9::1".parse().unwrap()));
    }

    #[test]
    fn first_last_addr() {
        let doc = p("2001:db8::/32");
        assert_eq!(doc.first_addr().to_string(), "2001:db8::");
        assert_eq!(
            doc.last_addr().to_string(),
            "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff"
        );
    }

    #[test]
    fn parent_sibling_children() {
        let q = p("2001:db8::/33");
        assert_eq!(q.parent(), Some(p("2001:db8::/32")));
        assert_eq!(q.sibling(), Some(p("2001:db8:8000::/33")));
        assert!(q.is_left_child());

        let parent = p("2001:db8::/32");
        let (l, r) = parent.children().unwrap();
        assert_eq!(l, p("2001:db8::/33"));
        assert_eq!(r, p("2001:db8:8000::/33"));
        assert_eq!(Prefix6::DEFAULT.parent(), None);
        assert_eq!(p("::1/128").left_child(), None);
    }

    #[test]
    fn ancestor_at() {
        let q = p("2001:db8:a::/48");
        assert_eq!(q.ancestor_at(32), Some(p("2001:db8::/32")));
        assert_eq!(q.ancestor_at(48), Some(q));
        assert_eq!(q.ancestor_at(49), None);
    }

    #[test]
    fn subprefixes_enumeration() {
        let base = p("2001:db8::/32");
        let subs: Vec<_> = base.subprefixes(34).collect();
        assert_eq!(subs.len(), 7);
        assert_eq!(base.subprefix_count(34), 7);
        assert_eq!(subs[0], base);
        assert_eq!(subs[1], p("2001:db8::/33"));
        assert_eq!(subs[2], p("2001:db8:8000::/33"));
    }

    #[test]
    fn subprefix_count_saturates() {
        assert_eq!(Prefix6::DEFAULT.subprefix_count(128), u128::MAX);
        assert_eq!(p("::1/128").subprefix_count(128), 1);
        assert_eq!(p("2001:db8::/32").subprefix_count(31), 0);
    }

    #[test]
    fn common_ancestor() {
        let a = p("2001:db8::/48");
        let b = p("2001:db8:8000::/48");
        assert_eq!(a.common_ancestor(b), p("2001:db8::/32"));
        assert_eq!(a.common_ancestor(a), a);
    }

    #[test]
    fn bit_indexing() {
        let q = p("8000::/1");
        assert!(q.bit(0));
        assert!(!p("4000::/2").bit(0));
        assert!(p("4000::/2").bit(1));
    }

    #[test]
    fn host_round_trip() {
        let h = Prefix6::host("::1".parse().unwrap());
        assert_eq!(h, p("::1/128"));
    }
}
