//! IP address and prefix types used throughout the MaxLength/RPKI
//! reproduction.
//!
//! The central types are [`Prefix4`] and [`Prefix6`] — CIDR prefixes stored
//! in a canonical form (host bits cleared, bits left-aligned) — and the
//! address-family-agnostic [`Prefix`] enum. All RPKI objects (ROAs, VRPs,
//! RTR PDUs) and all BGP announcements in this workspace are keyed by these
//! types.
//!
//! Prefixes behave like nodes of a binary trie: every prefix of length
//! `l < MAX_LEN` has exactly two children of length `l + 1` (obtained with
//! [`Prefix4::left_child`] / [`Prefix4::right_child`]), a sibling, and
//! (unless `l == 0`) a parent. The trie-navigation API here is what both the
//! `compress_roas` algorithm (paper §7, Algorithm 1) and the longest-prefix
//! match data plane build on.
//!
//! # Examples
//!
//! ```
//! use rpki_prefix::{Prefix, Prefix4};
//!
//! let bu: Prefix4 = "168.122.0.0/16".parse().unwrap();
//! let sub: Prefix4 = "168.122.225.0/24".parse().unwrap();
//! assert!(bu.covers(sub));
//! assert_eq!(sub.to_string(), "168.122.225.0/24");
//!
//! // Address-family agnostic:
//! let p: Prefix = "2001:db8::/32".parse().unwrap();
//! assert!(p.is_v6());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod afi;
mod error;
mod prefix;
mod v4;
mod v6;

pub use afi::Afi;
pub use error::PrefixError;
pub use prefix::Prefix;
pub use v4::{Prefix4, SubPrefixes4};
pub use v6::{Prefix6, SubPrefixes6};
