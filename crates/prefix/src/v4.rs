use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::PrefixError;

/// An IPv4 CIDR prefix in canonical form.
///
/// The address bits are stored left-aligned in a `u32` with all bits beyond
/// `len` cleared, so two equal prefixes always compare equal bit-for-bit and
/// the type can serve directly as a trie key.
///
/// The derived `Ord` sorts by `(bits, len)`, which places a prefix
/// immediately before its own subprefixes — the order used when building
/// tries from sorted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix4 {
    bits: u32,
    len: u8,
}

impl Prefix4 {
    /// The maximum prefix length (32).
    pub const MAX_LEN: u8 = 32;

    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix4 = Prefix4 { bits: 0, len: 0 };

    /// Creates a prefix, rejecting out-of-range lengths and set host bits.
    ///
    /// ```
    /// use rpki_prefix::Prefix4;
    /// assert!(Prefix4::new(0x0A000000, 8).is_ok());   // 10.0.0.0/8
    /// assert!(Prefix4::new(0x0A000001, 8).is_err());  // host bits set
    /// assert!(Prefix4::new(0, 33).is_err());          // length out of range
    /// ```
    pub fn new(bits: u32, len: u8) -> Result<Prefix4, PrefixError> {
        if len > Self::MAX_LEN {
            return Err(PrefixError::LengthOutOfRange {
                len,
                max: Self::MAX_LEN,
            });
        }
        if bits & !mask(len) != 0 {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Prefix4 { bits, len })
    }

    /// Creates a prefix, silently clearing any host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new_truncated(bits: u32, len: u8) -> Prefix4 {
        assert!(len <= Self::MAX_LEN, "prefix length {len} > 32");
        Prefix4 {
            bits: bits & mask(len),
            len,
        }
    }

    /// Creates a host prefix (`/32`) from an address.
    pub fn host(addr: Ipv4Addr) -> Prefix4 {
        Prefix4 {
            bits: u32::from(addr),
            len: 32,
        }
    }

    /// Creates a prefix from an [`Ipv4Addr`] and a length.
    pub fn from_addr(addr: Ipv4Addr, len: u8) -> Result<Prefix4, PrefixError> {
        Prefix4::new(u32::from(addr), len)
    }

    /// The left-aligned address bits (host bits are always zero).
    #[inline]
    pub const fn bits(self) -> u32 {
        self.bits
    }

    /// The prefix length. (A length of 0 is the default route, not an
    /// "empty" prefix — there is deliberately no `is_empty`.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// `true` only for the default route `0.0.0.0/0`.
    #[inline]
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// The network address as an [`Ipv4Addr`].
    #[inline]
    pub fn addr(self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The first address covered by this prefix (the network address).
    #[inline]
    pub fn first_addr(self) -> Ipv4Addr {
        self.addr()
    }

    /// The last address covered by this prefix (the broadcast address for
    /// classical subnets).
    #[inline]
    pub fn last_addr(self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits | !mask(self.len))
    }

    /// The number of addresses covered: `2^(32 - len)`.
    #[inline]
    pub fn addr_count(self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// `true` if `self` covers `other`, i.e. `other` is `self` or a
    /// subprefix of `self`. This is the RPKI "covering" relation (RFC 6811):
    /// a ROA for `10.0.0.0/8` covers a route for `10.1.0.0/16`.
    #[inline]
    pub fn covers(self, other: Prefix4) -> bool {
        self.len <= other.len && (other.bits & mask(self.len)) == self.bits
    }

    /// `true` if `self` is covered by `other` (the converse of
    /// [`covers`](Self::covers)).
    #[inline]
    pub fn covered_by(self, other: Prefix4) -> bool {
        other.covers(self)
    }

    /// `true` if the prefix contains the given address.
    #[inline]
    pub fn contains_addr(self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & mask(self.len)) == self.bits
    }

    /// `true` if the two prefixes overlap (one covers the other).
    #[inline]
    pub fn overlaps(self, other: Prefix4) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The value of the bit at `index` (0-based from the most significant
    /// bit). `index` must be less than 32.
    #[inline]
    pub fn bit(self, index: u8) -> bool {
        debug_assert!(index < 32);
        self.bits & (0x8000_0000u32 >> index) != 0
    }

    /// The parent prefix (one bit shorter), or `None` for `/0`.
    ///
    /// ```
    /// use rpki_prefix::Prefix4;
    /// let p: Prefix4 = "10.1.0.0/16".parse().unwrap();
    /// assert_eq!(p.parent().unwrap().to_string(), "10.0.0.0/15");
    /// ```
    #[inline]
    pub fn parent(self) -> Option<Prefix4> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Prefix4 {
            bits: self.bits & mask(len),
            len,
        })
    }

    /// The shortest ancestor at exactly `len` bits, or `None` if `len`
    /// exceeds this prefix's length. `ancestor_at(len) == self` when
    /// `len == self.len()`.
    pub fn ancestor_at(self, len: u8) -> Option<Prefix4> {
        if len > self.len {
            return None;
        }
        Some(Prefix4 {
            bits: self.bits & mask(len),
            len,
        })
    }

    /// The sibling prefix: same parent, final bit flipped. `None` for `/0`.
    #[inline]
    pub fn sibling(self) -> Option<Prefix4> {
        if self.len == 0 {
            return None;
        }
        Some(Prefix4 {
            bits: self.bits ^ (0x8000_0000u32 >> (self.len - 1)),
            len: self.len,
        })
    }

    /// `true` if this prefix is the left (0-bit) child of its parent.
    /// Returns `false` for `/0`, which has no parent.
    #[inline]
    pub fn is_left_child(self) -> bool {
        self.len > 0 && !self.bit(self.len - 1)
    }

    /// The left child (appending a 0 bit), or `None` for `/32`.
    #[inline]
    pub fn left_child(self) -> Option<Prefix4> {
        if self.len >= 32 {
            return None;
        }
        Some(Prefix4 {
            bits: self.bits,
            len: self.len + 1,
        })
    }

    /// The right child (appending a 1 bit), or `None` for `/32`.
    #[inline]
    pub fn right_child(self) -> Option<Prefix4> {
        if self.len >= 32 {
            return None;
        }
        Some(Prefix4 {
            bits: self.bits | (0x8000_0000u32 >> self.len),
            len: self.len + 1,
        })
    }

    /// Both children as `(left, right)`, or `None` for `/32`.
    #[inline]
    pub fn children(self) -> Option<(Prefix4, Prefix4)> {
        Some((self.left_child()?, self.right_child()?))
    }

    /// Iterates over every subprefix of `self` with lengths in
    /// `self.len()..=max_len`, in ascending `(len, bits)` order, including
    /// `self` itself.
    ///
    /// This enumerates exactly the routes a ROA `(self, maxLength=max_len)`
    /// authorizes (paper §3). The count grows as `2^(max_len - len + 1) - 1`;
    /// use [`subprefix_count`](Self::subprefix_count) to size it first.
    pub fn subprefixes(self, max_len: u8) -> SubPrefixes4 {
        let max_len = max_len.min(32);
        SubPrefixes4 {
            base: self,
            cur_len: self.len,
            cur_index: 0,
            max_len,
        }
    }

    /// The number of subprefixes (including `self`) with lengths in
    /// `self.len()..=max_len`: `2^(max_len - len + 1) - 1`, or 0 when
    /// `max_len < self.len()`.
    pub fn subprefix_count(self, max_len: u8) -> u64 {
        let max_len = max_len.min(32);
        if max_len < self.len {
            return 0;
        }
        (1u64 << (max_len - self.len + 1)) - 1
    }

    /// The longest prefix covering both `self` and `other` (their lowest
    /// common ancestor in the prefix trie).
    pub fn common_ancestor(self, other: Prefix4) -> Prefix4 {
        let max = self.len.min(other.len);
        let diff = self.bits ^ other.bits;
        let len = (diff.leading_zeros() as u8).min(max);
        Prefix4 {
            bits: self.bits & mask(len),
            len,
        }
    }
}

/// Iterator over the subprefixes of a [`Prefix4`]; see
/// [`Prefix4::subprefixes`].
#[derive(Debug, Clone)]
pub struct SubPrefixes4 {
    base: Prefix4,
    cur_len: u8,
    cur_index: u64,
    max_len: u8,
}

impl Iterator for SubPrefixes4 {
    type Item = Prefix4;

    fn next(&mut self) -> Option<Prefix4> {
        if self.cur_len > self.max_len {
            return None;
        }
        let bits = if self.cur_len == 0 {
            0 // only the default route lives at length 0
        } else {
            self.base.bits | ((self.cur_index as u32) << (32 - self.cur_len as u32))
        };
        let item = Prefix4 {
            bits,
            len: self.cur_len,
        };
        self.cur_index += 1;
        if self.cur_index >= (1u64 << (self.cur_len - self.base.len)) {
            self.cur_index = 0;
            self.cur_len += 1;
        }
        Some(item)
    }
}

#[inline]
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

impl fmt::Display for Prefix4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl FromStr for Prefix4 {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Prefix4, PrefixError> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_string()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        Prefix4::from_addr(addr, len)
    }
}

impl From<Ipv4Addr> for Prefix4 {
    fn from(addr: Ipv4Addr) -> Prefix4 {
        Prefix4::host(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_round_trip() {
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "168.122.0.0/16",
            "168.122.225.0/24",
            "1.2.3.4/32",
        ] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Prefix4>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix4>().is_err());
        assert!("10.0.0.1/8".parse::<Prefix4>().is_err());
        assert!("10.0.0/8".parse::<Prefix4>().is_err());
        assert!("ten.0.0.0/8".parse::<Prefix4>().is_err());
        assert!("10.0.0.0/8/9".parse::<Prefix4>().is_err());
        assert!("".parse::<Prefix4>().is_err());
    }

    #[test]
    fn new_validates() {
        assert_eq!(
            Prefix4::new(0, 33),
            Err(PrefixError::LengthOutOfRange { len: 33, max: 32 })
        );
        assert_eq!(Prefix4::new(1, 31), Err(PrefixError::HostBitsSet));
        assert!(Prefix4::new(1, 32).is_ok());
        assert!(Prefix4::new(0, 0).is_ok());
    }

    #[test]
    fn new_truncated_clears_host_bits() {
        assert_eq!(Prefix4::new_truncated(0x0A0000FF, 8), p("10.0.0.0/8"));
        assert_eq!(Prefix4::new_truncated(u32::MAX, 0), Prefix4::DEFAULT);
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn new_truncated_panics_on_len() {
        Prefix4::new_truncated(0, 40);
    }

    #[test]
    fn covers_basic() {
        let bu = p("168.122.0.0/16");
        assert!(bu.covers(bu));
        assert!(bu.covers(p("168.122.225.0/24")));
        assert!(bu.covers(p("168.122.0.0/17")));
        assert!(!bu.covers(p("168.123.0.0/24")));
        assert!(!bu.covers(p("168.0.0.0/8"))); // shorter, not covered
        assert!(p("0.0.0.0/0").covers(bu));
        assert!(!bu.covers(p("0.0.0.0/0")));
    }

    #[test]
    fn covered_by_is_converse() {
        let a = p("10.0.0.0/8");
        let b = p("10.2.0.0/16");
        assert!(b.covered_by(a));
        assert!(!a.covered_by(b));
    }

    #[test]
    fn contains_addr() {
        let bu = p("168.122.0.0/16");
        assert!(bu.contains_addr("168.122.0.0".parse().unwrap()));
        assert!(bu.contains_addr("168.122.255.255".parse().unwrap()));
        assert!(!bu.contains_addr("168.123.0.0".parse().unwrap()));
        assert!(p("0.0.0.0/0").contains_addr("8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn overlaps() {
        assert!(p("10.0.0.0/8").overlaps(p("10.1.0.0/16")));
        assert!(p("10.1.0.0/16").overlaps(p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").overlaps(p("11.0.0.0/8")));
    }

    #[test]
    fn first_last_addr() {
        let bu = p("168.122.0.0/16");
        assert_eq!(bu.first_addr().to_string(), "168.122.0.0");
        assert_eq!(bu.last_addr().to_string(), "168.122.255.255");
        let host = p("1.2.3.4/32");
        assert_eq!(host.first_addr(), host.last_addr());
        assert_eq!(p("0.0.0.0/0").last_addr().to_string(), "255.255.255.255");
    }

    #[test]
    fn addr_count() {
        assert_eq!(p("0.0.0.0/0").addr_count(), 1u64 << 32);
        assert_eq!(p("10.0.0.0/8").addr_count(), 1 << 24);
        assert_eq!(p("1.2.3.4/32").addr_count(), 1);
    }

    #[test]
    fn parent_sibling_children() {
        let q = p("168.122.0.0/17");
        assert_eq!(q.parent(), Some(p("168.122.0.0/16")));
        assert_eq!(q.sibling(), Some(p("168.122.128.0/17")));
        assert!(q.is_left_child());
        assert!(!p("168.122.128.0/17").is_left_child());

        let parent = p("168.122.0.0/16");
        assert_eq!(
            parent.children(),
            Some((p("168.122.0.0/17"), p("168.122.128.0/17")))
        );
        assert_eq!(Prefix4::DEFAULT.parent(), None);
        assert_eq!(Prefix4::DEFAULT.sibling(), None);
        assert!(!Prefix4::DEFAULT.is_left_child());
        assert_eq!(p("1.2.3.4/32").left_child(), None);
        assert_eq!(p("1.2.3.4/32").right_child(), None);
        assert_eq!(p("1.2.3.4/32").children(), None);
    }

    #[test]
    fn sibling_is_involution() {
        let q = p("87.254.48.0/20");
        assert_eq!(q.sibling().unwrap().sibling(), Some(q));
        assert_eq!(q.sibling().unwrap().parent(), q.parent());
    }

    #[test]
    fn ancestor_at() {
        let q = p("168.122.225.0/24");
        assert_eq!(q.ancestor_at(16), Some(p("168.122.0.0/16")));
        assert_eq!(q.ancestor_at(24), Some(q));
        assert_eq!(q.ancestor_at(0), Some(Prefix4::DEFAULT));
        assert_eq!(q.ancestor_at(25), None);
    }

    #[test]
    fn bit_indexing() {
        let q = p("128.0.0.0/1");
        assert!(q.bit(0));
        let q = p("64.0.0.0/2");
        assert!(!q.bit(0));
        assert!(q.bit(1));
    }

    #[test]
    fn subprefixes_enumeration() {
        // The paper's example: 168.122.0.0/16 with maxLength 18 authorizes
        // the /16, two /17s, and four /18s.
        let bu = p("168.122.0.0/16");
        let subs: Vec<_> = bu.subprefixes(18).collect();
        assert_eq!(subs.len(), 7);
        assert_eq!(bu.subprefix_count(18), 7);
        assert_eq!(subs[0], bu);
        assert_eq!(subs[1], p("168.122.0.0/17"));
        assert_eq!(subs[2], p("168.122.128.0/17"));
        assert_eq!(subs[3], p("168.122.0.0/18"));
        assert_eq!(subs[6], p("168.122.192.0/18"));
    }

    #[test]
    fn subprefixes_self_only() {
        let q = p("10.0.0.0/24");
        let subs: Vec<_> = q.subprefixes(24).collect();
        assert_eq!(subs, vec![q]);
        assert_eq!(q.subprefix_count(24), 1);
    }

    #[test]
    fn subprefixes_empty_when_maxlen_below() {
        let q = p("10.0.0.0/24");
        assert_eq!(q.subprefixes(23).count(), 0);
        assert_eq!(q.subprefix_count(23), 0);
    }

    #[test]
    fn subprefixes_clamps_to_32() {
        let q = p("1.2.3.4/32");
        assert_eq!(q.subprefixes(200).count(), 1);
        assert_eq!(q.subprefix_count(200), 1);
    }

    #[test]
    fn common_ancestor() {
        let a = p("168.122.0.0/24");
        let b = p("168.122.225.0/24");
        assert_eq!(a.common_ancestor(b), p("168.122.0.0/16"));
        assert_eq!(a.common_ancestor(a), a);
        assert_eq!(
            p("0.0.0.0/8").common_ancestor(p("128.0.0.0/8")),
            Prefix4::DEFAULT
        );
        // Covering prefix is its own common ancestor with a subprefix.
        let cover = p("10.0.0.0/8");
        assert_eq!(cover.common_ancestor(p("10.200.0.0/16")), cover);
    }

    #[test]
    fn ordering_parent_before_children() {
        let parent = p("10.0.0.0/16");
        let l = p("10.0.0.0/17");
        let r = p("10.0.128.0/17");
        assert!(parent < l);
        assert!(l < r);
    }

    #[test]
    fn host_from_addr() {
        let h = Prefix4::host("1.2.3.4".parse().unwrap());
        assert_eq!(h, p("1.2.3.4/32"));
        let h2: Prefix4 = "1.2.3.4".parse::<Ipv4Addr>().unwrap().into();
        assert_eq!(h, h2);
    }
}
