//! RFC 6811 BGP prefix origin validation.
//!
//! A router (or our simulator's router) holds the set of Validated ROA
//! Payloads ([`Vrp`](rpki_roa::Vrp)s) pushed to it by the local cache
//! (paper Figure 1) and classifies every BGP announcement against them:
//!
//! * **Valid** — some VRP *matches* the route: its prefix covers the
//!   route's prefix, the route's length is within maxLength, and the origin
//!   AS agrees.
//! * **Invalid** — at least one VRP *covers* the route's prefix but none
//!   matches. Dropping these routes is what defeats (sub)prefix hijacks.
//! * **NotFound** — no VRP covers the prefix; the RPKI says nothing.
//!
//! The crate is organized as a **builder → freeze → batch** pipeline:
//!
//! * [`VrpIndex`] — the mutable builder: a trie-backed index with
//!   `O(prefix length)` classification and cheap insert/remove, fed by
//!   the rtr delta stream and the dataset generator;
//! * [`FrozenVrpIndex`] — an immutable, `Arc`-shareable compilation of
//!   the trie into flat, cache-friendly arrays ([`VrpIndex::freeze`]),
//!   answering the same queries with identical results (the
//!   [snapshot-equivalence contract](frozen)) but without pointer
//!   chasing;
//! * [`FrozenVrpIndex::validate_table_par`] — embarrassingly-parallel
//!   whole-table validation, reducing per-thread [`ValidationSummary`]
//!   tallies with their `Add`/`Sum` impls; the §6 measurement pipeline
//!   and the `bgpsim` attack experiments both build on it.
//!
//! [`RevalidationEngine`] composes both halves: incremental
//! revalidation against the mutable index on every VRP delta, and
//! frozen snapshots for the bulk revalidate-everything path.
//!
//! ```
//! use rpki_rov::{VrpIndex, ValidationState};
//!
//! let index: VrpIndex = ["168.122.0.0/16 => AS111".parse().unwrap()]
//!     .into_iter()
//!     .collect();
//!
//! // AS 111's own announcement:
//! assert_eq!(
//!     index.validate(&"168.122.0.0/16 => AS111".parse().unwrap()),
//!     ValidationState::Valid,
//! );
//! // The subprefix hijack from the paper's §2:
//! assert_eq!(
//!     index.validate(&"168.122.0.0/24 => AS666".parse().unwrap()),
//!     ValidationState::Invalid,
//! );
//! // An unrelated prefix:
//! assert_eq!(
//!     index.validate(&"8.8.8.0/24 => AS15169".parse().unwrap()),
//!     ValidationState::NotFound,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod delta;
pub mod frozen;
mod index;
mod policy;
mod route_table;
mod state;

pub use chain::{ChainConfig, ChurnSummary, EpochReport, SnapshotChainEngine};
pub use delta::{RevalidationEngine, StateChange};
pub use frozen::FrozenVrpIndex;
pub use index::{ValidationSummary, VrpIndex};
pub use policy::RovPolicy;
pub use state::ValidationState;
