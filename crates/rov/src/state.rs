use std::fmt;

/// The RFC 6811 validation outcome for one BGP announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValidationState {
    /// A VRP matches the announcement.
    Valid,
    /// The announcement is covered by some VRP but matched by none —
    /// the state hijacked announcements land in when ROAs are configured
    /// correctly.
    Invalid,
    /// No VRP covers the announced prefix.
    NotFound,
}

impl ValidationState {
    /// `true` only for [`ValidationState::Valid`].
    pub const fn is_valid(self) -> bool {
        matches!(self, ValidationState::Valid)
    }

    /// `true` only for [`ValidationState::Invalid`].
    pub const fn is_invalid(self) -> bool {
        matches!(self, ValidationState::Invalid)
    }
}

impl fmt::Display for ValidationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationState::Valid => write!(f, "Valid"),
            ValidationState::Invalid => write!(f, "Invalid"),
            ValidationState::NotFound => write!(f, "NotFound"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(ValidationState::Valid.is_valid());
        assert!(!ValidationState::Valid.is_invalid());
        assert!(ValidationState::Invalid.is_invalid());
        assert!(!ValidationState::NotFound.is_valid());
        assert!(!ValidationState::NotFound.is_invalid());
    }

    #[test]
    fn display() {
        assert_eq!(ValidationState::Valid.to_string(), "Valid");
        assert_eq!(ValidationState::Invalid.to_string(), "Invalid");
        assert_eq!(ValidationState::NotFound.to_string(), "NotFound");
    }
}
