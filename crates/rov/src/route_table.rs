//! The shared route-table bookkeeping behind both incremental engines.
//!
//! [`RevalidationEngine`](crate::RevalidationEngine) and
//! [`SnapshotChainEngine`](crate::SnapshotChainEngine) differ only in
//! *what they validate against* (a mutable trie vs a frozen base plus
//! overlay); the route side — a prefix-indexed table of
//! `(route, current state)` with affected-set collection and
//! change-recording revalidation — is identical, so it lives here once.

use std::collections::BTreeSet;

use rpki_roa::{RouteOrigin, Vrp};
use rpki_trie::DualTrie;

use crate::{StateChange, ValidationState};

/// A prefix-indexed route table tracking each route's validation state.
#[derive(Debug, Clone, Default)]
pub(crate) struct RouteTable {
    /// Routes grouped by prefix, with their current validation state.
    routes: DualTrie<Vec<(RouteOrigin, ValidationState)>>,
    count: usize,
}

impl RouteTable {
    /// Adds a route, computing its state with `validate` only when it is
    /// new; duplicates re-report their tracked state.
    pub(crate) fn insert_with(
        &mut self,
        route: RouteOrigin,
        validate: impl FnOnce(&RouteOrigin) -> ValidationState,
    ) -> ValidationState {
        let state = validate(&route);
        let bucket = self.routes.get_or_insert_with(route.prefix, Vec::new);
        if let Some((_, s)) = bucket.iter().find(|(r, _)| *r == route) {
            return *s;
        }
        bucket.push((route, state));
        self.count += 1;
        state
    }

    /// Removes a route. Returns `true` if it was tracked.
    pub(crate) fn remove(&mut self, route: &RouteOrigin) -> bool {
        let Some(bucket) = self.routes.get_mut(route.prefix) else {
            return false;
        };
        let Some(at) = bucket.iter().position(|(r, _)| r == route) else {
            return false;
        };
        bucket.swap_remove(at);
        if bucket.is_empty() {
            self.routes.remove(route.prefix);
        }
        self.count -= 1;
        true
    }

    /// Number of routes tracked.
    pub(crate) fn len(&self) -> usize {
        self.count
    }

    /// The tracked state of a route.
    pub(crate) fn state_of(&self, route: &RouteOrigin) -> Option<ValidationState> {
        self.routes
            .get(route.prefix)?
            .iter()
            .find(|(r, _)| r == route)
            .map(|(_, s)| *s)
    }

    /// Every tracked route, in table iteration order.
    pub(crate) fn all_routes(&self) -> Vec<RouteOrigin> {
        self.routes
            .iter()
            .flat_map(|(_, bucket)| bucket.iter().map(|(r, _)| *r))
            .collect()
    }

    /// Every tracked route with its state, sorted by route.
    pub(crate) fn states_sorted(&self) -> Vec<(RouteOrigin, ValidationState)> {
        let mut out: Vec<(RouteOrigin, ValidationState)> = self
            .routes
            .iter()
            .flat_map(|(_, bucket)| bucket.iter().copied())
            .collect();
        out.sort_unstable_by_key(|(r, _)| *r);
        out
    }

    /// The routes covered by any of `vrps`' prefixes — the only routes a
    /// delta over those VRPs can re-classify — deduplicated across
    /// overlapping subtrees.
    pub(crate) fn covered_by(&self, vrps: &[Vrp]) -> Vec<RouteOrigin> {
        let mut seen: BTreeSet<RouteOrigin> = BTreeSet::new();
        let mut out = Vec::new();
        for vrp in vrps {
            for (_, bucket) in self.routes.iter_covered_by(vrp.prefix) {
                for (route, _) in bucket {
                    if seen.insert(*route) {
                        out.push(*route);
                    }
                }
            }
        }
        out
    }

    /// Re-classifies `affected` with `validate`, updating tracked states
    /// and returning every transition, sorted by route.
    pub(crate) fn reapply(
        &mut self,
        affected: &[RouteOrigin],
        validate: impl Fn(&RouteOrigin) -> ValidationState,
    ) -> Vec<StateChange> {
        let mut changes = Vec::new();
        for route in affected {
            let new = validate(route);
            let bucket = self.routes.get_mut(route.prefix).expect("route tracked");
            let slot = bucket
                .iter_mut()
                .find(|(r, _)| r == route)
                .expect("route tracked");
            if slot.1 != new {
                changes.push(StateChange {
                    route: *route,
                    old: slot.1,
                    new,
                });
                slot.1 = new;
            }
        }
        changes.sort_by_key(|c| c.route);
        changes
    }
}
