use crate::ValidationState;

/// What a router does with the validation outcome.
///
/// The paper's threat model (§1) assumes operators "drop routes that the
/// RPKI deems invalid"; routers that don't enforce ROV accept everything.
/// The `bgpsim` experiments toggle this per-AS to model partial adoption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RovPolicy {
    /// Ignore validation results entirely (the pre-RPKI default).
    #[default]
    AcceptAll,
    /// Drop announcements whose state is Invalid; accept Valid and
    /// NotFound (the standard ROV deployment).
    DropInvalid,
}

impl RovPolicy {
    /// `true` if an announcement with `state` may enter the routing table.
    pub fn permits(self, state: ValidationState) -> bool {
        match self {
            RovPolicy::AcceptAll => true,
            RovPolicy::DropInvalid => !state.is_invalid(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_all_permits_everything() {
        for s in [
            ValidationState::Valid,
            ValidationState::Invalid,
            ValidationState::NotFound,
        ] {
            assert!(RovPolicy::AcceptAll.permits(s));
        }
    }

    #[test]
    fn drop_invalid_rejects_only_invalid() {
        assert!(RovPolicy::DropInvalid.permits(ValidationState::Valid));
        assert!(RovPolicy::DropInvalid.permits(ValidationState::NotFound));
        assert!(!RovPolicy::DropInvalid.permits(ValidationState::Invalid));
    }

    #[test]
    fn default_is_accept_all() {
        assert_eq!(RovPolicy::default(), RovPolicy::AcceptAll);
    }
}
