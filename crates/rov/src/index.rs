use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use rpki_prefix::Prefix;
use rpki_roa::{Roa, RouteOrigin, Vrp};
use rpki_trie::DualTrie;

use crate::{FrozenVrpIndex, ValidationState};

/// A trie-backed index over a set of VRPs, answering RFC 6811 queries in
/// `O(prefix length)`.
///
/// Multiple VRPs may share a prefix (different origins or maxLengths);
/// the index stores them per prefix node and deduplicates exact
/// duplicates.
#[derive(Debug, Clone, Default)]
pub struct VrpIndex {
    trie: DualTrie<Vec<Vrp>>,
    len: usize,
}

impl VrpIndex {
    /// Creates an empty index.
    pub fn new() -> VrpIndex {
        VrpIndex::default()
    }

    /// Builds an index from the VRPs of a set of ROAs.
    pub fn from_roas<'a>(roas: impl IntoIterator<Item = &'a Roa>) -> VrpIndex {
        roas.into_iter().flat_map(|r| r.vrps()).collect()
    }

    /// The number of distinct VRPs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no VRPs are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a VRP. Returns `false` if an identical VRP was already
    /// present.
    pub fn insert(&mut self, vrp: Vrp) -> bool {
        let bucket = self.trie.get_or_insert_with(vrp.prefix, Vec::new);
        if bucket.contains(&vrp) {
            return false;
        }
        bucket.push(vrp);
        self.len += 1;
        true
    }

    /// Removes a VRP. Returns `true` if it was present.
    pub fn remove(&mut self, vrp: &Vrp) -> bool {
        let Some(bucket) = self.trie.get_mut(vrp.prefix) else {
            return false;
        };
        let Some(at) = bucket.iter().position(|v| v == vrp) else {
            return false;
        };
        bucket.swap_remove(at);
        self.len -= 1;
        if bucket.is_empty() {
            self.trie.remove(vrp.prefix);
        }
        true
    }

    /// `true` if exactly this VRP is present.
    pub fn contains(&self, vrp: &Vrp) -> bool {
        self.trie
            .get(vrp.prefix)
            .is_some_and(|bucket| bucket.contains(vrp))
    }

    /// All VRPs whose prefix covers `prefix` (RFC 6811 "covering set"),
    /// shortest prefix first.
    pub fn covering(&self, prefix: Prefix) -> impl Iterator<Item = &Vrp> {
        self.trie
            .iter_covering(prefix)
            .flat_map(|(_, bucket)| bucket.iter())
    }

    /// All VRPs that *match* `route` (cover it, within maxLength, same
    /// origin).
    pub fn matching<'a>(&'a self, route: &'a RouteOrigin) -> impl Iterator<Item = &'a Vrp> {
        self.covering(route.prefix)
            .filter(move |v| v.matches(route))
    }

    /// All VRPs whose prefix is covered by `prefix` — the subtree under a
    /// query prefix, used by the §6 census.
    pub fn covered_by(&self, prefix: Prefix) -> impl Iterator<Item = &Vrp> {
        self.trie
            .iter_covered_by(prefix)
            .flat_map(|(_, bucket)| bucket.iter())
    }

    /// Classifies one announcement per RFC 6811.
    pub fn validate(&self, route: &RouteOrigin) -> ValidationState {
        let mut covered = false;
        for vrp in self.covering(route.prefix) {
            if vrp.matches(route) {
                return ValidationState::Valid;
            }
            covered = true;
        }
        if covered {
            ValidationState::Invalid
        } else {
            ValidationState::NotFound
        }
    }

    /// Validates a whole table, tallying outcomes.
    pub fn validate_table<'a>(
        &self,
        routes: impl IntoIterator<Item = &'a RouteOrigin>,
    ) -> ValidationSummary {
        routes
            .into_iter()
            .map(|route| ValidationSummary::of(self.validate(route)))
            .sum()
    }

    /// Iterates over all stored VRPs, grouped by prefix in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Vrp> {
        self.trie.iter().flat_map(|(_, bucket)| bucket.iter())
    }

    /// Compiles the current VRP set into an immutable
    /// [`FrozenVrpIndex`] snapshot: flat, cache-friendly arrays
    /// answering the same queries with identical results (the
    /// [snapshot-equivalence contract](crate::frozen)), shareable
    /// across threads and consumed by the parallel batch APIs.
    pub fn freeze(&self) -> FrozenVrpIndex {
        FrozenVrpIndex::from(self)
    }
}

impl FromIterator<Vrp> for VrpIndex {
    fn from_iter<I: IntoIterator<Item = Vrp>>(iter: I) -> VrpIndex {
        let mut index = VrpIndex::new();
        for vrp in iter {
            index.insert(vrp);
        }
        index
    }
}

impl Extend<Vrp> for VrpIndex {
    fn extend<I: IntoIterator<Item = Vrp>>(&mut self, iter: I) {
        for vrp in iter {
            self.insert(vrp);
        }
    }
}

/// Outcome counts from validating a BGP table against a [`VrpIndex`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationSummary {
    /// Announcements with a matching VRP.
    pub valid: usize,
    /// Announcements covered but never matched.
    pub invalid: usize,
    /// Announcements no VRP covers.
    pub not_found: usize,
}

impl ValidationSummary {
    /// The summary of a single outcome: one tally of 1, the others 0.
    /// The unit the batch paths fold over.
    pub fn of(state: ValidationState) -> ValidationSummary {
        let mut summary = ValidationSummary::default();
        match state {
            ValidationState::Valid => summary.valid = 1,
            ValidationState::Invalid => summary.invalid = 1,
            ValidationState::NotFound => summary.not_found = 1,
        }
        summary
    }

    /// Total announcements validated.
    pub fn total(&self) -> usize {
        self.valid + self.invalid + self.not_found
    }

    /// The fraction of announcements that are Valid — the "7.6% of
    /// (prefix, origin AS) pairs match a ROA" statistic of §2.
    pub fn valid_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.valid as f64 / self.total() as f64
        }
    }

    /// The fraction of announcements that are Invalid — the share a
    /// ROV-enforcing router would drop.
    pub fn invalid_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.invalid as f64 / self.total() as f64
        }
    }

    /// The fraction of announcements the RPKI says nothing about.
    pub fn not_found_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.not_found as f64 / self.total() as f64
        }
    }
}

impl Add for ValidationSummary {
    type Output = ValidationSummary;

    fn add(mut self, rhs: ValidationSummary) -> ValidationSummary {
        self += rhs;
        self
    }
}

impl AddAssign for ValidationSummary {
    fn add_assign(&mut self, rhs: ValidationSummary) {
        self.valid += rhs.valid;
        self.invalid += rhs.invalid;
        self.not_found += rhs.not_found;
    }
}

impl Sum for ValidationSummary {
    fn sum<I: Iterator<Item = ValidationSummary>>(iter: I) -> ValidationSummary {
        iter.fold(ValidationSummary::default(), Add::add)
    }
}

impl fmt::Display for ValidationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "valid: {}, invalid: {}, notfound: {} (total {})",
            self.valid,
            self.invalid,
            self.not_found,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpki_roa::Asn;

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn route(s: &str) -> RouteOrigin {
        s.parse().unwrap()
    }

    fn bu_index() -> VrpIndex {
        // The paper's §2 example: ROA (168.122.0.0/16, AS 111).
        [vrp("168.122.0.0/16 => AS111")].into_iter().collect()
    }

    #[test]
    fn section2_validation_states() {
        let index = bu_index();
        // AS 111 originates its prefix: Valid.
        assert_eq!(
            index.validate(&route("168.122.0.0/16 => AS111")),
            ValidationState::Valid
        );
        // AS 111 de-aggregates without a matching ROA: Invalid (§3).
        assert_eq!(
            index.validate(&route("168.122.225.0/24 => AS111")),
            ValidationState::Invalid
        );
        // Subprefix hijack: Invalid (§2).
        assert_eq!(
            index.validate(&route("168.122.0.0/24 => AS666")),
            ValidationState::Invalid
        );
        // Prefix hijack of the exact prefix: Invalid.
        assert_eq!(
            index.validate(&route("168.122.0.0/16 => AS666")),
            ValidationState::Invalid
        );
        // Unrelated prefix: NotFound.
        assert_eq!(
            index.validate(&route("8.8.8.0/24 => AS15169")),
            ValidationState::NotFound
        );
    }

    #[test]
    fn section4_maxlength_authorizes_hijack() {
        // With the non-minimal ROA (168.122.0.0/16-24, AS 111), the
        // forged-origin subprefix announcement is Valid — the attack core.
        let index: VrpIndex = [vrp("168.122.0.0/16-24 => AS111")].into_iter().collect();
        assert_eq!(
            index.validate(&route("168.122.0.0/24 => AS111")),
            ValidationState::Valid
        );
        // Beyond maxLength it turns Invalid again.
        assert_eq!(
            index.validate(&route("168.122.0.0/25 => AS111")),
            ValidationState::Invalid
        );
    }

    #[test]
    fn multiple_vrps_same_prefix() {
        let mut index = VrpIndex::new();
        assert!(index.insert(vrp("10.0.0.0/16 => AS1")));
        assert!(index.insert(vrp("10.0.0.0/16 => AS2")));
        assert!(!index.insert(vrp("10.0.0.0/16 => AS1"))); // duplicate
        assert_eq!(index.len(), 2);
        assert_eq!(
            index.validate(&route("10.0.0.0/16 => AS1")),
            ValidationState::Valid
        );
        assert_eq!(
            index.validate(&route("10.0.0.0/16 => AS2")),
            ValidationState::Valid
        );
        assert_eq!(
            index.validate(&route("10.0.0.0/16 => AS3")),
            ValidationState::Invalid
        );
    }

    #[test]
    fn remove_restores_not_found() {
        let mut index = bu_index();
        assert!(index.remove(&vrp("168.122.0.0/16 => AS111")));
        assert!(!index.remove(&vrp("168.122.0.0/16 => AS111")));
        assert!(index.is_empty());
        assert_eq!(
            index.validate(&route("168.122.0.0/16 => AS111")),
            ValidationState::NotFound
        );
    }

    #[test]
    fn covering_and_matching_iterators() {
        let index: VrpIndex = [
            vrp("10.0.0.0/8 => AS1"),
            vrp("10.0.0.0/16-24 => AS1"),
            vrp("10.0.0.0/16 => AS2"),
            vrp("11.0.0.0/8 => AS3"),
        ]
        .into_iter()
        .collect();
        let r = route("10.0.0.0/24 => AS1");
        assert_eq!(index.covering(r.prefix).count(), 3);
        let matching: Vec<_> = index.matching(&r).collect();
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].max_len, 24);
    }

    #[test]
    fn covered_by_subtree() {
        let index: VrpIndex = [
            vrp("10.0.0.0/8 => AS1"),
            vrp("10.1.0.0/16 => AS1"),
            vrp("11.0.0.0/8 => AS2"),
        ]
        .into_iter()
        .collect();
        let under: Vec<_> = index.covered_by("10.0.0.0/8".parse().unwrap()).collect();
        assert_eq!(under.len(), 2);
    }

    #[test]
    fn validate_table_summary() {
        let index = bu_index();
        let table = [
            route("168.122.0.0/16 => AS111"),
            route("168.122.0.0/24 => AS666"),
            route("8.8.8.0/24 => AS15169"),
            route("9.9.9.0/24 => AS19281"),
        ];
        let summary = index.validate_table(table.iter());
        assert_eq!(summary.valid, 1);
        assert_eq!(summary.invalid, 1);
        assert_eq!(summary.not_found, 2);
        assert_eq!(summary.total(), 4);
        assert!((summary.valid_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_fraction() {
        assert_eq!(ValidationSummary::default().valid_fraction(), 0.0);
        assert_eq!(ValidationSummary::default().invalid_fraction(), 0.0);
    }

    #[test]
    fn summary_of_single_states() {
        assert_eq!(
            ValidationSummary::of(ValidationState::Valid),
            ValidationSummary {
                valid: 1,
                invalid: 0,
                not_found: 0
            }
        );
        assert_eq!(ValidationSummary::of(ValidationState::Invalid).invalid, 1);
        assert_eq!(
            ValidationSummary::of(ValidationState::NotFound).not_found,
            1
        );
        assert_eq!(ValidationSummary::of(ValidationState::Valid).total(), 1);
    }

    #[test]
    fn summary_arithmetic() {
        let a = ValidationSummary {
            valid: 1,
            invalid: 2,
            not_found: 3,
        };
        let b = ValidationSummary {
            valid: 10,
            invalid: 20,
            not_found: 30,
        };
        let sum = a + b;
        assert_eq!(
            sum,
            ValidationSummary {
                valid: 11,
                invalid: 22,
                not_found: 33
            }
        );
        let mut acc = ValidationSummary::default();
        acc += a;
        acc += b;
        assert_eq!(acc, sum);
        let folded: ValidationSummary = [a, b, ValidationSummary::default()].into_iter().sum();
        assert_eq!(folded, sum);
        assert_eq!(folded.total(), 66);
    }

    #[test]
    fn summary_fractions() {
        let s = ValidationSummary {
            valid: 1,
            invalid: 3,
            not_found: 4,
        };
        assert!((s.valid_fraction() - 0.125).abs() < 1e-12);
        assert!((s.invalid_fraction() - 0.375).abs() < 1e-12);
        assert!((s.not_found_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(ValidationSummary::default().not_found_fraction(), 0.0);
    }

    #[test]
    fn from_roas_builds_index() {
        use rpki_roa::RoaPrefix;
        let roa = Roa::new(
            Asn(111),
            vec![
                RoaPrefix::exact("168.122.0.0/16".parse().unwrap()),
                RoaPrefix::exact("168.122.225.0/24".parse().unwrap()),
            ],
        )
        .unwrap();
        let index = VrpIndex::from_roas([&roa]);
        assert_eq!(index.len(), 2);
        // The minimal ROA stops the forged-origin subprefix hijack (§5).
        assert_eq!(
            index.validate(&route("168.122.0.0/24 => AS111")),
            ValidationState::Invalid
        );
        // But still authorizes the de-aggregated /24.
        assert_eq!(
            index.validate(&route("168.122.225.0/24 => AS111")),
            ValidationState::Valid
        );
    }

    #[test]
    fn cross_family_isolation() {
        let index: VrpIndex = [vrp("10.0.0.0/8 => AS1"), vrp("2001:db8::/32 => AS1")]
            .into_iter()
            .collect();
        assert_eq!(
            index.validate(&route("2001:db8::/48 => AS1")),
            ValidationState::Invalid
        );
        assert_eq!(
            index.validate(&route("2001:db8::/32 => AS1")),
            ValidationState::Valid
        );
        assert_eq!(
            index.validate(&route("2002::/16 => AS1")),
            ValidationState::NotFound
        );
    }

    #[test]
    fn iter_yields_all() {
        let vrps = [
            vrp("10.0.0.0/8 => AS1"),
            vrp("10.0.0.0/16 => AS2"),
            vrp("2001:db8::/32 => AS3"),
        ];
        let index: VrpIndex = vrps.into_iter().collect();
        assert_eq!(index.iter().count(), 3);
    }
}
