//! Incremental revalidation.
//!
//! RFC 6811 §5: "routers MUST support [...] revalidation of announcements
//! when VRPs change". A naive router revalidates its whole table on every
//! rpki-rtr delta; with ~700K routes and caches refreshing every few
//! minutes that is exactly the router load §6 worries about. This module
//! computes the *affected set* instead: when a VRP for prefix `p` appears
//! or disappears, only routes covered by `p` can possibly change state.
//!
//! [`RevalidationEngine`] owns the index and a route table, applies VRP
//! deltas, and reports precisely which routes changed state — the
//! control-plane counterpart of the rtr client's announce/withdraw stream.

use rpki_roa::{RouteOrigin, Vrp};
use rpki_trie::DualTrie;

use crate::{ValidationState, VrpIndex};

/// A route's state transition produced by a VRP delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateChange {
    /// The affected route.
    pub route: RouteOrigin,
    /// Its state before the delta.
    pub old: ValidationState,
    /// Its state after the delta.
    pub new: ValidationState,
}

/// An indexed route table with incremental revalidation against a mutable
/// VRP set.
#[derive(Debug, Clone, Default)]
pub struct RevalidationEngine {
    vrps: VrpIndex,
    /// Routes grouped by prefix, with their current validation state.
    routes: DualTrie<Vec<(RouteOrigin, ValidationState)>>,
    route_count: usize,
}

impl RevalidationEngine {
    /// Creates an engine over a route table and an initial VRP set,
    /// validating everything once.
    pub fn new(
        routes: impl IntoIterator<Item = RouteOrigin>,
        vrps: impl IntoIterator<Item = Vrp>,
    ) -> RevalidationEngine {
        let vrps: VrpIndex = vrps.into_iter().collect();
        let mut engine = RevalidationEngine {
            vrps,
            routes: DualTrie::new(),
            route_count: 0,
        };
        for route in routes {
            engine.insert_route(route);
        }
        engine
    }

    /// Adds a route (e.g. a BGP update), returning its validation state.
    /// Duplicate routes are ignored and re-report their current state.
    pub fn insert_route(&mut self, route: RouteOrigin) -> ValidationState {
        let state = self.vrps.validate(&route);
        let bucket = self.routes.get_or_insert_with(route.prefix, Vec::new);
        if let Some((_, s)) = bucket.iter().find(|(r, _)| *r == route) {
            return *s;
        }
        bucket.push((route, state));
        self.route_count += 1;
        state
    }

    /// Removes a route (a BGP withdrawal). Returns `true` if present.
    pub fn remove_route(&mut self, route: &RouteOrigin) -> bool {
        let Some(bucket) = self.routes.get_mut(route.prefix) else {
            return false;
        };
        let Some(at) = bucket.iter().position(|(r, _)| r == route) else {
            return false;
        };
        bucket.swap_remove(at);
        if bucket.is_empty() {
            self.routes.remove(route.prefix);
        }
        self.route_count -= 1;
        true
    }

    /// Number of routes tracked.
    pub fn route_count(&self) -> usize {
        self.route_count
    }

    /// The current state of a route, if tracked.
    pub fn state_of(&self, route: &RouteOrigin) -> Option<ValidationState> {
        self.routes
            .get(route.prefix)?
            .iter()
            .find(|(r, _)| r == route)
            .map(|(_, s)| *s)
    }

    /// The VRP set currently applied.
    pub fn vrps(&self) -> &VrpIndex {
        &self.vrps
    }

    /// Applies one VRP announcement, revalidating only the covered routes.
    /// Returns every route whose state changed.
    pub fn announce_vrp(&mut self, vrp: Vrp) -> Vec<StateChange> {
        if !self.vrps.insert(vrp) {
            return Vec::new(); // duplicate: nothing can change
        }
        self.revalidate_covered_by(vrp)
    }

    /// Applies one VRP withdrawal, revalidating only the covered routes.
    pub fn withdraw_vrp(&mut self, vrp: &Vrp) -> Vec<StateChange> {
        if !self.vrps.remove(vrp) {
            return Vec::new();
        }
        self.revalidate_covered_by(*vrp)
    }

    /// Applies a whole rtr-style delta (announcements and withdrawals),
    /// revalidating the union of affected subtrees once.
    pub fn apply_delta(&mut self, announced: &[Vrp], withdrawn: &[Vrp]) -> Vec<StateChange> {
        let mut touched: Vec<Vrp> = Vec::new();
        for vrp in announced {
            if self.vrps.insert(*vrp) {
                touched.push(*vrp);
            }
        }
        for vrp in withdrawn {
            if self.vrps.remove(vrp) {
                touched.push(*vrp);
            }
        }
        // Revalidate each affected subtree; dedup routes seen twice when
        // deltas overlap.
        let mut changes = Vec::new();
        let mut seen: std::collections::BTreeSet<RouteOrigin> = Default::default();
        for vrp in touched {
            for change in self.revalidate_covered_by(vrp) {
                if seen.insert(change.route) {
                    changes.push(change);
                }
            }
        }
        changes
    }

    /// Revalidates every tracked route covered by `vrp.prefix` — the only
    /// routes whose covering set changed.
    fn revalidate_covered_by(&mut self, vrp: Vrp) -> Vec<StateChange> {
        // Collect affected routes first (cannot mutate while iterating).
        let affected: Vec<RouteOrigin> = self
            .routes
            .iter_covered_by(vrp.prefix)
            .flat_map(|(_, bucket)| bucket.iter().map(|(r, _)| *r))
            .collect();
        let mut changes = Vec::new();
        for route in affected {
            let new = self.vrps.validate(&route);
            let bucket = self.routes.get_mut(route.prefix).expect("route tracked");
            let slot = bucket
                .iter_mut()
                .find(|(r, _)| *r == route)
                .expect("route tracked");
            if slot.1 != new {
                changes.push(StateChange {
                    route,
                    old: slot.1,
                    new,
                });
                slot.1 = new;
            }
        }
        changes.sort_by_key(|c| c.route);
        changes
    }

    /// Full revalidation from scratch (the naive baseline the ablation
    /// bench compares against). Returns the changes it found; the result
    /// state is identical to the incremental path by construction.
    ///
    /// The bulk path freezes the VRP set once
    /// ([`VrpIndex::freeze`]) and validates the whole table against the
    /// flat snapshot — one compilation pays for the table-sized scan.
    pub fn revalidate_all(&mut self) -> Vec<StateChange> {
        let routes: Vec<RouteOrigin> = self
            .routes
            .iter()
            .flat_map(|(_, bucket)| bucket.iter().map(|(r, _)| *r))
            .collect();
        let frozen = self.vrps.freeze();
        let mut changes = Vec::new();
        for route in routes {
            let new = frozen.validate(&route);
            let bucket = self.routes.get_mut(route.prefix).expect("tracked");
            let slot = bucket
                .iter_mut()
                .find(|(r, _)| *r == route)
                .expect("tracked");
            if slot.1 != new {
                changes.push(StateChange {
                    route,
                    old: slot.1,
                    new,
                });
                slot.1 = new;
            }
        }
        changes.sort_by_key(|c| c.route);
        changes
    }

    /// Validates the tracked table against a frozen snapshot of the
    /// current VRP set across worker threads, tallying outcomes — the
    /// "router reload" summary without mutating any per-route state.
    /// Identical to folding [`VrpIndex::validate_table`] over the table.
    pub fn bulk_summary_par(&self) -> crate::ValidationSummary {
        let routes: Vec<RouteOrigin> = self
            .routes
            .iter()
            .flat_map(|(_, bucket)| bucket.iter().map(|(r, _)| *r))
            .collect();
        self.vrps.freeze().validate_table_par(&routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str) -> RouteOrigin {
        s.parse().unwrap()
    }

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn engine() -> RevalidationEngine {
        RevalidationEngine::new(
            [
                route("168.122.0.0/16 => AS111"),
                route("168.122.225.0/24 => AS111"),
                route("10.0.0.0/8 => AS1"),
            ],
            [],
        )
    }

    #[test]
    fn initial_states_not_found() {
        let e = engine();
        assert_eq!(e.route_count(), 3);
        for r in ["168.122.0.0/16 => AS111", "10.0.0.0/8 => AS1"] {
            assert_eq!(e.state_of(&route(r)), Some(ValidationState::NotFound));
        }
    }

    #[test]
    fn announcing_roa_flips_covered_routes_only() {
        let mut e = engine();
        let changes = e.announce_vrp(vrp("168.122.0.0/16 => AS111"));
        // The /16 turns Valid; the /24 turns Invalid (covered, unmatched);
        // 10.0.0.0/8 is untouched.
        assert_eq!(changes.len(), 2);
        assert_eq!(
            e.state_of(&route("168.122.0.0/16 => AS111")),
            Some(ValidationState::Valid)
        );
        assert_eq!(
            e.state_of(&route("168.122.225.0/24 => AS111")),
            Some(ValidationState::Invalid)
        );
        assert_eq!(
            e.state_of(&route("10.0.0.0/8 => AS1")),
            Some(ValidationState::NotFound)
        );
        // Old states recorded correctly.
        assert!(changes.iter().all(|c| c.old == ValidationState::NotFound));
    }

    #[test]
    fn widening_maxlength_rescues_the_deaggregate() {
        let mut e = engine();
        e.announce_vrp(vrp("168.122.0.0/16 => AS111"));
        let changes = e.announce_vrp(vrp("168.122.0.0/16-24 => AS111"));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].route, route("168.122.225.0/24 => AS111"));
        assert_eq!(changes[0].old, ValidationState::Invalid);
        assert_eq!(changes[0].new, ValidationState::Valid);
    }

    #[test]
    fn withdrawal_reverts() {
        let mut e = engine();
        let v = vrp("168.122.0.0/16 => AS111");
        e.announce_vrp(v);
        let changes = e.withdraw_vrp(&v);
        assert_eq!(changes.len(), 2);
        for r in ["168.122.0.0/16 => AS111", "168.122.225.0/24 => AS111"] {
            assert_eq!(e.state_of(&route(r)), Some(ValidationState::NotFound));
        }
    }

    #[test]
    fn duplicate_announce_and_missing_withdraw_are_noops() {
        let mut e = engine();
        let v = vrp("168.122.0.0/16 => AS111");
        assert!(!e.announce_vrp(v).is_empty());
        assert!(e.announce_vrp(v).is_empty());
        assert!(e.withdraw_vrp(&vrp("99.0.0.0/8 => AS9")).is_empty());
    }

    #[test]
    fn incremental_agrees_with_full_revalidation() {
        let mut incremental = engine();
        let mut baseline = engine();
        let deltas = [
            vrp("168.122.0.0/16 => AS111"),
            vrp("10.0.0.0/8-16 => AS1"),
            vrp("168.122.0.0/16-24 => AS111"),
        ];
        for v in deltas {
            incremental.announce_vrp(v);
            baseline.vrps.insert(v);
            baseline.revalidate_all();
            for r in [
                "168.122.0.0/16 => AS111",
                "168.122.225.0/24 => AS111",
                "10.0.0.0/8 => AS1",
            ] {
                assert_eq!(
                    incremental.state_of(&route(r)),
                    baseline.state_of(&route(r)),
                    "after {v}"
                );
            }
        }
    }

    #[test]
    fn apply_delta_combines_and_dedups() {
        let mut e = engine();
        e.announce_vrp(vrp("168.122.0.0/16 => AS111"));
        // Swap the /16 ROA for a /16-24 in one delta: the /24 flips
        // Invalid->Valid; the /16 stays Valid (not reported).
        let changes = e.apply_delta(
            &[vrp("168.122.0.0/16-24 => AS111")],
            &[vrp("168.122.0.0/16 => AS111")],
        );
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].route, route("168.122.225.0/24 => AS111"));
        assert_eq!(
            e.state_of(&route("168.122.0.0/16 => AS111")),
            Some(ValidationState::Valid)
        );
    }

    #[test]
    fn route_insert_remove() {
        let mut e = engine();
        e.announce_vrp(vrp("10.0.0.0/8 => AS1"));
        // A new route validates on arrival.
        assert_eq!(
            e.insert_route(route("10.5.0.0/16 => AS2")),
            ValidationState::Invalid
        );
        assert_eq!(e.route_count(), 4);
        // Duplicate insert reports current state, no growth.
        assert_eq!(
            e.insert_route(route("10.5.0.0/16 => AS2")),
            ValidationState::Invalid
        );
        assert_eq!(e.route_count(), 4);
        assert!(e.remove_route(&route("10.5.0.0/16 => AS2")));
        assert!(!e.remove_route(&route("10.5.0.0/16 => AS2")));
        assert_eq!(e.route_count(), 3);
    }

    #[test]
    fn unrelated_vrp_changes_touch_nothing() {
        let mut e = engine();
        e.announce_vrp(vrp("168.122.0.0/16 => AS111"));
        let changes = e.announce_vrp(vrp("99.0.0.0/8 => AS9"));
        assert!(changes.is_empty());
    }
}
