//! Incremental revalidation.
//!
//! RFC 6811 §5: "routers MUST support [...] revalidation of announcements
//! when VRPs change". A naive router revalidates its whole table on every
//! rpki-rtr delta; with ~700K routes and caches refreshing every few
//! minutes that is exactly the router load §6 worries about. This module
//! computes the *affected set* instead: when a VRP for prefix `p` appears
//! or disappears, only routes covered by `p` can possibly change state.
//!
//! [`RevalidationEngine`] owns the index and a route table, applies VRP
//! deltas, and reports precisely which routes changed state — the
//! control-plane counterpart of the rtr client's announce/withdraw stream.

use rpki_roa::{RouteOrigin, Vrp};

use crate::route_table::RouteTable;
use crate::{ValidationState, VrpIndex};

/// A route's state transition produced by a VRP delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateChange {
    /// The affected route.
    pub route: RouteOrigin,
    /// Its state before the delta.
    pub old: ValidationState,
    /// Its state after the delta.
    pub new: ValidationState,
}

/// An indexed route table with incremental revalidation against a mutable
/// VRP set.
#[derive(Debug, Clone, Default)]
pub struct RevalidationEngine {
    vrps: VrpIndex,
    routes: RouteTable,
}

impl RevalidationEngine {
    /// Creates an engine over a route table and an initial VRP set,
    /// validating everything once.
    pub fn new(
        routes: impl IntoIterator<Item = RouteOrigin>,
        vrps: impl IntoIterator<Item = Vrp>,
    ) -> RevalidationEngine {
        let vrps: VrpIndex = vrps.into_iter().collect();
        let mut engine = RevalidationEngine {
            vrps,
            routes: RouteTable::default(),
        };
        for route in routes {
            engine.insert_route(route);
        }
        engine
    }

    /// Adds a route (e.g. a BGP update), returning its validation state.
    /// Duplicate routes are ignored and re-report their current state.
    pub fn insert_route(&mut self, route: RouteOrigin) -> ValidationState {
        let vrps = &self.vrps;
        self.routes.insert_with(route, |r| vrps.validate(r))
    }

    /// Removes a route (a BGP withdrawal). Returns `true` if present.
    pub fn remove_route(&mut self, route: &RouteOrigin) -> bool {
        self.routes.remove(route)
    }

    /// Number of routes tracked.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// The current state of a route, if tracked.
    pub fn state_of(&self, route: &RouteOrigin) -> Option<ValidationState> {
        self.routes.state_of(route)
    }

    /// The VRP set currently applied.
    pub fn vrps(&self) -> &VrpIndex {
        &self.vrps
    }

    /// Applies one VRP announcement, revalidating only the covered routes.
    /// Returns every route whose state changed.
    pub fn announce_vrp(&mut self, vrp: Vrp) -> Vec<StateChange> {
        if !self.vrps.insert(vrp) {
            return Vec::new(); // duplicate: nothing can change
        }
        self.revalidate_covered_by(&[vrp])
    }

    /// Applies one VRP withdrawal, revalidating only the covered routes.
    pub fn withdraw_vrp(&mut self, vrp: &Vrp) -> Vec<StateChange> {
        if !self.vrps.remove(vrp) {
            return Vec::new();
        }
        self.revalidate_covered_by(&[*vrp])
    }

    /// Applies a whole rtr-style delta (announcements and withdrawals),
    /// revalidating the union of affected subtrees once.
    pub fn apply_delta(&mut self, announced: &[Vrp], withdrawn: &[Vrp]) -> Vec<StateChange> {
        let mut touched: Vec<Vrp> = Vec::new();
        for vrp in announced {
            if self.vrps.insert(*vrp) {
                touched.push(*vrp);
            }
        }
        for vrp in withdrawn {
            if self.vrps.remove(vrp) {
                touched.push(*vrp);
            }
        }
        // Revalidate the union of affected subtrees once, deduplicated.
        self.revalidate_covered_by(&touched)
    }

    /// Revalidates every tracked route covered by one of `vrps` — the
    /// only routes whose covering set changed.
    fn revalidate_covered_by(&mut self, vrps: &[Vrp]) -> Vec<StateChange> {
        let affected = self.routes.covered_by(vrps);
        let index = &self.vrps;
        self.routes.reapply(&affected, |r| index.validate(r))
    }

    /// Full revalidation from scratch (the naive baseline the ablation
    /// bench compares against). Returns the changes it found; the result
    /// state is identical to the incremental path by construction.
    ///
    /// The bulk path freezes the VRP set once
    /// ([`VrpIndex::freeze`]) and validates the whole table against the
    /// flat snapshot — one compilation pays for the table-sized scan.
    pub fn revalidate_all(&mut self) -> Vec<StateChange> {
        let routes = self.routes.all_routes();
        let frozen = self.vrps.freeze();
        self.routes.reapply(&routes, |r| frozen.validate(r))
    }

    /// Validates the tracked table against a frozen snapshot of the
    /// current VRP set across worker threads, tallying outcomes — the
    /// "router reload" summary without mutating any per-route state.
    /// Identical to folding [`VrpIndex::validate_table`] over the table.
    pub fn bulk_summary_par(&self) -> crate::ValidationSummary {
        let routes = self.routes.all_routes();
        self.vrps.freeze().validate_table_par(&routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str) -> RouteOrigin {
        s.parse().unwrap()
    }

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn engine() -> RevalidationEngine {
        RevalidationEngine::new(
            [
                route("168.122.0.0/16 => AS111"),
                route("168.122.225.0/24 => AS111"),
                route("10.0.0.0/8 => AS1"),
            ],
            [],
        )
    }

    #[test]
    fn initial_states_not_found() {
        let e = engine();
        assert_eq!(e.route_count(), 3);
        for r in ["168.122.0.0/16 => AS111", "10.0.0.0/8 => AS1"] {
            assert_eq!(e.state_of(&route(r)), Some(ValidationState::NotFound));
        }
    }

    #[test]
    fn announcing_roa_flips_covered_routes_only() {
        let mut e = engine();
        let changes = e.announce_vrp(vrp("168.122.0.0/16 => AS111"));
        // The /16 turns Valid; the /24 turns Invalid (covered, unmatched);
        // 10.0.0.0/8 is untouched.
        assert_eq!(changes.len(), 2);
        assert_eq!(
            e.state_of(&route("168.122.0.0/16 => AS111")),
            Some(ValidationState::Valid)
        );
        assert_eq!(
            e.state_of(&route("168.122.225.0/24 => AS111")),
            Some(ValidationState::Invalid)
        );
        assert_eq!(
            e.state_of(&route("10.0.0.0/8 => AS1")),
            Some(ValidationState::NotFound)
        );
        // Old states recorded correctly.
        assert!(changes.iter().all(|c| c.old == ValidationState::NotFound));
    }

    #[test]
    fn widening_maxlength_rescues_the_deaggregate() {
        let mut e = engine();
        e.announce_vrp(vrp("168.122.0.0/16 => AS111"));
        let changes = e.announce_vrp(vrp("168.122.0.0/16-24 => AS111"));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].route, route("168.122.225.0/24 => AS111"));
        assert_eq!(changes[0].old, ValidationState::Invalid);
        assert_eq!(changes[0].new, ValidationState::Valid);
    }

    #[test]
    fn withdrawal_reverts() {
        let mut e = engine();
        let v = vrp("168.122.0.0/16 => AS111");
        e.announce_vrp(v);
        let changes = e.withdraw_vrp(&v);
        assert_eq!(changes.len(), 2);
        for r in ["168.122.0.0/16 => AS111", "168.122.225.0/24 => AS111"] {
            assert_eq!(e.state_of(&route(r)), Some(ValidationState::NotFound));
        }
    }

    #[test]
    fn duplicate_announce_and_missing_withdraw_are_noops() {
        let mut e = engine();
        let v = vrp("168.122.0.0/16 => AS111");
        assert!(!e.announce_vrp(v).is_empty());
        assert!(e.announce_vrp(v).is_empty());
        assert!(e.withdraw_vrp(&vrp("99.0.0.0/8 => AS9")).is_empty());
    }

    #[test]
    fn incremental_agrees_with_full_revalidation() {
        let mut incremental = engine();
        let mut baseline = engine();
        let deltas = [
            vrp("168.122.0.0/16 => AS111"),
            vrp("10.0.0.0/8-16 => AS1"),
            vrp("168.122.0.0/16-24 => AS111"),
        ];
        for v in deltas {
            incremental.announce_vrp(v);
            baseline.vrps.insert(v);
            baseline.revalidate_all();
            for r in [
                "168.122.0.0/16 => AS111",
                "168.122.225.0/24 => AS111",
                "10.0.0.0/8 => AS1",
            ] {
                assert_eq!(
                    incremental.state_of(&route(r)),
                    baseline.state_of(&route(r)),
                    "after {v}"
                );
            }
        }
    }

    #[test]
    fn apply_delta_combines_and_dedups() {
        let mut e = engine();
        e.announce_vrp(vrp("168.122.0.0/16 => AS111"));
        // Swap the /16 ROA for a /16-24 in one delta: the /24 flips
        // Invalid->Valid; the /16 stays Valid (not reported).
        let changes = e.apply_delta(
            &[vrp("168.122.0.0/16-24 => AS111")],
            &[vrp("168.122.0.0/16 => AS111")],
        );
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].route, route("168.122.225.0/24 => AS111"));
        assert_eq!(
            e.state_of(&route("168.122.0.0/16 => AS111")),
            Some(ValidationState::Valid)
        );
    }

    #[test]
    fn route_insert_remove() {
        let mut e = engine();
        e.announce_vrp(vrp("10.0.0.0/8 => AS1"));
        // A new route validates on arrival.
        assert_eq!(
            e.insert_route(route("10.5.0.0/16 => AS2")),
            ValidationState::Invalid
        );
        assert_eq!(e.route_count(), 4);
        // Duplicate insert reports current state, no growth.
        assert_eq!(
            e.insert_route(route("10.5.0.0/16 => AS2")),
            ValidationState::Invalid
        );
        assert_eq!(e.route_count(), 4);
        assert!(e.remove_route(&route("10.5.0.0/16 => AS2")));
        assert!(!e.remove_route(&route("10.5.0.0/16 => AS2")));
        assert_eq!(e.route_count(), 3);
    }

    #[test]
    fn unrelated_vrp_changes_touch_nothing() {
        let mut e = engine();
        e.announce_vrp(vrp("168.122.0.0/16 => AS111"));
        let changes = e.announce_vrp(vrp("99.0.0.0/8 => AS9"));
        assert!(changes.is_empty());
    }
}
