//! Frozen, immutable VRP snapshots: the read-optimized half of the
//! builder→freeze pipeline.
//!
//! [`VrpIndex`](crate::VrpIndex) is a pointer-chasing radix trie built
//! for cheap mutation. Once a validation run's VRP set is final, the
//! paper's workloads — RFC 6811 table validation (§2), the §6 census,
//! the §4/§5 sampled attacks — issue millions of *read-only*
//! `validate` calls against it. [`FrozenVrpIndex`] compiles the trie
//! into flat, cache-friendly arrays:
//!
//! * per address family, prefix nodes are grouped **by prefix length**,
//!   each group holding its node keys in one sorted array — a covering
//!   query is at most one binary search per populated length (≤ 33 for
//!   IPv4, and in practice a handful, instead of a pointer walk);
//! * each node's VRPs live in one contiguous span of a single flat
//!   array, sorted by origin AS;
//! * each node also carries a precomputed `(origin, max maxLength)`
//!   table, so `validate` answers the match question per origin with a
//!   binary search and a single comparison — no per-VRP scan.
//!
//! The structure is immutable and wholly owned, hence `Send + Sync` and
//! cheap to share as an `Arc<FrozenVrpIndex>` across worker threads;
//! [`FrozenVrpIndex::validate_table_par`] does exactly that internally.
//!
//! # Snapshot-equivalence contract
//!
//! For any `index: VrpIndex` and `frozen = index.freeze()`:
//!
//! * `frozen.validate(r) == index.validate(r)` for every route `r`;
//! * `frozen.covering(p)` / `frozen.covered_by(p)` / `frozen.iter()`
//!   yield exactly the same VRP *sets* as the builder's iterators
//!   (frozen iteration order is `(prefix length, prefix bits, origin,
//!   maxLength)` within a family, IPv4 before IPv6);
//! * `frozen.validate_table(t)` and `frozen.validate_table_par(t)`
//!   equal `index.validate_table(t)` — the parallel reduction sums the
//!   integer [`ValidationSummary`] counters, which is associative, so
//!   parallelism cannot change the result.
//!
//! The contract is property-tested in `tests/props.rs` against random
//! IPv4 + IPv6 VRP sets.

use rayon::prelude::*;

use rpki_prefix::{Afi, Prefix};
use rpki_roa::{Asn, RouteOrigin, Vrp};

use crate::{ValidationState, ValidationSummary, VrpIndex};

/// One `(origin, max maxLength)` row of a node's match table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OriginMax {
    asn: Asn,
    max_len: u8,
}

/// The nodes of one prefix length, keys sorted ascending.
#[derive(Debug, Clone, Default)]
struct LengthGroup {
    len: u8,
    /// Left-aligned prefix bits (`Prefix::bits_u128` keys), sorted.
    keys: Vec<u128>,
    /// Per node: span into [`FrozenFamily::vrps`].
    vrp_spans: Vec<(u32, u32)>,
    /// Per node: span into [`FrozenFamily::origins`].
    origin_spans: Vec<(u32, u32)>,
}

/// The bucket filter's granularity ceiling: routes are bucketed by up
/// to this many of their top address bits (the actual width adapts to
/// the node count, see [`FrozenFamily::build_buckets`]).
const MAX_BUCKET_BITS: u32 = 16;

/// One address family's frozen arrays.
#[derive(Debug, Clone, Default)]
struct FrozenFamily {
    /// Populated prefix lengths, ascending.
    groups: Vec<LengthGroup>,
    /// All VRPs, grouped by node, sorted by `(origin, maxLength)` within
    /// a node.
    vrps: Vec<Vrp>,
    /// Per-node origin match tables, sorted by origin within a node.
    origins: Vec<OriginMax>,
    /// Per top-`bucket_bits`-bits bucket: a bitmask of the group indices
    /// whose nodes could cover a route in that bucket. One load answers
    /// "which of the ≤ 33 (or ≤ 129) length groups are even worth a
    /// binary search here" — and for the common NotFound route the
    /// answer is `0`, skipping all probes. Empty when the family is
    /// empty.
    buckets: Vec<u64>,
    /// Address bits indexing [`Self::buckets`], sized to the node count
    /// (capped at [`MAX_BUCKET_BITS`]) so freezing a handful of VRPs
    /// costs a handful of bytes, not a fixed half-megabyte table.
    bucket_bits: u32,
    /// Group indices ≥ 64 (beyond the bitmask width); always probed.
    /// Empty in practice — real VRP sets populate far fewer lengths.
    overflow_groups: Vec<u32>,
}

/// The left-aligned mask selecting the top `len` bits.
#[inline]
const fn mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

impl FrozenFamily {
    fn build(mut vrps: Vec<Vrp>) -> FrozenFamily {
        // Group nodes by (len, bits); order VRPs by (origin, maxLength)
        // within a node so the origin table falls out of one pass.
        vrps.sort_unstable_by_key(|v| (v.prefix.len(), v.prefix.bits_u128(), v.asn, v.max_len));
        vrps.dedup();

        let mut family = FrozenFamily::default();
        for vrp in vrps {
            let len = vrp.prefix.len();
            let key = vrp.prefix.bits_u128();
            if family.groups.last().map(|g| g.len) != Some(len) {
                family.groups.push(LengthGroup {
                    len,
                    ..LengthGroup::default()
                });
            }
            let vrp_at = family.vrps.len() as u32;
            let origin_at = family.origins.len() as u32;
            let group = family.groups.last_mut().expect("just ensured");
            if group.keys.last() != Some(&key) {
                group.keys.push(key);
                group.vrp_spans.push((vrp_at, vrp_at));
                group.origin_spans.push((origin_at, origin_at));
            }
            family.vrps.push(vrp);
            group.vrp_spans.last_mut().expect("node open").1 += 1;
            // Extend the origin table: VRPs of one node arrive sorted by
            // (origin, maxLength), so each origin's last VRP carries its
            // maximum maxLength.
            let node_origin_start = group.origin_spans.last().expect("node open").0 as usize;
            let same_origin = family.origins.len() > node_origin_start
                && family.origins.last().map(|o| o.asn) == Some(vrp.asn);
            if same_origin {
                let last = family.origins.last_mut().expect("non-empty");
                last.max_len = last.max_len.max(vrp.max_len);
            } else {
                family.origins.push(OriginMax {
                    asn: vrp.asn,
                    max_len: vrp.max_len,
                });
                group.origin_spans.last_mut().expect("node open").1 += 1;
            }
        }
        family.build_buckets();
        family
    }

    /// Fills [`Self::buckets`]: for every node, mark its group's bit in
    /// every bucket the node's subtree intersects. The table is sized to
    /// the node count — `2^bits ≈ nodes` — so a 4-VRP freeze builds a
    /// 4-slot filter while a 700K-pair world saturates at
    /// `2^MAX_BUCKET_BITS` entries (512 KiB), which fits L2.
    fn build_buckets(&mut self) {
        if self.vrps.is_empty() {
            return;
        }
        let nodes: usize = self.groups.iter().map(|g| g.keys.len()).sum();
        self.bucket_bits = (usize::BITS - nodes.leading_zeros()).min(MAX_BUCKET_BITS);
        self.buckets = vec![0u64; 1 << self.bucket_bits];
        let shift = 128 - self.bucket_bits;
        for (g, group) in self.groups.iter().enumerate() {
            if g >= 64 {
                self.overflow_groups.push(g as u32);
                continue;
            }
            let bit = 1u64 << g;
            for &key in &group.keys {
                let first = (key >> shift) as usize;
                let last = ((key | !mask(group.len)) >> shift) as usize;
                // A node shorter than the bucket granularity spans many
                // buckets; a longer one lands in exactly one.
                for bucket in &mut self.buckets[first..=last] {
                    *bucket |= bit;
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.vrps.len()
    }

    /// The VRP span of the node exactly at `(len, bits)`, if present.
    #[inline]
    fn node(&self, group: &LengthGroup, bits: u128) -> Option<usize> {
        group.keys.binary_search(&bits).ok()
    }

    /// Probes one group for a node covering the route; updates
    /// `covered` and returns `true` on a full RFC 6811 match.
    #[inline]
    fn probe(
        &self,
        group: &LengthGroup,
        route_bits: u128,
        route_len: u8,
        origin: Asn,
        origin_ok: bool,
        covered: &mut bool,
    ) -> bool {
        let Some(at) = self.node(group, route_bits & mask(group.len)) else {
            return false;
        };
        *covered = true;
        if !origin_ok {
            return false;
        }
        let (lo, hi) = group.origin_spans[at];
        let table = &self.origins[lo as usize..hi as usize];
        match table.binary_search_by_key(&origin, |o| o.asn) {
            Ok(hit) => route_len <= table[hit].max_len,
            Err(_) => false,
        }
    }

    /// RFC 6811 classification against this family.
    fn validate(&self, route: &RouteOrigin) -> ValidationState {
        if self.vrps.is_empty() {
            return ValidationState::NotFound;
        }
        let route_len = route.prefix.len();
        let route_bits = route.prefix.bits_u128();
        let origin_ok = !route.origin.is_zero();
        let mut covered = false;
        // One load tells us which length groups can possibly cover this
        // route; for the typical NotFound route the mask is zero and no
        // group is probed at all.
        let mut pending = self.buckets[(route_bits >> (128 - self.bucket_bits)) as usize];
        while pending != 0 {
            let g = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            let group = &self.groups[g];
            if group.len > route_len {
                break; // groups are length-ascending: nothing shorter left
            }
            if self.probe(
                group,
                route_bits,
                route_len,
                route.origin,
                origin_ok,
                &mut covered,
            ) {
                return ValidationState::Valid;
            }
        }
        for &g in &self.overflow_groups {
            let group = &self.groups[g as usize];
            if group.len > route_len {
                break;
            }
            if self.probe(
                group,
                route_bits,
                route_len,
                route.origin,
                origin_ok,
                &mut covered,
            ) {
                return ValidationState::Valid;
            }
        }
        if covered {
            ValidationState::Invalid
        } else {
            ValidationState::NotFound
        }
    }

    /// VRPs at nodes covering `prefix`, shortest prefix first.
    fn covering(&self, prefix: Prefix) -> impl Iterator<Item = &Vrp> {
        let q_len = prefix.len();
        let q_bits = prefix.bits_u128();
        self.groups
            .iter()
            .take_while(move |g| g.len <= q_len)
            .filter_map(move |g| {
                let at = self.node(g, q_bits & mask(g.len))?;
                let (lo, hi) = g.vrp_spans[at];
                Some(&self.vrps[lo as usize..hi as usize])
            })
            .flatten()
    }

    /// VRPs at nodes covered by `prefix`, in `(len, bits)` order.
    fn covered_by(&self, prefix: Prefix) -> impl Iterator<Item = &Vrp> {
        let q_len = prefix.len();
        let q_bits = prefix.bits_u128();
        let q_hi = q_bits | !mask(q_len);
        self.groups
            .iter()
            .filter(move |g| g.len >= q_len)
            .flat_map(move |g| {
                let lo = g.keys.partition_point(|&k| k < q_bits);
                let hi = g.keys.partition_point(|&k| k <= q_hi);
                (lo..hi).flat_map(move |at| {
                    let (s, e) = g.vrp_spans[at];
                    &self.vrps[s as usize..e as usize]
                })
            })
    }
}

/// An immutable, `Arc`-shareable compilation of a VRP set into flat
/// arrays, answering the [`VrpIndex`](crate::VrpIndex) read API without
/// pointer chasing. See the [module docs](self) for the layout and the
/// snapshot-equivalence contract.
///
/// ```
/// use rpki_rov::{FrozenVrpIndex, ValidationState, VrpIndex};
///
/// let index: VrpIndex = ["168.122.0.0/16 => AS111".parse().unwrap()]
///     .into_iter()
///     .collect();
/// let frozen = index.freeze();
///
/// assert_eq!(
///     frozen.validate(&"168.122.0.0/24 => AS666".parse().unwrap()),
///     ValidationState::Invalid,
/// );
/// # assert_eq!(frozen.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrozenVrpIndex {
    v4: FrozenFamily,
    v6: FrozenFamily,
}

impl FrozenVrpIndex {
    /// Compiles a snapshot from any VRP collection (duplicates collapse,
    /// exactly as [`VrpIndex::insert`] would collapse them).
    pub fn from_vrps(vrps: impl IntoIterator<Item = Vrp>) -> FrozenVrpIndex {
        let (v4, v6): (Vec<Vrp>, Vec<Vrp>) = vrps.into_iter().partition(|v| v.prefix.is_v4());
        FrozenVrpIndex {
            v4: FrozenFamily::build(v4),
            v6: FrozenFamily::build(v6),
        }
    }

    /// The number of distinct VRPs stored.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// `true` if no VRPs are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of VRPs in one address family.
    pub fn len_for(&self, afi: Afi) -> usize {
        match afi {
            Afi::V4 => self.v4.len(),
            Afi::V6 => self.v6.len(),
        }
    }

    fn family(&self, prefix: Prefix) -> &FrozenFamily {
        match prefix {
            Prefix::V4(_) => &self.v4,
            Prefix::V6(_) => &self.v6,
        }
    }

    /// All stored VRPs: IPv4 then IPv6, each family in
    /// `(prefix length, prefix bits, origin, maxLength)` order.
    pub fn iter(&self) -> impl Iterator<Item = &Vrp> {
        self.v4.vrps.iter().chain(self.v6.vrps.iter())
    }

    /// All VRPs whose prefix covers `prefix` (RFC 6811 "covering set"),
    /// shortest prefix first.
    pub fn covering(&self, prefix: Prefix) -> impl Iterator<Item = &Vrp> {
        self.family(prefix).covering(prefix)
    }

    /// All VRPs that *match* `route` (cover it, within maxLength, same
    /// origin).
    pub fn matching<'a>(&'a self, route: &'a RouteOrigin) -> impl Iterator<Item = &'a Vrp> {
        self.covering(route.prefix)
            .filter(move |v| v.matches(route))
    }

    /// All VRPs whose prefix is covered by `prefix` — the subtree under a
    /// query prefix, used by the §6 census.
    pub fn covered_by(&self, prefix: Prefix) -> impl Iterator<Item = &Vrp> {
        self.family(prefix).covered_by(prefix)
    }

    /// Classifies one announcement per RFC 6811.
    pub fn validate(&self, route: &RouteOrigin) -> ValidationState {
        self.family(route.prefix).validate(route)
    }

    /// Validates a whole table sequentially, tallying outcomes.
    /// Equals [`VrpIndex::validate_table`] on the same inputs.
    pub fn validate_table<'a>(
        &self,
        routes: impl IntoIterator<Item = &'a RouteOrigin>,
    ) -> ValidationSummary {
        routes
            .into_iter()
            .map(|route| ValidationSummary::of(self.validate(route)))
            .sum()
    }

    /// Validates a whole table across worker threads, tallying outcomes.
    ///
    /// The reduction sums per-chunk [`ValidationSummary`] counters —
    /// associative integer addition — so the result is **identical** to
    /// [`Self::validate_table`] and to [`VrpIndex::validate_table`]
    /// regardless of thread count (`RAYON_NUM_THREADS` honored).
    pub fn validate_table_par(&self, routes: &[RouteOrigin]) -> ValidationSummary {
        routes
            .par_iter()
            .map(|route| ValidationSummary::of(self.validate(route)))
            .sum()
    }
}

impl FromIterator<Vrp> for FrozenVrpIndex {
    fn from_iter<I: IntoIterator<Item = Vrp>>(iter: I) -> FrozenVrpIndex {
        FrozenVrpIndex::from_vrps(iter)
    }
}

impl From<&VrpIndex> for FrozenVrpIndex {
    fn from(index: &VrpIndex) -> FrozenVrpIndex {
        FrozenVrpIndex::from_vrps(index.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn route(s: &str) -> RouteOrigin {
        s.parse().unwrap()
    }

    fn frozen(vrps: &[&str]) -> FrozenVrpIndex {
        vrps.iter().map(|s| vrp(s)).collect()
    }

    #[test]
    fn section2_states_match_builder() {
        let f = frozen(&["168.122.0.0/16 => AS111"]);
        assert_eq!(
            f.validate(&route("168.122.0.0/16 => AS111")),
            ValidationState::Valid
        );
        assert_eq!(
            f.validate(&route("168.122.225.0/24 => AS111")),
            ValidationState::Invalid
        );
        assert_eq!(
            f.validate(&route("168.122.0.0/24 => AS666")),
            ValidationState::Invalid
        );
        assert_eq!(
            f.validate(&route("8.8.8.0/24 => AS15169")),
            ValidationState::NotFound
        );
    }

    #[test]
    fn maxlength_window_and_origin_table() {
        // Two VRPs for one (prefix, origin): the origin table keeps the
        // wider maxLength.
        let f = frozen(&["10.0.0.0/16-20 => AS1", "10.0.0.0/16-24 => AS1"]);
        assert_eq!(f.len(), 2);
        assert_eq!(
            f.validate(&route("10.0.0.0/24 => AS1")),
            ValidationState::Valid
        );
        assert_eq!(
            f.validate(&route("10.0.0.0/25 => AS1")),
            ValidationState::Invalid
        );
        assert_eq!(
            f.validate(&route("10.0.0.0/24 => AS2")),
            ValidationState::Invalid
        );
    }

    #[test]
    fn as0_covers_but_never_matches() {
        let f = frozen(&["10.0.0.0/8-24 => AS0"]);
        assert_eq!(
            f.validate(&route("10.0.0.0/16 => AS0")),
            ValidationState::Invalid
        );
    }

    #[test]
    fn duplicates_collapse_like_builder() {
        let f: FrozenVrpIndex = [
            vrp("10.0.0.0/16 => AS1"),
            vrp("10.0.0.0/16 => AS1"),
            vrp("10.0.0.0/16 => AS2"),
        ]
        .into_iter()
        .collect();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn covering_and_covered_by() {
        let f = frozen(&[
            "10.0.0.0/8 => AS1",
            "10.0.0.0/16-24 => AS1",
            "10.0.0.0/16 => AS2",
            "10.1.0.0/16 => AS1",
            "11.0.0.0/8 => AS3",
        ]);
        let q: Prefix = "10.0.0.0/24".parse().unwrap();
        let covering: Vec<&Vrp> = f.covering(q).collect();
        assert_eq!(covering.len(), 3);
        // Shortest first.
        assert!(covering
            .windows(2)
            .all(|w| w[0].prefix.len() <= w[1].prefix.len()));
        let sub: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(f.covered_by(sub).count(), 4);
        assert_eq!(f.covered_by("0.0.0.0/0".parse().unwrap()).count(), 5);
    }

    #[test]
    fn families_are_disjoint() {
        let f = frozen(&["10.0.0.0/8 => AS1", "2001:db8::/32 => AS1"]);
        assert_eq!(f.len_for(Afi::V4), 1);
        assert_eq!(f.len_for(Afi::V6), 1);
        assert_eq!(
            f.validate(&route("2001:db8::/48 => AS1")),
            ValidationState::Invalid
        );
        assert_eq!(
            f.validate(&route("2002::/16 => AS1")),
            ValidationState::NotFound
        );
    }

    #[test]
    fn empty_index() {
        let f = FrozenVrpIndex::default();
        assert!(f.is_empty());
        assert_eq!(
            f.validate(&route("10.0.0.0/8 => AS1")),
            ValidationState::NotFound
        );
        assert_eq!(f.covering("10.0.0.0/8".parse().unwrap()).count(), 0);
    }

    #[test]
    fn default_route_node_is_reachable() {
        // len == 0 exercises the mask(0) edge.
        let f = frozen(&["0.0.0.0/0-8 => AS1"]);
        assert_eq!(
            f.validate(&route("10.0.0.0/8 => AS1")),
            ValidationState::Valid
        );
        assert_eq!(f.covered_by("0.0.0.0/0".parse().unwrap()).count(), 1);
    }

    #[test]
    fn table_par_equals_sequential() {
        let f = frozen(&[
            "168.122.0.0/16 => AS111",
            "10.0.0.0/8-12 => AS1",
            "2001:db8::/32-40 => AS2",
        ]);
        let routes: Vec<RouteOrigin> = [
            "168.122.0.0/16 => AS111",
            "168.122.0.0/24 => AS666",
            "10.0.0.0/12 => AS1",
            "10.0.0.0/13 => AS1",
            "2001:db8::/40 => AS2",
            "8.8.8.0/24 => AS15169",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let seq = f.validate_table(routes.iter());
        let par = f.validate_table_par(&routes);
        assert_eq!(seq, par);
        assert_eq!(seq.total(), routes.len());
        assert_eq!(seq.valid, 3);
        assert_eq!(seq.invalid, 2);
        assert_eq!(seq.not_found, 1);
    }

    #[test]
    fn freeze_round_trips_through_builder() {
        let vrps = [
            vrp("10.0.0.0/8 => AS1"),
            vrp("10.0.0.0/16-24 => AS2"),
            vrp("2001:db8::/32 => AS3"),
        ];
        let index: VrpIndex = vrps.into_iter().collect();
        let frozen = index.freeze();
        assert_eq!(frozen.len(), index.len());
        let mut a: Vec<Vrp> = frozen.iter().copied().collect();
        let mut b: Vec<Vrp> = index.iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
