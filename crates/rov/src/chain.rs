//! Epoch-aware incremental revalidation over a frozen snapshot chain.
//!
//! [`RevalidationEngine`](crate::RevalidationEngine) revalidates against a
//! single mutable trie. Under a live churn stream that trie is mutated on
//! every rpki-rtr delta while the bulk paths (whole-table summaries, full
//! cache responses) want the frozen flat arrays — so this module keeps the
//! two in one structure: an immutable [`FrozenVrpIndex`] **base** plus a
//! small mutable **delta overlay**, re-frozen ("compacted") once the
//! overlay outgrows a configurable threshold.
//!
//! # The snapshot-chain contract
//!
//! At every epoch boundary the engine's *logical VRP set* is
//!
//! ```text
//! (base \ removed) ∪ added
//! ```
//!
//! with `removed ⊆ base` and `added ∩ (base \ removed) = ∅`, and the
//! following holds (property-tested in `tests/chain_props.rs` for both
//! address families):
//!
//! * [`SnapshotChainEngine::validate`] equals `VrpIndex::validate` on a
//!   fresh index built from the logical set — for every route, at every
//!   epoch, regardless of where the refreeze boundaries fell;
//! * per-route states tracked through [`SnapshotChainEngine::apply_epoch`]
//!   are identical to rebuilding and revalidating from scratch after each
//!   epoch (the differential harness in `tests/churn_differential.rs`
//!   replays whole rtr sessions against this);
//! * refreezing is *observationally silent*: it changes which structure
//!   answers queries, never the answers. Old [`Arc`] snapshot handles stay
//!   valid forever — each is an immutable world frozen at its epoch.
//!
//! The overlay makes each delta O(affected routes) instead of
//! O(table); the refreeze amortizes overlay scan costs so the chain never
//! degrades into the linear-scan regime the paper's §6 worries about.

use std::collections::BTreeSet;
use std::sync::Arc;

use rpki_roa::{RouteOrigin, Vrp};

use crate::route_table::RouteTable;
use crate::{FrozenVrpIndex, StateChange, ValidationState, VrpIndex};

/// Tuning for the snapshot chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainConfig {
    /// Refreeze the base once the overlay holds this many entries
    /// (additions + masked removals). Small values favour read speed,
    /// large ones favour delta latency.
    pub refreeze_after: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        // A cache refresh delta is typically a few hundred records
        // (§6: caches refresh every few minutes); keep reads fast by
        // compacting after roughly two such refreshes.
        ChainConfig {
            refreeze_after: 512,
        }
    }
}

/// What one epoch did to the tracked routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochReport {
    /// 0-based epoch number (the engine counts epochs it has applied).
    pub epoch: u64,
    /// Announcements actually applied (duplicates skipped).
    pub announced: usize,
    /// Withdrawals actually applied (absent records skipped).
    pub withdrawn: usize,
    /// Every tracked route whose validation state changed, sorted.
    pub changes: Vec<StateChange>,
    /// `true` if this epoch pushed the overlay past the threshold and the
    /// base was re-frozen.
    pub refroze: bool,
}

/// Running totals across all epochs applied to a chain engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnSummary {
    /// Epochs applied.
    pub epochs: u64,
    /// Delta records applied (effective announcements + withdrawals).
    pub deltas: u64,
    /// Route state transitions observed.
    pub state_changes: u64,
    /// Transitions into `Valid`.
    pub to_valid: u64,
    /// Transitions into `Invalid`.
    pub to_invalid: u64,
    /// Transitions into `NotFound`.
    pub to_not_found: u64,
    /// Times the base snapshot was re-frozen.
    pub refreezes: u64,
}

impl ChurnSummary {
    fn absorb(&mut self, report: &EpochReport) {
        self.epochs += 1;
        self.deltas += (report.announced + report.withdrawn) as u64;
        self.state_changes += report.changes.len() as u64;
        for change in &report.changes {
            match change.new {
                ValidationState::Valid => self.to_valid += 1,
                ValidationState::Invalid => self.to_invalid += 1,
                ValidationState::NotFound => self.to_not_found += 1,
            }
        }
        if report.refroze {
            self.refreezes += 1;
        }
    }
}

/// An indexed route table revalidated incrementally against a frozen
/// snapshot chain (base [`FrozenVrpIndex`] + mutable delta overlay).
#[derive(Debug, Clone)]
pub struct SnapshotChainEngine {
    routes: RouteTable,
    /// The frozen bulk of the VRP set.
    base: Arc<FrozenVrpIndex>,
    /// Overlay: VRPs announced since the last freeze (disjoint from the
    /// visible part of `base`). A small trie so covering queries stay
    /// sublinear even before compaction.
    added: VrpIndex,
    /// Overlay: base members masked out by a withdrawal.
    removed: BTreeSet<Vrp>,
    config: ChainConfig,
    epoch: u64,
    summary: ChurnSummary,
    /// Frozen snapshots retired from the base slot, oldest first — the
    /// chain itself. Readers holding an `Arc` keep epochs alive at zero
    /// cost to the engine.
    chain: Vec<Arc<FrozenVrpIndex>>,
}

impl SnapshotChainEngine {
    /// Creates an engine over a route table and initial VRP set, freezing
    /// the set as the chain's first snapshot and validating every route.
    pub fn new(
        routes: impl IntoIterator<Item = RouteOrigin>,
        vrps: impl IntoIterator<Item = Vrp>,
        config: ChainConfig,
    ) -> SnapshotChainEngine {
        let index: VrpIndex = vrps.into_iter().collect();
        let base = Arc::new(index.freeze());
        let mut engine = SnapshotChainEngine {
            routes: RouteTable::default(),
            base,
            added: VrpIndex::new(),
            removed: BTreeSet::new(),
            config,
            epoch: 0,
            summary: ChurnSummary::default(),
            chain: Vec::new(),
        };
        for route in routes {
            engine.insert_route(route);
        }
        engine
    }

    /// Adds a route, returning its state (duplicates re-report theirs).
    pub fn insert_route(&mut self, route: RouteOrigin) -> ValidationState {
        let view = OverlayView {
            base: &self.base,
            added: &self.added,
            removed: &self.removed,
        };
        self.routes.insert_with(route, |r| view.validate(r))
    }

    /// Number of routes tracked.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Number of VRPs in the logical set.
    pub fn vrp_count(&self) -> usize {
        self.base.len() - self.removed.len() + self.added.len()
    }

    /// The logical VRP set, sorted.
    pub fn current_vrps(&self) -> Vec<Vrp> {
        let mut out: Vec<Vrp> = self
            .base
            .iter()
            .filter(|v| !self.removed.contains(v))
            .chain(self.added.iter())
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// The current state of a route, if tracked.
    pub fn state_of(&self, route: &RouteOrigin) -> Option<ValidationState> {
        self.routes.state_of(route)
    }

    /// Every tracked route with its state, sorted by route — the exact
    /// comparison payload the differential harness diffs.
    pub fn states(&self) -> Vec<(RouteOrigin, ValidationState)> {
        self.routes.states_sorted()
    }

    /// Epochs applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Running totals across applied epochs.
    pub fn summary(&self) -> ChurnSummary {
        self.summary
    }

    /// Overlay size (entries since the last freeze).
    pub fn overlay_len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Number of retired snapshots in the chain (the current base is not
    /// counted until a later refreeze retires it).
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// The current base snapshot. The handle stays valid (and frozen at
    /// this epoch's world) across any number of later deltas.
    pub fn base_snapshot(&self) -> Arc<FrozenVrpIndex> {
        Arc::clone(&self.base)
    }

    /// Classifies a route against the logical set (base minus masked
    /// removals, plus overlay additions) per RFC 6811.
    pub fn validate(&self, route: &RouteOrigin) -> ValidationState {
        OverlayView {
            base: &self.base,
            added: &self.added,
            removed: &self.removed,
        }
        .validate(route)
    }

    /// Applies one epoch's delta, revalidating exactly the routes covered
    /// by a changed VRP, then refreezing if the overlay crossed the
    /// threshold. Announcements of present VRPs and withdrawals of absent
    /// ones are skipped (and not counted in the report).
    pub fn apply_epoch(&mut self, announced: &[Vrp], withdrawn: &[Vrp]) -> EpochReport {
        let mut touched: Vec<Vrp> = Vec::new();
        let mut n_announced = 0usize;
        let mut n_withdrawn = 0usize;
        for &vrp in announced {
            if self.announce(vrp) {
                touched.push(vrp);
                n_announced += 1;
            }
        }
        for vrp in withdrawn {
            if self.withdraw(vrp) {
                touched.push(*vrp);
                n_withdrawn += 1;
            }
        }

        // Revalidate the union of affected subtrees once, deduplicated.
        let affected = self.routes.covered_by(&touched);
        let view = OverlayView {
            base: &self.base,
            added: &self.added,
            removed: &self.removed,
        };
        let changes = self.routes.reapply(&affected, |r| view.validate(r));

        let refroze = self.overlay_len() >= self.config.refreeze_after;
        if refroze {
            self.refreeze();
        }
        let report = EpochReport {
            epoch: self.epoch,
            announced: n_announced,
            withdrawn: n_withdrawn,
            changes,
            refroze,
        };
        self.epoch += 1;
        self.summary.absorb(&report);
        report
    }

    /// Announces one VRP into the overlay. Returns `true` if the logical
    /// set changed.
    fn announce(&mut self, vrp: Vrp) -> bool {
        if self.removed.remove(&vrp) {
            return true; // un-mask a base member
        }
        if self.base_contains(&vrp) {
            return false; // already visible via the base
        }
        self.added.insert(vrp)
    }

    /// Withdraws one VRP via the overlay. Returns `true` if present.
    fn withdraw(&mut self, vrp: &Vrp) -> bool {
        if self.added.remove(vrp) {
            return true;
        }
        if self.base_contains(vrp) && !self.removed.contains(vrp) {
            self.removed.insert(*vrp);
            return true;
        }
        false
    }

    fn base_contains(&self, vrp: &Vrp) -> bool {
        self.base.covering(vrp.prefix).any(|b| b == vrp)
    }

    /// Compacts the overlay into a fresh frozen base, retiring the old
    /// base onto the chain. Query results are unchanged by construction.
    pub fn refreeze(&mut self) {
        let index: VrpIndex = self
            .base
            .iter()
            .filter(|v| !self.removed.contains(v))
            .chain(self.added.iter())
            .copied()
            .collect();
        let old = std::mem::replace(&mut self.base, Arc::new(index.freeze()));
        self.chain.push(old);
        self.added = VrpIndex::new();
        self.removed.clear();
    }

    /// Full revalidation of the tracked table from a fresh freeze of the
    /// logical set — the naive per-epoch baseline the churn bench compares
    /// against. Returns the changes found; the resulting states equal the
    /// incremental path's by the snapshot-chain contract.
    pub fn revalidate_all(&mut self) -> Vec<StateChange> {
        let index: VrpIndex = self.current_vrps().into_iter().collect();
        let frozen = index.freeze();
        let routes = self.routes.all_routes();
        self.routes.reapply(&routes, |r| frozen.validate(r))
    }

    /// Whole-table summary against a fresh freeze of the logical set,
    /// fanned out over worker threads.
    pub fn bulk_summary_par(&self) -> crate::ValidationSummary {
        let index: VrpIndex = self.current_vrps().into_iter().collect();
        let routes = self.routes.all_routes();
        index.freeze().validate_table_par(&routes)
    }
}

/// A borrowed read view of the logical set (base minus masked removals,
/// plus overlay additions): the validator both engines' shared route
/// table calls back into.
struct OverlayView<'a> {
    base: &'a FrozenVrpIndex,
    added: &'a VrpIndex,
    removed: &'a BTreeSet<Vrp>,
}

impl OverlayView<'_> {
    /// Classifies a route against the logical set per RFC 6811.
    fn validate(&self, route: &RouteOrigin) -> ValidationState {
        let mut covered = false;
        for vrp in self.added.covering(route.prefix) {
            if vrp.matches(route) {
                return ValidationState::Valid;
            }
            covered = true;
        }
        for vrp in self.base.covering(route.prefix) {
            if self.removed.contains(vrp) {
                continue;
            }
            if vrp.matches(route) {
                return ValidationState::Valid;
            }
            covered = true;
        }
        if covered {
            ValidationState::Invalid
        } else {
            ValidationState::NotFound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str) -> RouteOrigin {
        s.parse().unwrap()
    }

    fn vrp(s: &str) -> Vrp {
        s.parse().unwrap()
    }

    fn engine(refreeze_after: usize) -> SnapshotChainEngine {
        SnapshotChainEngine::new(
            [
                route("168.122.0.0/16 => AS111"),
                route("168.122.225.0/24 => AS111"),
                route("10.0.0.0/8 => AS1"),
                route("2001:db8::/32 => AS2"),
            ],
            [vrp("2001:db8::/32 => AS2")],
            ChainConfig { refreeze_after },
        )
    }

    #[test]
    fn initial_states_from_frozen_base() {
        let e = engine(1024);
        assert_eq!(e.route_count(), 4);
        assert_eq!(e.vrp_count(), 1);
        assert_eq!(
            e.state_of(&route("2001:db8::/32 => AS2")),
            Some(ValidationState::Valid)
        );
        assert_eq!(
            e.state_of(&route("10.0.0.0/8 => AS1")),
            Some(ValidationState::NotFound)
        );
    }

    #[test]
    fn epoch_delta_flips_covered_routes_only() {
        let mut e = engine(1024);
        let report = e.apply_epoch(&[vrp("168.122.0.0/16 => AS111")], &[]);
        assert_eq!(report.epoch, 0);
        assert_eq!(report.announced, 1);
        assert_eq!(report.changes.len(), 2); // the /16 and the /24
        assert!(!report.refroze);
        assert_eq!(
            e.state_of(&route("168.122.0.0/16 => AS111")),
            Some(ValidationState::Valid)
        );
        assert_eq!(
            e.state_of(&route("168.122.225.0/24 => AS111")),
            Some(ValidationState::Invalid)
        );
        assert_eq!(
            e.state_of(&route("10.0.0.0/8 => AS1")),
            Some(ValidationState::NotFound)
        );
    }

    #[test]
    fn withdrawal_of_base_member_masks_it() {
        let mut e = engine(1024);
        let report = e.apply_epoch(&[], &[vrp("2001:db8::/32 => AS2")]);
        assert_eq!(report.withdrawn, 1);
        assert_eq!(e.vrp_count(), 0);
        assert_eq!(
            e.state_of(&route("2001:db8::/32 => AS2")),
            Some(ValidationState::NotFound)
        );
        // Re-announcing un-masks instead of duplicating.
        let report = e.apply_epoch(&[vrp("2001:db8::/32 => AS2")], &[]);
        assert_eq!(report.announced, 1);
        assert_eq!(e.vrp_count(), 1);
        assert_eq!(e.overlay_len(), 0, "mask + unmask nets to empty overlay");
    }

    #[test]
    fn duplicate_and_absent_deltas_skipped() {
        let mut e = engine(1024);
        let report = e.apply_epoch(
            &[vrp("2001:db8::/32 => AS2")], // already in base
            &[vrp("99.0.0.0/8 => AS9")],    // never present
        );
        assert_eq!((report.announced, report.withdrawn), (0, 0));
        assert!(report.changes.is_empty());
    }

    #[test]
    fn refreeze_fires_on_threshold_and_preserves_answers() {
        let mut e = engine(2);
        let r1 = e.apply_epoch(&[vrp("168.122.0.0/16 => AS111")], &[]);
        assert!(!r1.refroze);
        let r2 = e.apply_epoch(&[vrp("10.0.0.0/8-16 => AS1")], &[]);
        assert!(r2.refroze, "overlay hit 2 entries");
        assert_eq!(e.overlay_len(), 0);
        assert_eq!(e.chain_len(), 1);
        assert_eq!(e.vrp_count(), 3);
        // States survive the compaction bit for bit.
        assert_eq!(
            e.state_of(&route("10.0.0.0/8 => AS1")),
            Some(ValidationState::Valid)
        );
        assert_eq!(
            e.state_of(&route("168.122.225.0/24 => AS111")),
            Some(ValidationState::Invalid)
        );
        assert_eq!(e.summary().refreezes, 1);
    }

    #[test]
    fn retired_snapshots_stay_frozen() {
        let mut e = engine(1);
        let before = e.base_snapshot();
        assert_eq!(before.len(), 1);
        e.apply_epoch(&[vrp("168.122.0.0/16 => AS111")], &[]);
        // Refroze: the new base has both VRPs, the old handle still one.
        assert_eq!(e.base_snapshot().len(), 2);
        assert_eq!(before.len(), 1);
    }

    #[test]
    fn incremental_equals_fresh_rebuild() {
        let mut e = engine(2); // exercise refreezes mid-stream
        let epochs: Vec<(Vec<Vrp>, Vec<Vrp>)> = vec![
            (vec![vrp("168.122.0.0/16 => AS111")], vec![]),
            (
                vec![vrp("168.122.0.0/16-24 => AS111")],
                vec![vrp("2001:db8::/32 => AS2")],
            ),
            (vec![vrp("10.0.0.0/8 => AS7")], vec![]),
            (vec![], vec![vrp("168.122.0.0/16 => AS111")]),
        ];
        for (announced, withdrawn) in epochs {
            e.apply_epoch(&announced, &withdrawn);
            let fresh: VrpIndex = e.current_vrps().into_iter().collect();
            for (route, state) in e.states() {
                assert_eq!(state, fresh.validate(&route), "{route}");
            }
        }
        assert_eq!(e.epoch(), 4);
        assert_eq!(e.summary().epochs, 4);
    }

    #[test]
    fn revalidate_all_finds_nothing_after_incremental() {
        let mut e = engine(1024);
        e.apply_epoch(
            &[vrp("168.122.0.0/16 => AS111"), vrp("10.0.0.0/8-16 => AS1")],
            &[],
        );
        assert!(e.revalidate_all().is_empty(), "incremental path was exact");
    }

    #[test]
    fn bulk_summary_matches_states() {
        let mut e = engine(1024);
        e.apply_epoch(&[vrp("168.122.0.0/16 => AS111")], &[]);
        let summary = e.bulk_summary_par();
        let states = e.states();
        assert_eq!(summary.total(), states.len());
        assert_eq!(
            summary.valid,
            states
                .iter()
                .filter(|(_, s)| *s == ValidationState::Valid)
                .count()
        );
    }

    #[test]
    fn summary_accumulates_transition_kinds() {
        let mut e = engine(1024);
        e.apply_epoch(&[vrp("168.122.0.0/16 => AS111")], &[]);
        e.apply_epoch(&[], &[vrp("168.122.0.0/16 => AS111")]);
        let s = e.summary();
        assert_eq!(s.epochs, 2);
        assert_eq!(s.deltas, 2);
        assert_eq!(s.to_valid, 1);
        assert_eq!(s.to_invalid, 1);
        assert_eq!(s.to_not_found, 2);
        assert_eq!(s.state_changes, 4);
    }
}
