//! Property tests: the trie-backed validator must agree with a brute-force
//! linear-scan reference implementation on arbitrary VRP sets and routes.

use proptest::prelude::*;
use rpki_prefix::{Prefix, Prefix4, Prefix6};
use rpki_roa::{Asn, RouteOrigin, Vrp};
use rpki_rov::{FrozenVrpIndex, ValidationState, VrpIndex};

/// Small universes so covering/matching cases actually collide.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..16, 0u8..=6).prop_map(|(b, l)| Prefix::V4(Prefix4::new_truncated(b << 26, l)))
}

fn arb_vrp() -> impl Strategy<Value = Vrp> {
    (arb_prefix(), 0u8..=4, 1u32..5)
        .prop_map(|(p, extra, asn)| Vrp::new(p, p.len().saturating_add(extra), Asn(asn)))
}

fn arb_route() -> impl Strategy<Value = RouteOrigin> {
    (arb_prefix(), 1u32..5).prop_map(|(p, asn)| RouteOrigin::new(p, Asn(asn)))
}

fn reference_validate(vrps: &[Vrp], route: &RouteOrigin) -> ValidationState {
    if vrps.iter().any(|v| v.matches(route)) {
        ValidationState::Valid
    } else if vrps.iter().any(|v| v.covers(route)) {
        ValidationState::Invalid
    } else {
        ValidationState::NotFound
    }
}

proptest! {
    #[test]
    fn index_agrees_with_linear_scan(
        vrps in prop::collection::vec(arb_vrp(), 0..60),
        routes in prop::collection::vec(arb_route(), 1..40),
    ) {
        let index: VrpIndex = vrps.iter().copied().collect();
        for route in &routes {
            prop_assert_eq!(
                index.validate(route),
                reference_validate(&vrps, route),
                "route {} against {} vrps", route, vrps.len()
            );
        }
    }

    #[test]
    fn covering_matches_scan(
        vrps in prop::collection::vec(arb_vrp(), 0..60),
        route in arb_route(),
    ) {
        let index: VrpIndex = vrps.iter().copied().collect();
        let mut got: Vec<Vrp> = index.covering(route.prefix).copied().collect();
        let mut expect: Vec<Vrp> = vrps.iter().filter(|v| v.covers(&route)).copied().collect();
        // Dedup the reference the way the index does.
        expect.sort_unstable();
        expect.dedup();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn insert_remove_round_trip(
        vrps in prop::collection::vec(arb_vrp(), 0..40),
        extra in prop::collection::vec(arb_vrp(), 0..10),
    ) {
        let mut index: VrpIndex = vrps.iter().copied().collect();
        let base_len = index.len();
        let mut fresh: Vec<Vrp> = extra.into_iter().filter(|v| !index.contains(v)).collect();
        fresh.sort_unstable();
        fresh.dedup();
        for v in &fresh {
            prop_assert!(index.insert(*v));
        }
        prop_assert_eq!(index.len(), base_len + fresh.len());
        for v in &fresh {
            prop_assert!(index.remove(v));
        }
        prop_assert_eq!(index.len(), base_len);
        for v in &vrps {
            prop_assert!(index.contains(v));
        }
    }

    #[test]
    fn summary_totals_consistent(
        vrps in prop::collection::vec(arb_vrp(), 0..40),
        routes in prop::collection::vec(arb_route(), 0..60),
    ) {
        let index: VrpIndex = vrps.iter().copied().collect();
        let summary = index.validate_table(routes.iter());
        prop_assert_eq!(summary.total(), routes.len());
        let valid_count = routes
            .iter()
            .filter(|r| reference_validate(&vrps, r) == ValidationState::Valid)
            .count();
        prop_assert_eq!(summary.valid, valid_count);
    }
}

mod frozen_props {
    //! The snapshot-equivalence contract: `FrozenVrpIndex` must agree
    //! with the mutable `VrpIndex` on every read query, for both
    //! address families.

    use super::*;

    /// Small mixed-family universes so covering/matching collide often.
    fn arb_prefix_mixed() -> impl Strategy<Value = Prefix> {
        prop_oneof![
            (0u32..16, 0u8..=6).prop_map(|(b, l)| Prefix::V4(Prefix4::new_truncated(b << 26, l))),
            (0u128..16, 0u8..=6).prop_map(|(b, l)| Prefix::V6(Prefix6::new_truncated(b << 122, l))),
        ]
    }

    fn arb_vrp_mixed() -> impl Strategy<Value = Vrp> {
        (arb_prefix_mixed(), 0u8..=4, 0u32..5)
            .prop_map(|(p, extra, asn)| Vrp::new(p, p.len().saturating_add(extra), Asn(asn)))
    }

    fn arb_route_mixed() -> impl Strategy<Value = RouteOrigin> {
        (arb_prefix_mixed(), 0u32..5).prop_map(|(p, asn)| RouteOrigin::new(p, Asn(asn)))
    }

    fn sorted(vrps: Vec<Vrp>) -> Vec<Vrp> {
        let mut v = vrps;
        v.sort_unstable();
        v
    }

    proptest! {
        #[test]
        fn frozen_agrees_on_validate(
            vrps in prop::collection::vec(arb_vrp_mixed(), 0..60),
            routes in prop::collection::vec(arb_route_mixed(), 1..40),
        ) {
            let index: VrpIndex = vrps.iter().copied().collect();
            let frozen = index.freeze();
            for route in &routes {
                prop_assert_eq!(
                    frozen.validate(route),
                    index.validate(route),
                    "route {} against {} vrps", route, vrps.len()
                );
            }
        }

        #[test]
        fn frozen_agrees_on_covering_and_covered_by(
            vrps in prop::collection::vec(arb_vrp_mixed(), 0..60),
            query in arb_prefix_mixed(),
        ) {
            let index: VrpIndex = vrps.iter().copied().collect();
            let frozen = index.freeze();
            prop_assert_eq!(
                sorted(frozen.covering(query).copied().collect()),
                sorted(index.covering(query).copied().collect())
            );
            prop_assert_eq!(
                sorted(frozen.covered_by(query).copied().collect()),
                sorted(index.covered_by(query).copied().collect())
            );
            // Covering yields shortest-prefix-first, like the builder.
            let lens: Vec<u8> =
                frozen.covering(query).map(|v| v.prefix.len()).collect();
            prop_assert!(lens.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn frozen_preserves_set_and_summaries(
            vrps in prop::collection::vec(arb_vrp_mixed(), 0..60),
            routes in prop::collection::vec(arb_route_mixed(), 0..60),
        ) {
            let index: VrpIndex = vrps.iter().copied().collect();
            let frozen = index.freeze();
            prop_assert_eq!(frozen.len(), index.len());
            prop_assert_eq!(
                sorted(frozen.iter().copied().collect()),
                sorted(index.iter().copied().collect())
            );
            // Direct compilation from the raw list equals freezing the
            // builder.
            let direct = FrozenVrpIndex::from_vrps(vrps.iter().copied());
            prop_assert_eq!(direct.len(), frozen.len());
            // Sequential and parallel table validation all agree with
            // the builder.
            let expect = index.validate_table(routes.iter());
            prop_assert_eq!(frozen.validate_table(routes.iter()), expect);
            prop_assert_eq!(frozen.validate_table_par(&routes), expect);
            prop_assert_eq!(expect.total(), routes.len());
        }
    }
}

mod delta_props {
    use super::*;
    use rpki_rov::RevalidationEngine;

    proptest! {
        /// Incremental revalidation must agree with validating from
        /// scratch after any interleaving of VRP announcements and
        /// withdrawals.
        #[test]
        fn incremental_equals_from_scratch(
            routes in prop::collection::btree_set(arb_route(), 1..30),
            deltas in prop::collection::vec((arb_vrp(), any::<bool>()), 0..40),
        ) {
            let mut engine = RevalidationEngine::new(routes.iter().copied(), []);
            let mut applied: Vec<Vrp> = Vec::new();
            for (vrp, announce) in deltas {
                if announce {
                    engine.announce_vrp(vrp);
                    if !applied.contains(&vrp) {
                        applied.push(vrp);
                    }
                } else {
                    engine.withdraw_vrp(&vrp);
                    applied.retain(|v| *v != vrp);
                }
                // From-scratch reference.
                let reference: VrpIndex = applied.iter().copied().collect();
                for route in &routes {
                    prop_assert_eq!(
                        engine.state_of(route),
                        Some(reference.validate(route)),
                        "route {} after {} deltas", route, applied.len()
                    );
                }
            }
        }

        /// Reported state changes are exactly the differences.
        #[test]
        fn changes_are_exact(
            routes in prop::collection::btree_set(arb_route(), 1..25),
            vrp in arb_vrp(),
        ) {
            let mut engine = RevalidationEngine::new(routes.iter().copied(), []);
            let before: Vec<_> = routes.iter().map(|r| engine.state_of(r).unwrap()).collect();
            let changes = engine.announce_vrp(vrp);
            for (route, old) in routes.iter().zip(before) {
                let new = engine.state_of(route).unwrap();
                let reported = changes.iter().find(|c| c.route == *route);
                if old == new {
                    prop_assert!(reported.is_none());
                } else {
                    let c = reported.expect("change must be reported");
                    prop_assert_eq!(c.old, old);
                    prop_assert_eq!(c.new, new);
                }
            }
        }
    }
}
