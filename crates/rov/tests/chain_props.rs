//! Differential property tests for the churn path: for arbitrary delta
//! timelines over mixed IPv4 + IPv6 sets, the states accumulated by the
//! incremental engines (`RevalidationEngine::apply_delta` and the
//! snapshot-chain `SnapshotChainEngine::apply_epoch`, across every
//! refreeze boundary) must be identical to rebuilding a fresh `VrpIndex`
//! and validating every route from scratch at every epoch.

use proptest::prelude::*;
use rpki_prefix::{Prefix, Prefix4, Prefix6};
use rpki_roa::{Asn, RouteOrigin, Vrp};
use rpki_rov::{ChainConfig, RevalidationEngine, SnapshotChainEngine, ValidationState, VrpIndex};

/// Small universes in both families so covering/matching cases collide.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        (0u32..16, 0u8..=6).prop_map(|(b, l)| Prefix::V4(Prefix4::new_truncated(b << 26, l))),
        (0u128..16, 0u8..=6).prop_map(|(b, l)| Prefix::V6(Prefix6::new_truncated(b << 122, l))),
    ]
}

fn arb_vrp() -> impl Strategy<Value = Vrp> {
    (arb_prefix(), 0u8..=4, 1u32..5)
        .prop_map(|(p, extra, asn)| Vrp::new(p, p.len().saturating_add(extra), Asn(asn)))
}

fn arb_route() -> impl Strategy<Value = RouteOrigin> {
    (arb_prefix(), 1u32..5).prop_map(|(p, asn)| RouteOrigin::new(p, Asn(asn)))
}

/// One epoch's worth of raw deltas. Announce/withdraw lists may overlap
/// the current set arbitrarily (duplicates, absent withdrawals) — the
/// engines must treat those as no-ops, exactly like a fresh rebuild does.
fn arb_epoch() -> impl Strategy<Value = (Vec<Vrp>, Vec<Vrp>)> {
    (
        prop::collection::vec(arb_vrp(), 0..8),
        prop::collection::vec(arb_vrp(), 0..8),
    )
}

fn reference_states(vrps: &[Vrp], routes: &[RouteOrigin]) -> Vec<(RouteOrigin, ValidationState)> {
    let index: VrpIndex = vrps.iter().copied().collect();
    let mut out: Vec<(RouteOrigin, ValidationState)> =
        routes.iter().map(|r| (*r, index.validate(r))).collect();
    out.sort_unstable_by_key(|(r, _)| *r);
    out.dedup();
    out
}

/// Applies one epoch to the model set with the same net semantics the
/// engines implement: withdrawals of VRPs also announced in the epoch are
/// applied after the announcements (set semantics; order-free because
/// clean epochs never overlap, and dirty ones resolve to "last writer",
/// which here is the same as apply-announce-then-withdraw).
fn model_apply(set: &mut std::collections::BTreeSet<Vrp>, announced: &[Vrp], withdrawn: &[Vrp]) {
    for v in announced {
        set.insert(*v);
    }
    for v in withdrawn {
        set.remove(v);
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(64))]

    #[test]
    fn chain_engine_matches_fresh_rebuild_every_epoch(
        initial in prop::collection::vec(arb_vrp(), 0..30),
        routes in prop::collection::vec(arb_route(), 1..40),
        timeline in prop::collection::vec(arb_epoch(), 1..12),
        refreeze_after in 1usize..12,
    ) {
        let mut model: std::collections::BTreeSet<Vrp> =
            initial.iter().copied().collect();
        let mut engine = SnapshotChainEngine::new(
            routes.iter().copied(),
            initial.iter().copied(),
            ChainConfig { refreeze_after },
        );
        for (epoch, (announced, withdrawn)) in timeline.iter().enumerate() {
            engine.apply_epoch(announced, withdrawn);
            model_apply(&mut model, announced, withdrawn);

            // The engine's logical set equals the model set ...
            let current: Vec<Vrp> = model.iter().copied().collect();
            prop_assert_eq!(
                engine.current_vrps(),
                current.clone(),
                "epoch {}: logical set diverged",
                epoch
            );
            // ... and every tracked state equals a from-scratch rebuild.
            prop_assert_eq!(
                engine.states(),
                reference_states(&current, &routes),
                "epoch {} (refreeze_after {})",
                epoch,
                refreeze_after
            );
        }
    }

    #[test]
    fn apply_delta_matches_fresh_rebuild_every_epoch(
        initial in prop::collection::vec(arb_vrp(), 0..30),
        routes in prop::collection::vec(arb_route(), 1..40),
        timeline in prop::collection::vec(arb_epoch(), 1..12),
    ) {
        let mut model: std::collections::BTreeSet<Vrp> =
            initial.iter().copied().collect();
        let mut engine = RevalidationEngine::new(
            routes.iter().copied(),
            initial.iter().copied(),
        );
        for (epoch, (announced, withdrawn)) in timeline.iter().enumerate() {
            engine.apply_delta(announced, withdrawn);
            model_apply(&mut model, announced, withdrawn);
            let current: Vec<Vrp> = model.iter().copied().collect();
            let reference = reference_states(&current, &routes);
            for (route, expect) in &reference {
                prop_assert_eq!(
                    engine.state_of(route),
                    Some(*expect),
                    "epoch {}: {}",
                    epoch,
                    route
                );
            }
        }
    }

    #[test]
    fn chain_and_delta_engines_agree(
        initial in prop::collection::vec(arb_vrp(), 0..25),
        routes in prop::collection::vec(arb_route(), 1..30),
        timeline in prop::collection::vec(arb_epoch(), 1..10),
    ) {
        let mut chain = SnapshotChainEngine::new(
            routes.iter().copied(),
            initial.iter().copied(),
            ChainConfig { refreeze_after: 4 },
        );
        let mut flat = RevalidationEngine::new(
            routes.iter().copied(),
            initial.iter().copied(),
        );
        for (announced, withdrawn) in &timeline {
            let chain_changes = chain.apply_epoch(announced, withdrawn).changes;
            let flat_changes = flat.apply_delta(announced, withdrawn);
            // Same transitions, reported identically (both sorted by route).
            prop_assert_eq!(chain_changes, flat_changes);
        }
    }
}
