//! Synthetic RPKI + BGP datasets calibrated to the paper's June 2017
//! measurements.
//!
//! The paper measures real snapshots (RPKI publication points + Route
//! Views, weekly from 2017-04-13 to 2017-06-01) that are not redistributable
//! and no longer reconstructible. Every analysis in the paper, however,
//! consumes only the *joint distribution* of `(prefix, maxLength, ASN)`
//! tuples and `(prefix, origin AS)` announcements — so this crate generates
//! worlds with that joint distribution pinned to the paper's published
//! aggregates, and the entire pipeline (census, minimalization,
//! `compress_roas`, bounds, Table 1, Figure 3) runs on them unchanged.
//!
//! # Calibration (scale = 1.0, the 6/1/2017 snapshot)
//!
//! Adopter (RPKI-covered) allocations by behaviour class, chosen so that
//! every §6/§7 headline lands on the paper's number:
//!
//! | class | count | ROA shape | announces | notes |
//! |-------|-------|-----------|-----------|-------|
//! | exact | 25,000 | `p` | `p` | minimal, safe |
//! | stale | 818 | `p` | nothing | dropped by minimalization |
//! | maxlen-plain | 1,389 | `p-(len+k)` | `p` | **vulnerable** |
//! | triple-stale | 2,490 | `{p, p0, p1}` | `p` | compresses 3→1 |
//! | maxlen-safe | 741 | `p-(len+1)` | `p, p0, p1` | the minimal 16% |
//! | triple-live | 677 | `{p, p0, p1}` | `p, p0, p1` | compresses 3→1 |
//! | maxlen-deep | 300 | `p-(len+k), k≥2` | `p, p0, p1` | **vulnerable** |
//! | maxlen-partial | 200 | `p-(len+1)` | `p, p0` | **vulnerable** |
//! | scattered | 2,000 | `p-24` | Σ 18,312 scattered /24s, not `p` | **vulnerable** |
//!
//! Non-adopter allocations: 662,076 plain, 15,750 full depth-1
//! de-aggregations, 2,000 depth-2, 437 partial. Totals:
//!
//! * tuples 39,949; maxLength-using 4,630 (11.6%); vulnerable 3,889 (84.0%)
//! * minimalized pairs 52,745; compressed 33,615 / 49,309
//! * BGP pairs 776,945; full-deployment compressed 730,009; bound 729,372
//!
//! (each within ±1 of Table 1, the residue being integer rounding the
//! paper's own pipeline also exhibits).
//!
//! Weekly snapshots thin the world with per-entity activation thresholds:
//! the RPKI side grows ~6% over the eight weeks and the BGP side ~1%,
//! matching the slopes of Figure 3a/3b.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod config;
pub mod io;
pub mod snapshot;
pub mod space;
pub mod world;

pub use churn::{ChurnConfig, ChurnEpoch, ChurnGenerator, ChurnProfile, ChurnTimeline};
pub use config::{CategoryCounts, GeneratorConfig, WEEK_LABELS};
pub use snapshot::DatasetSnapshot;
pub use world::{Category, World};
