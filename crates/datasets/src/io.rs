//! Plain-text snapshot serialization.
//!
//! We deliberately avoid a binary or JSON dependency: snapshots are big
//! but dead simple, and a line-oriented format keeps them diffable and
//! greppable (the paper's own artifacts were CSV-ish text). Layout:
//!
//! ```text
//! # maxlength-dataset v1
//! label 6/1
//! roa AS31283 87.254.32.0/19-20 87.254.32.0/21
//! bgp 87.254.32.0/19 AS31283
//! ```
//!
//! One `roa` line per ROA object (ASN then its prefix entries, maxLength
//! suffixed after a dash); one `bgp` line per announced pair.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use rpki_prefix::Prefix;
use rpki_roa::{Asn, Roa, RoaPrefix, RouteOrigin};

use crate::snapshot::DatasetSnapshot;

const HEADER: &str = "# maxlength-dataset v1";

/// Errors loading a snapshot file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected header.
    BadHeader,
    /// A line could not be parsed (1-based line number and content).
    BadLine(usize, String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::BadHeader => write!(f, "missing dataset header"),
            LoadError::BadLine(n, l) => write!(f, "bad line {n}: {l:?}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Serializes a snapshot to its text form.
pub fn to_string(snap: &DatasetSnapshot) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    let _ = writeln!(out, "label {}", snap.label);
    for roa in &snap.roas {
        let _ = write!(out, "roa {}", roa.asn());
        for entry in roa.prefixes() {
            match entry.max_len {
                Some(m) => {
                    let _ = write!(out, " {}-{}", entry.prefix, m);
                }
                None => {
                    let _ = write!(out, " {}", entry.prefix);
                }
            }
        }
        out.push('\n');
    }
    for route in &snap.routes {
        let _ = writeln!(out, "bgp {} {}", route.prefix, route.origin);
    }
    out
}

/// Parses a snapshot from its text form.
pub fn from_str(text: &str) -> Result<DatasetSnapshot, LoadError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == HEADER => {}
        _ => return Err(LoadError::BadHeader),
    }
    let mut label = String::new();
    let mut roas = Vec::new();
    let mut routes = Vec::new();
    for (idx, line) in lines {
        let n = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || LoadError::BadLine(n, line.to_string());
        let mut fields = line.split_whitespace();
        match fields.next() {
            Some("label") => {
                label = fields.collect::<Vec<_>>().join(" ");
            }
            Some("roa") => {
                let asn: Asn = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let mut entries = Vec::new();
                for tok in fields {
                    entries.push(parse_entry(tok).ok_or_else(bad)?);
                }
                roas.push(Roa::new(asn, entries).map_err(|_| bad())?);
            }
            Some("bgp") => {
                let prefix: Prefix = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let asn: Asn = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                if fields.next().is_some() {
                    return Err(bad());
                }
                routes.push(RouteOrigin::new(prefix, asn));
            }
            _ => return Err(bad()),
        }
    }
    Ok(DatasetSnapshot {
        label,
        roas,
        routes,
    })
}

/// `prefix` or `prefix-maxlen`, with the dash searched after the slash so
/// IPv6 colons are untouched.
fn parse_entry(tok: &str) -> Option<RoaPrefix> {
    let slash = tok.rfind('/')?;
    match tok[slash..].find('-') {
        Some(rel) => {
            let at = slash + rel;
            let prefix: Prefix = tok[..at].parse().ok()?;
            let max_len: u8 = tok[at + 1..].parse().ok()?;
            let entry = RoaPrefix::with_max_len(prefix, max_len);
            entry.is_well_formed().then_some(entry)
        }
        None => Some(RoaPrefix::exact(tok.parse().ok()?)),
    }
}

/// Writes a snapshot to a file.
pub fn save(snap: &DatasetSnapshot, path: &Path) -> io::Result<()> {
    fs::write(path, to_string(snap))
}

/// Reads a snapshot from a file.
pub fn load(path: &Path) -> Result<DatasetSnapshot, LoadError> {
    from_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneratorConfig, World};

    #[test]
    fn round_trip_generated_snapshot() {
        let world = World::generate(GeneratorConfig {
            scale: 0.002,
            ..GeneratorConfig::default()
        });
        let snap = world.snapshot(7);
        let text = to_string(&snap);
        let back = from_str(&text).unwrap();
        assert_eq!(back.label, snap.label);
        assert_eq!(back.roas, snap.roas);
        assert_eq!(back.routes, snap.routes);
    }

    #[test]
    fn round_trip_via_file() {
        let world = World::generate(GeneratorConfig {
            scale: 0.001,
            ..GeneratorConfig::default()
        });
        let snap = world.snapshot(0);
        let path =
            std::env::temp_dir().join(format!("maxlength-dataset-{}.txt", std::process::id()));
        save(&snap, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            from_str("bgp 1.0.0.0/8 AS1"),
            Err(LoadError::BadHeader)
        ));
        assert!(matches!(from_str(""), Err(LoadError::BadHeader)));
    }

    #[test]
    fn rejects_malformed_lines() {
        let base = "# maxlength-dataset v1\n";
        for bad in [
            "roa notanasn 10.0.0.0/8",
            "roa AS1 10.0.0.0/8-4", // maxLength below prefix length
            "roa AS1",              // empty prefix set
            "bgp 10.0.0.0/8",
            "bgp 10.0.0.0/8 AS1 extra",
            "unknown directive",
        ] {
            let text = format!("{base}{bad}\n");
            assert!(
                matches!(from_str(&text), Err(LoadError::BadLine(2, _))),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# maxlength-dataset v1\n\n# a comment\nlabel test\nbgp 10.0.0.0/8 AS1\n";
        let snap = from_str(text).unwrap();
        assert_eq!(snap.label, "test");
        assert_eq!(snap.routes.len(), 1);
        assert!(snap.roas.is_empty());
    }

    #[test]
    fn v6_entries_round_trip() {
        let text = "# maxlength-dataset v1\nlabel t\nroa AS65000 2001:db8::/32-48 2001:db9::/32\nbgp 2001:db8::/32 AS65000\n";
        let snap = from_str(text).unwrap();
        let back = from_str(&to_string(&snap)).unwrap();
        assert_eq!(snap, back);
        assert_eq!(snap.roas[0].prefixes()[0].max_len, Some(48));
    }
}
