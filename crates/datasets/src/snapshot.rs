//! A dated dataset snapshot: the generated analogue of "all ROAs from the
//! RPKI publication points + the BGP tables of all Route Views collectors"
//! for one date (§6).

use rpki_roa::{Roa, RouteOrigin, Vrp};

/// One weekly snapshot of the generated world.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSnapshot {
    /// Display label (`4/13` … `6/1`).
    pub label: String,
    /// The validated ROA objects.
    pub roas: Vec<Roa>,
    /// The global BGP table as `(prefix, origin)` pairs.
    pub routes: Vec<RouteOrigin>,
}

impl DatasetSnapshot {
    /// Expands the ROAs into their VRP (PDU) list — what `scan_roas`
    /// produces on the local cache (§7.1).
    pub fn vrps(&self) -> Vec<Vrp> {
        self.roas.iter().flat_map(|r| r.vrps()).collect()
    }

    /// Number of ROA objects (the paper's 7,499 on 6/1).
    pub fn roa_count(&self) -> usize {
        self.roas.len()
    }

    /// Number of announced pairs (the paper's 776,945 on 6/1).
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpki_roa::{Asn, RoaPrefix};

    #[test]
    fn vrps_flatten_roas() {
        let roa1 = Roa::new(
            Asn(1),
            vec![
                RoaPrefix::exact("10.0.0.0/8".parse().unwrap()),
                RoaPrefix::with_max_len("11.0.0.0/8".parse().unwrap(), 9),
            ],
        )
        .unwrap();
        let roa2 = Roa::new(
            Asn(2),
            vec![RoaPrefix::exact("12.0.0.0/8".parse().unwrap())],
        )
        .unwrap();
        let snap = DatasetSnapshot {
            label: "6/1".into(),
            roas: vec![roa1, roa2],
            routes: vec!["10.0.0.0/8 => AS1".parse().unwrap()],
        };
        assert_eq!(snap.vrps().len(), 3);
        assert_eq!(snap.roa_count(), 2);
        assert_eq!(snap.route_count(), 1);
    }
}
