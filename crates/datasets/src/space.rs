//! Disjoint address-space allocation for generated worlds.
//!
//! Every allocation the generator hands out must be disjoint from every
//! other (nesting only ever happens *within* an allocation, by design), so
//! the calibrated de-aggregation counts are exactly the same-origin
//! ancestor relations the analyses will find. A bump allocator with
//! power-of-two alignment gives that with zero bookkeeping.

use rpki_prefix::{Prefix, Prefix4, Prefix6};

/// Carves disjoint prefixes out of the IPv4 and IPv6 spaces.
#[derive(Debug, Clone)]
pub struct SpaceAllocator {
    /// Next free IPv4 address (starts past 0.0.0.0/8).
    cursor_v4: u64,
    /// Next free IPv6 address within the global-unicast 2000::/3.
    cursor_v6: u128,
}

impl Default for SpaceAllocator {
    fn default() -> Self {
        SpaceAllocator::new()
    }
}

impl SpaceAllocator {
    /// A fresh allocator starting at 1.0.0.0 / 2001::.
    pub fn new() -> SpaceAllocator {
        SpaceAllocator {
            cursor_v4: 0x0100_0000,
            cursor_v6: 0x2001_0000_0000_0000_0000_0000_0000_0000,
        }
    }

    /// Allocates the next free IPv4 prefix of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if the IPv4 space is exhausted — at paper scale the
    /// generator uses well under half of it.
    pub fn alloc_v4(&mut self, len: u8) -> Prefix4 {
        assert!((1..=32).contains(&len), "allocation length {len}");
        let size = 1u64 << (32 - len as u32);
        let base = self.cursor_v4.div_ceil(size) * size;
        assert!(base + size <= 1 << 32, "IPv4 space exhausted");
        self.cursor_v4 = base + size;
        Prefix4::new(base as u32, len).expect("aligned by construction")
    }

    /// Allocates the next free IPv6 prefix of length `len`.
    pub fn alloc_v6(&mut self, len: u8) -> Prefix6 {
        assert!((4..=128).contains(&len), "allocation length {len}");
        let size = 1u128 << (128 - len as u32);
        let base = self.cursor_v6.div_ceil(size) * size;
        self.cursor_v6 = base + size;
        Prefix6::new(base, len).expect("aligned by construction")
    }

    /// Family-dispatching allocation.
    pub fn alloc(&mut self, v6: bool, len: u8) -> Prefix {
        if v6 {
            Prefix::V6(self.alloc_v6(len))
        } else {
            Prefix::V4(self.alloc_v4(len))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_allocations_disjoint_and_aligned() {
        let mut a = SpaceAllocator::new();
        let mut got: Vec<Prefix4> = Vec::new();
        for len in [24, 16, 24, 20, 22, 16, 24, 8] {
            got.push(a.alloc_v4(len));
        }
        for (i, p) in got.iter().enumerate() {
            assert_eq!(
                p.bits() & (!0u32 >> p.len()).wrapping_shl(0) & !mask(p.len()),
                0
            );
            for q in &got[i + 1..] {
                assert!(!p.overlaps(*q), "{p} overlaps {q}");
            }
        }
        fn mask(len: u8) -> u32 {
            if len == 0 {
                0
            } else {
                u32::MAX << (32 - len as u32)
            }
        }
    }

    #[test]
    fn v6_allocations_disjoint() {
        let mut a = SpaceAllocator::new();
        let p = a.alloc_v6(32);
        let q = a.alloc_v6(48);
        let r = a.alloc_v6(32);
        assert!(!p.overlaps(q) && !q.overlaps(r) && !p.overlaps(r));
        assert!(p.addr().to_string().starts_with("2001:"));
    }

    #[test]
    fn mixed_family_dispatch() {
        let mut a = SpaceAllocator::new();
        assert!(a.alloc(false, 24).is_v4());
        assert!(a.alloc(true, 48).is_v6());
    }

    #[test]
    fn many_allocations_stay_in_space() {
        // 10K /22s ≈ 10M addresses: far below exhaustion.
        let mut a = SpaceAllocator::new();
        let mut last = a.alloc_v4(22);
        for _ in 0..10_000 {
            let next = a.alloc_v4(22);
            assert!(next.bits() > last.bits());
            last = next;
        }
    }

    #[test]
    #[should_panic(expected = "allocation length")]
    fn rejects_len_zero() {
        SpaceAllocator::new().alloc_v4(0);
    }
}
