//! Generator configuration: the paper-calibrated category counts and the
//! knobs (seed, scale, weeks) the harness exposes.

/// The eight weekly snapshot labels of Figure 3.
pub const WEEK_LABELS: [&str; 8] = ["4/13", "4/20", "4/27", "5/4", "5/11", "5/18", "5/25", "6/1"];

/// Per-class entity counts. At `scale = 1.0` these reproduce the paper's
/// 6/1/2017 aggregates (see the crate docs for the calibration table and
/// the arithmetic tying each count to a Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryCounts {
    /// Adopters announcing and authorizing exactly their allocation.
    pub adopter_exact: usize,
    /// Adopter ROAs whose prefix is no longer announced at all.
    pub adopter_stale: usize,
    /// Adopters with `maxLength > len` announcing only the allocation
    /// (vulnerable).
    pub adopter_maxlen_plain: usize,
    /// Adopter ROAs listing `{p, p0, p1}` with only `p` announced.
    pub adopter_triple_stale: usize,
    /// Adopters using `maxLength = len+1` and announcing the full depth-1
    /// subtree (the paper's minimal 16% of maxLength users).
    pub adopter_maxlen_safe: usize,
    /// Adopter ROAs listing `{p, p0, p1}` with all three announced.
    pub adopter_triple_live: usize,
    /// Adopters using `maxLength ≥ len+2` while announcing only depth 1
    /// (vulnerable).
    pub adopter_maxlen_deep: usize,
    /// Adopters using `maxLength = len+1` announcing the parent and one
    /// child (vulnerable).
    pub adopter_maxlen_partial: usize,
    /// Adopters holding a permissive `p-24` ROA while announcing scattered
    /// /24s and not `p` itself (vulnerable).
    pub adopter_scattered: usize,
    /// Total scattered /24 announcements across all scattered adopters.
    pub scattered_pairs: usize,
    /// Non-adopter allocations announced as-is.
    pub plain: usize,
    /// Non-adopter full depth-1 de-aggregations (`p, p0, p1`).
    pub deagg_depth1: usize,
    /// Non-adopter full depth-2 de-aggregations (7 announcements).
    pub deagg_depth2: usize,
    /// Non-adopter partial de-aggregations (`p, p0`).
    pub deagg_partial: usize,
    /// Number of RPKI-adopting ASes (= ROA objects; the paper has 7,499).
    pub adopter_ases: usize,
}

impl CategoryCounts {
    /// The paper-scale counts (reproduces the 6/1/2017 dataset).
    pub const PAPER: CategoryCounts = CategoryCounts {
        adopter_exact: 25_000,
        adopter_stale: 818,
        adopter_maxlen_plain: 1_389,
        adopter_triple_stale: 2_490,
        adopter_maxlen_safe: 741,
        adopter_triple_live: 677,
        adopter_maxlen_deep: 300,
        adopter_maxlen_partial: 200,
        adopter_scattered: 2_000,
        scattered_pairs: 18_312,
        plain: 662_076,
        deagg_depth1: 15_750,
        deagg_depth2: 2_000,
        deagg_partial: 437,
        adopter_ases: 7_499,
    };

    /// Scales every count, rounding to nearest (minimum 1 for classes that
    /// were nonzero, so tiny test datasets still exercise every code path).
    pub fn scaled(&self, scale: f64) -> CategoryCounts {
        let s = |c: usize| -> usize {
            if c == 0 {
                0
            } else {
                (((c as f64) * scale).round() as usize).max(1)
            }
        };
        CategoryCounts {
            adopter_exact: s(self.adopter_exact),
            adopter_stale: s(self.adopter_stale),
            adopter_maxlen_plain: s(self.adopter_maxlen_plain),
            adopter_triple_stale: s(self.adopter_triple_stale),
            adopter_maxlen_safe: s(self.adopter_maxlen_safe),
            adopter_triple_live: s(self.adopter_triple_live),
            adopter_maxlen_deep: s(self.adopter_maxlen_deep),
            adopter_maxlen_partial: s(self.adopter_maxlen_partial),
            adopter_scattered: s(self.adopter_scattered),
            scattered_pairs: s(self.scattered_pairs),
            plain: s(self.plain),
            deagg_depth1: s(self.deagg_depth1),
            deagg_depth2: s(self.deagg_depth2),
            deagg_partial: s(self.deagg_partial),
            adopter_ases: s(self.adopter_ases),
        }
    }

    /// Expected number of RPKI tuples (PDUs) in the generated world —
    /// 39,949 at paper scale.
    pub fn expected_tuples(&self) -> usize {
        self.adopter_exact
            + self.adopter_stale
            + self.adopter_maxlen_plain
            + 3 * self.adopter_triple_stale
            + self.adopter_maxlen_safe
            + 3 * self.adopter_triple_live
            + self.adopter_maxlen_deep
            + self.adopter_maxlen_partial
            + self.adopter_scattered
    }

    /// Expected number of BGP `(prefix, origin)` pairs — 776,945 at paper
    /// scale.
    pub fn expected_pairs(&self) -> usize {
        // Adopter announcements.
        self.adopter_exact
            + self.adopter_maxlen_plain
            + self.adopter_triple_stale
            + 3 * self.adopter_maxlen_safe
            + 3 * self.adopter_triple_live
            + 3 * self.adopter_maxlen_deep
            + 2 * self.adopter_maxlen_partial
            + self.scattered_pairs
            // Non-adopter announcements.
            + self.plain
            + 3 * self.deagg_depth1
            + 7 * self.deagg_depth2
            + 2 * self.deagg_partial
    }
}

/// Everything the generator needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed; equal seeds give byte-identical worlds.
    pub seed: u64,
    /// Linear scale on all category counts (1.0 = paper scale, ~777K BGP
    /// pairs; 0.01 is comfortable for unit tests).
    pub scale: f64,
    /// Number of weekly snapshots to expose (1..=8; Figure 3 uses 8).
    pub weeks: usize,
    /// Fraction of allocations put in IPv6 (the 2017 tables were ≈5% v6
    /// by pair count).
    pub v6_fraction: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0x6a17_2017,
            scale: 1.0,
            weeks: 8,
            v6_fraction: 0.05,
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for tests: ~1% of paper scale.
    pub fn small(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            seed,
            scale: 0.01,
            ..GeneratorConfig::default()
        }
    }

    /// The scaled category counts.
    pub fn counts(&self) -> CategoryCounts {
        CategoryCounts::PAPER.scaled(self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_reproduce_headline_numbers() {
        let c = CategoryCounts::PAPER;
        assert_eq!(c.expected_tuples(), 39_949);
        assert_eq!(c.expected_pairs(), 776_945);
        // maxLength-using tuples: 4,630 of which 3,889 vulnerable (84.0%).
        let using = c.adopter_maxlen_plain
            + c.adopter_maxlen_safe
            + c.adopter_maxlen_deep
            + c.adopter_maxlen_partial
            + c.adopter_scattered;
        assert_eq!(using, 4_630);
        let vulnerable = using - c.adopter_maxlen_safe;
        assert_eq!(vulnerable, 3_889);
        assert!((vulnerable as f64 / using as f64 - 0.84).abs() < 0.005);
        // Minimalized pair count: 52,745.
        let minimal = c.adopter_exact
            + c.adopter_maxlen_plain
            + c.adopter_triple_stale
            + 3 * (c.adopter_maxlen_safe + c.adopter_triple_live + c.adopter_maxlen_deep)
            + 2 * c.adopter_maxlen_partial
            + c.scattered_pairs;
        assert_eq!(minimal, 52_745);
        // Status-quo compression: triples merge 3→1.
        let compressed = c.expected_tuples() - 2 * (c.adopter_triple_stale + c.adopter_triple_live);
        assert_eq!(compressed, 33_615);
        // Full-deployment lower bound: pairs minus same-origin descendants.
        let descendants = 2
            * (c.deagg_depth1
                + c.adopter_maxlen_safe
                + c.adopter_triple_live
                + c.adopter_maxlen_deep)
            + 6 * c.deagg_depth2
            + (c.deagg_partial + c.adopter_maxlen_partial);
        assert_eq!(c.expected_pairs() - descendants, 729_372); // paper: 729,371
                                                               // Full-deployment compressed: bound + partial de-aggregations.
        let full_compressed =
            c.expected_pairs() - descendants + (c.deagg_partial + c.adopter_maxlen_partial);
        assert_eq!(full_compressed, 730_009); // paper: 730,008
    }

    #[test]
    fn scaling_rounds_but_keeps_classes_alive() {
        let c = CategoryCounts::PAPER.scaled(0.001);
        assert!(c.adopter_maxlen_partial >= 1);
        assert!(c.plain >= 600);
        let identity = CategoryCounts::PAPER.scaled(1.0);
        assert_eq!(identity, CategoryCounts::PAPER);
    }

    #[test]
    fn default_config() {
        let cfg = GeneratorConfig::default();
        assert_eq!(cfg.weeks, 8);
        assert_eq!(cfg.counts(), CategoryCounts::PAPER);
        let small = GeneratorConfig::small(7);
        assert!(small.counts().expected_pairs() < 10_000);
    }
}
