//! Deterministic VRP churn timelines: the live-cache workload of §6.
//!
//! The paper's overhead argument is about what happens *over time*: relying
//! parties re-validate the RPKI every few minutes, ROAs are issued, expire,
//! get their maxLength edited or their origin transferred, and every
//! resulting delta flows down the rpki-rtr channel and forces routers to
//! revalidate affected routes. This module turns a generated world's VRP
//! set into a reproducible **timeline of epochs** — one epoch per cache
//! refresh — so that the whole announce/withdraw pipeline (cache server,
//! router client, incremental revalidation) can be exercised end to end.
//!
//! # Epoch invariants
//!
//! [`ChurnGenerator`] emits *clean* epochs by construction:
//!
//! * every announced VRP is absent from the set at the epoch's start;
//! * every withdrawn VRP is present at the epoch's start;
//! * no VRP appears in both lists of one epoch (a maxLength edit or ASN
//!   transfer withdraws one VRP value and announces a *different* one).
//!
//! Consumers therefore apply epochs as set operations in either order.
//! (The rtr `CacheServer::update_delta` is nevertheless defensive against
//! dirty deltas — see its docs — but timelines from this generator never
//! need that path.)
//!
//! Everything is deterministic in [`ChurnConfig::seed`]: equal configs and
//! equal initial sets give byte-identical timelines, which is what the
//! differential test harness replays.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rpki_prefix::{Prefix, Prefix4, Prefix6};
use rpki_roa::{Asn, Vrp};

/// A named churn scenario: which kinds of RPKI events an epoch contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnProfile {
    /// New ROAs appear (fresh allocations adopt, or expired ROAs renew).
    Issuance,
    /// Existing ROAs expire and their VRPs vanish.
    Expiry,
    /// A ROA is re-issued with a different maxLength — the paper's central
    /// attribute, edited in place (withdraw + announce in one epoch).
    MaxLengthEdit,
    /// A prefix moves to a new origin AS (withdraw + announce).
    AsnTransfer,
    /// A burst of VRPs flaps: withdrawn this epoch, re-announced the
    /// next. No new flaps begin in a timeline's final epoch, so flaps are
    /// always transient — a pure-flap timeline ends on its initial set.
    FlapBurst,
    /// A weighted blend of all of the above — the realistic default.
    Mixed,
}

impl ChurnProfile {
    /// Every named profile, for scenario sweeps.
    pub const ALL: [ChurnProfile; 6] = [
        ChurnProfile::Issuance,
        ChurnProfile::Expiry,
        ChurnProfile::MaxLengthEdit,
        ChurnProfile::AsnTransfer,
        ChurnProfile::FlapBurst,
        ChurnProfile::Mixed,
    ];

    /// A short display label.
    pub fn label(self) -> &'static str {
        match self {
            ChurnProfile::Issuance => "issuance",
            ChurnProfile::Expiry => "expiry",
            ChurnProfile::MaxLengthEdit => "maxlen-edit",
            ChurnProfile::AsnTransfer => "asn-transfer",
            ChurnProfile::FlapBurst => "flap-burst",
            ChurnProfile::Mixed => "mixed",
        }
    }
}

/// Configuration of a churn timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// RNG seed; equal seeds (and initial sets) give identical timelines.
    pub seed: u64,
    /// Number of epochs (cache refresh cycles) to generate.
    pub epochs: usize,
    /// Target number of churn events per epoch (an event is one issuance,
    /// expiry, edit, transfer, or flap; edits and transfers contribute one
    /// announcement *and* one withdrawal).
    pub events_per_epoch: usize,
    /// Which event mix to draw from.
    pub profile: ChurnProfile,
    /// Fraction of freshly issued VRPs placed in IPv6.
    pub v6_fraction: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 0x6a17_2017,
            epochs: 16,
            events_per_epoch: 32,
            profile: ChurnProfile::Mixed,
            v6_fraction: 0.05,
        }
    }
}

/// One epoch's delta: what a cache refresh changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnEpoch {
    /// 0-based epoch number.
    pub index: usize,
    /// VRPs that appeared this epoch (absent at epoch start).
    pub announced: Vec<Vrp>,
    /// VRPs that vanished this epoch (present at epoch start).
    pub withdrawn: Vec<Vrp>,
}

impl ChurnEpoch {
    /// Total number of delta records in this epoch.
    pub fn len(&self) -> usize {
        self.announced.len() + self.withdrawn.len()
    }

    /// `true` if the epoch changed nothing.
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

/// A complete, materialized churn timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTimeline {
    /// The VRP set before epoch 0, sorted.
    pub initial: Vec<Vrp>,
    /// The epochs in order.
    pub epochs: Vec<ChurnEpoch>,
}

impl ChurnTimeline {
    /// The VRP set after applying epochs `0..=epoch`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `epoch >= self.epochs.len()`.
    pub fn vrps_at(&self, epoch: usize) -> Vec<Vrp> {
        assert!(
            epoch < self.epochs.len(),
            "epoch {epoch} out of range 0..{}",
            self.epochs.len()
        );
        let mut set: BTreeSet<Vrp> = self.initial.iter().copied().collect();
        for e in &self.epochs[..=epoch] {
            for v in &e.withdrawn {
                set.remove(v);
            }
            for v in &e.announced {
                set.insert(*v);
            }
        }
        set.into_iter().collect()
    }

    /// The VRP set after the last epoch (the initial set if there are
    /// none), sorted.
    pub fn final_vrps(&self) -> Vec<Vrp> {
        if self.epochs.is_empty() {
            let mut v = self.initial.clone();
            v.sort_unstable();
            return v;
        }
        self.vrps_at(self.epochs.len() - 1)
    }

    /// Total delta records across all epochs.
    pub fn total_events(&self) -> usize {
        self.epochs.iter().map(ChurnEpoch::len).sum()
    }
}

/// Freshly minted address space for issuance events: far above the world
/// generator's bump allocator (which starts at 1.0.0.0 / 2001:: and stays
/// well under half of each space at paper scale), so minted prefixes never
/// collide with generated allocations.
const FRESH_V4_BASE: u64 = 0xF000_0000;
const FRESH_V6_BASE: u128 = 0x3000_0000_0000_0000_0000_0000_0000_0000;

/// Turns an initial VRP set into a deterministic [`ChurnTimeline`].
#[derive(Debug, Clone)]
pub struct ChurnGenerator {
    config: ChurnConfig,
    rng: StdRng,
    /// The current set (epoch boundaries only).
    current: BTreeSet<Vrp>,
    /// Withdrawn-by-expiry pool, eligible for re-issuance.
    retired: Vec<Vrp>,
    /// Flapped down last epoch; re-announced at the next epoch's start.
    pending_flap: Vec<Vrp>,
    /// Bump cursors for freshly minted prefixes.
    fresh_v4: u64,
    fresh_v6: u128,
}

impl ChurnGenerator {
    /// A generator over an initial VRP set.
    pub fn new(initial: impl IntoIterator<Item = Vrp>, config: ChurnConfig) -> ChurnGenerator {
        ChurnGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            current: initial.into_iter().collect(),
            retired: Vec::new(),
            pending_flap: Vec::new(),
            fresh_v4: FRESH_V4_BASE,
            fresh_v6: FRESH_V6_BASE,
        }
    }

    /// Generates the whole timeline, consuming the generator.
    pub fn generate(mut self) -> ChurnTimeline {
        let initial: Vec<Vrp> = self.current.iter().copied().collect();
        let epochs = (0..self.config.epochs).map(|i| self.epoch(i)).collect();
        ChurnTimeline { initial, epochs }
    }

    /// Builds one epoch and advances the current set past it.
    fn epoch(&mut self, index: usize) -> ChurnEpoch {
        // The epoch-start pool events sample withdrawals from.
        let pool: Vec<Vrp> = self.current.iter().copied().collect();
        let mut announced: BTreeSet<Vrp> = BTreeSet::new();
        let mut withdrawn: BTreeSet<Vrp> = BTreeSet::new();

        // Flapped VRPs come back first: they were removed last epoch, so
        // re-announcing keeps the epoch clean by construction.
        for v in std::mem::take(&mut self.pending_flap) {
            announced.insert(v);
        }

        // A flap begun in the final epoch could never re-announce, so the
        // last epoch draws no new flaps (keeping flaps transient, as the
        // profile documents).
        let flaps_allowed = index + 1 < self.config.epochs;
        for _ in 0..self.config.events_per_epoch {
            let profile = self.event_profile();
            if profile == ChurnProfile::FlapBurst && !flaps_allowed {
                continue;
            }
            self.push_event(profile, &pool, &mut announced, &mut withdrawn);
        }

        for v in &withdrawn {
            self.current.remove(v);
        }
        for v in &announced {
            self.current.insert(*v);
        }
        ChurnEpoch {
            index,
            announced: announced.into_iter().collect(),
            withdrawn: withdrawn.into_iter().collect(),
        }
    }

    /// The concrete event kind for one event slot.
    fn event_profile(&mut self) -> ChurnProfile {
        match self.config.profile {
            ChurnProfile::Mixed => {
                // Issuance slightly outweighs expiry so mixed timelines
                // grow like Figure 3's RPKI curve.
                let roll = self.rng.gen_range(0u32..100);
                match roll {
                    0..=29 => ChurnProfile::Issuance,
                    30..=49 => ChurnProfile::Expiry,
                    50..=69 => ChurnProfile::MaxLengthEdit,
                    70..=79 => ChurnProfile::AsnTransfer,
                    _ => ChurnProfile::FlapBurst,
                }
            }
            fixed => fixed,
        }
    }

    /// Applies one event to the epoch's delta sets; events that cannot
    /// find a target (empty pool, value collisions) are skipped, keeping
    /// the epoch clean rather than padding it with junk.
    fn push_event(
        &mut self,
        kind: ChurnProfile,
        pool: &[Vrp],
        announced: &mut BTreeSet<Vrp>,
        withdrawn: &mut BTreeSet<Vrp>,
    ) {
        match kind {
            ChurnProfile::Issuance => {
                // Renew an expired ROA half the time, else mint fresh
                // space. A retired VRP is only taken out of the renewal
                // pool when it is actually announceable (e.g. one expired
                // earlier in this same epoch still counts as present
                // until the epoch ends) — an infeasible draw stays
                // renewable in a later epoch.
                let mut renewed = None;
                if !self.retired.is_empty() && self.rng.gen_bool(0.5) {
                    let at = self.rng.gen_range(0..self.retired.len());
                    let candidate = self.retired[at];
                    if !self.current.contains(&candidate) && !announced.contains(&candidate) {
                        self.retired.swap_remove(at);
                        renewed = Some(candidate);
                    }
                }
                let vrp = match renewed {
                    Some(v) => v,
                    None => self.mint_fresh(),
                };
                if !self.current.contains(&vrp) && !announced.contains(&vrp) {
                    announced.insert(vrp);
                }
            }
            ChurnProfile::Expiry => {
                if let Some(vrp) = self.pick_live(pool, announced, withdrawn) {
                    withdrawn.insert(vrp);
                    self.retired.push(vrp);
                }
            }
            ChurnProfile::MaxLengthEdit => {
                if let Some(vrp) = self.pick_live(pool, announced, withdrawn) {
                    let ceiling = vrp.prefix.max_len().min(vrp.prefix.len() + 4);
                    let new_max = self.rng.gen_range(vrp.prefix.len()..=ceiling);
                    let edited = Vrp::new(vrp.prefix, new_max, vrp.asn);
                    if edited != vrp
                        && !self.current.contains(&edited)
                        && !announced.contains(&edited)
                    {
                        withdrawn.insert(vrp);
                        announced.insert(edited);
                    }
                }
            }
            ChurnProfile::AsnTransfer => {
                if let Some(vrp) = self.pick_live(pool, announced, withdrawn) {
                    let moved = Vrp::new(
                        vrp.prefix,
                        vrp.max_len,
                        Asn(vrp.asn.0.wrapping_add(self.rng.gen_range(1u32..1000))),
                    );
                    if !self.current.contains(&moved) && !announced.contains(&moved) {
                        withdrawn.insert(vrp);
                        announced.insert(moved);
                    }
                }
            }
            ChurnProfile::FlapBurst => {
                if let Some(vrp) = self.pick_live(pool, announced, withdrawn) {
                    withdrawn.insert(vrp);
                    self.pending_flap.push(vrp);
                }
            }
            ChurnProfile::Mixed => unreachable!("resolved by event_profile"),
        }
    }

    /// A random VRP that is present at epoch start and untouched so far
    /// this epoch (bounded retries keep generation O(events)).
    fn pick_live(
        &mut self,
        pool: &[Vrp],
        announced: &BTreeSet<Vrp>,
        withdrawn: &BTreeSet<Vrp>,
    ) -> Option<Vrp> {
        if pool.is_empty() {
            return None;
        }
        for _ in 0..8 {
            let vrp = pool[self.rng.gen_range(0..pool.len())];
            if !withdrawn.contains(&vrp) && !announced.contains(&vrp) {
                return Some(vrp);
            }
        }
        None
    }

    /// Mints a VRP on never-before-used address space.
    fn mint_fresh(&mut self) -> Vrp {
        let v6 = self.rng.gen_bool(self.config.v6_fraction);
        let prefix = if v6 {
            let len = self.rng.gen_range(32u8..=48);
            let size = 1u128 << (128 - len as u32);
            let base = self.fresh_v6.div_ceil(size) * size;
            self.fresh_v6 = base + size;
            Prefix::V6(Prefix6::new(base, len).expect("aligned by construction"))
        } else {
            let len = self.rng.gen_range(16u8..=24);
            let size = 1u64 << (32 - len as u32);
            let base = self.fresh_v4.div_ceil(size) * size;
            assert!(base + size <= 1 << 32, "fresh IPv4 space exhausted");
            self.fresh_v4 = base + size;
            Prefix::V4(Prefix4::new(base as u32, len).expect("aligned by construction"))
        };
        let max_len = prefix.len()
            + self
                .rng
                .gen_range(0u8..=2)
                .min(prefix.max_len() - prefix.len());
        Vrp::new(prefix, max_len, Asn(self.rng.gen_range(100u32..100_000)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneratorConfig, World};

    fn initial_set() -> Vec<Vrp> {
        World::generate(GeneratorConfig::small(42))
            .snapshot(7)
            .vrps()
    }

    fn timeline(profile: ChurnProfile, seed: u64) -> ChurnTimeline {
        ChurnGenerator::new(
            initial_set(),
            ChurnConfig {
                seed,
                epochs: 12,
                events_per_epoch: 24,
                profile,
                ..ChurnConfig::default()
            },
        )
        .generate()
    }

    #[test]
    fn deterministic_in_seed() {
        let a = timeline(ChurnProfile::Mixed, 7);
        let b = timeline(ChurnProfile::Mixed, 7);
        assert_eq!(a, b);
        let c = timeline(ChurnProfile::Mixed, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn epochs_are_clean() {
        for profile in ChurnProfile::ALL {
            let t = timeline(profile, 11);
            let mut current: BTreeSet<Vrp> = t.initial.iter().copied().collect();
            for epoch in &t.epochs {
                for v in &epoch.announced {
                    assert!(!current.contains(v), "{profile:?}: announced twice: {v}");
                }
                for v in &epoch.withdrawn {
                    assert!(current.contains(v), "{profile:?}: withdrew absent: {v}");
                    assert!(
                        !epoch.announced.contains(v),
                        "{profile:?}: {v} in both lists"
                    );
                }
                for v in &epoch.withdrawn {
                    current.remove(v);
                }
                current.extend(epoch.announced.iter().copied());
            }
            assert_eq!(
                current.into_iter().collect::<Vec<_>>(),
                t.final_vrps(),
                "{profile:?}"
            );
        }
    }

    #[test]
    fn profiles_shape_the_timeline() {
        let issuance = timeline(ChurnProfile::Issuance, 3);
        assert!(issuance.final_vrps().len() > issuance.initial.len());
        assert!(issuance.epochs.iter().all(|e| e.withdrawn.is_empty()));

        let expiry = timeline(ChurnProfile::Expiry, 3);
        assert!(expiry.final_vrps().len() < expiry.initial.len());
        assert!(expiry.epochs.iter().all(|e| e.announced.is_empty()));

        // Edits and transfers keep the set size fixed.
        for profile in [ChurnProfile::MaxLengthEdit, ChurnProfile::AsnTransfer] {
            let t = timeline(profile, 3);
            assert_eq!(t.final_vrps().len(), t.initial.len(), "{profile:?}");
            for e in &t.epochs {
                assert_eq!(e.announced.len(), e.withdrawn.len());
                assert!(!e.is_empty());
            }
        }

        // Flaps: everything withdrawn comes back one epoch later, and a
        // pure-flap timeline is net-lossless — no flap is left stranded
        // by the final epoch.
        let flap = timeline(ChurnProfile::FlapBurst, 3);
        for pair in flap.epochs.windows(2) {
            for v in &pair[0].withdrawn {
                assert!(pair[1].announced.contains(v), "flap {v} never returned");
            }
        }
        assert!(flap.epochs.last().unwrap().withdrawn.is_empty());
        assert_eq!(flap.final_vrps(), flap.initial);
    }

    #[test]
    fn maxlen_edit_changes_only_maxlen() {
        let t = timeline(ChurnProfile::MaxLengthEdit, 5);
        for e in &t.epochs {
            for (a, w) in e.announced.iter().zip(&e.withdrawn) {
                assert_eq!(a.prefix, w.prefix);
                assert_eq!(a.asn, w.asn);
                assert_ne!(a.max_len, w.max_len);
            }
        }
    }

    #[test]
    fn minted_space_disjoint_from_world() {
        let t = timeline(ChurnProfile::Issuance, 9);
        let initial: BTreeSet<Vrp> = t.initial.iter().copied().collect();
        for e in &t.epochs {
            for v in &e.announced {
                assert!(!initial.contains(v));
            }
        }
    }

    #[test]
    fn vrps_at_walks_the_chain() {
        let t = timeline(ChurnProfile::Mixed, 13);
        let last = t.epochs.len() - 1;
        assert_eq!(t.vrps_at(last), t.final_vrps());
        // Each step differs from its predecessor by exactly the epoch's
        // delta record count (clean epochs make this exact).
        let mut prev: BTreeSet<Vrp> = t.initial.iter().copied().collect();
        for (i, e) in t.epochs.iter().enumerate() {
            let now: BTreeSet<Vrp> = t.vrps_at(i).into_iter().collect();
            let gained = now.difference(&prev).count();
            let lost = prev.difference(&now).count();
            assert_eq!(gained, e.announced.len());
            assert_eq!(lost, e.withdrawn.len());
            prev = now;
        }
    }

    #[test]
    fn empty_initial_set_still_churns() {
        let t = ChurnGenerator::new(
            [],
            ChurnConfig {
                epochs: 4,
                events_per_epoch: 8,
                profile: ChurnProfile::Mixed,
                ..ChurnConfig::default()
            },
        )
        .generate();
        assert!(t.initial.is_empty());
        // Only issuance can fire on an empty set; the set grows.
        assert!(!t.final_vrps().is_empty());
    }
}
