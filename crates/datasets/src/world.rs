//! World generation: the calibrated population of allocations, their
//! announcement behaviour, and their RPKI coverage.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use rpki_prefix::Prefix;
use rpki_roa::{Asn, Roa, RoaPrefix, RouteOrigin};

use crate::config::{GeneratorConfig, WEEK_LABELS};
use crate::snapshot::DatasetSnapshot;
use crate::space::SpaceAllocator;

/// The behaviour class of one allocation (see the crate docs for the
/// calibration table mapping classes to paper statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Non-adopter, announces its allocation as-is.
    Plain,
    /// Non-adopter, announces parent and both children.
    DeaggDepth1,
    /// Non-adopter, announces the full subtree to depth 2 (7 routes).
    DeaggDepth2,
    /// Non-adopter, announces parent and left child only.
    DeaggPartial,
    /// ROA for exactly the announced allocation (safe, minimal).
    AdopterExact,
    /// ROA for an allocation no longer announced.
    AdopterStale,
    /// ROA with `maxLength > len`, only the allocation announced
    /// (vulnerable).
    AdopterMaxLenPlain,
    /// ROA listing `{p, p0, p1}` with only `p` announced.
    AdopterTripleStale,
    /// ROA `p-(len+1)` with the full depth-1 subtree announced (the safe
    /// maxLength minority).
    AdopterMaxLenSafe,
    /// ROA listing `{p, p0, p1}`, all three announced.
    AdopterTripleLive,
    /// ROA `p-(len+k)`, `k ≥ 2`, with only depth 1 announced (vulnerable).
    AdopterMaxLenDeep,
    /// ROA `p-(len+1)` with parent and one child announced (vulnerable).
    AdopterMaxLenPartial,
    /// ROA `p-24` (or `p-48` for IPv6) with scattered more-specifics
    /// announced and `p` itself absent from BGP (vulnerable).
    AdopterScattered,
}

impl Category {
    /// `true` if the allocation appears in the RPKI.
    pub fn is_adopter(self) -> bool {
        !matches!(
            self,
            Category::Plain
                | Category::DeaggDepth1
                | Category::DeaggDepth2
                | Category::DeaggPartial
        )
    }
}

/// One allocation: a disjoint block of address space owned by one AS,
/// with its announcement and RPKI behaviour.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// The allocated prefix (disjoint from all other allocations).
    pub prefix: Prefix,
    /// The owning (and originating) AS.
    pub asn: Asn,
    /// Behaviour class.
    pub category: Category,
    /// For maxLength-using classes: the ROA's maxLength.
    pub max_len: Option<u8>,
    /// For [`Category::AdopterScattered`]: the announced more-specifics.
    pub scattered: Vec<Prefix>,
    /// Activation threshold on the RPKI side (ROA exists in week `w` iff
    /// this is below the week's RPKI fraction).
    pub rpki_birth: f64,
    /// Activation threshold on the BGP side.
    pub bgp_birth: f64,
}

impl Allocation {
    /// The BGP announcements this allocation contributes when active.
    pub fn announcements(&self) -> Vec<RouteOrigin> {
        let own = |p: Prefix| RouteOrigin::new(p, self.asn);
        match self.category {
            Category::Plain
            | Category::AdopterExact
            | Category::AdopterMaxLenPlain
            | Category::AdopterTripleStale => vec![own(self.prefix)],
            Category::AdopterStale => vec![],
            Category::DeaggDepth1
            | Category::AdopterMaxLenSafe
            | Category::AdopterTripleLive
            | Category::AdopterMaxLenDeep => {
                let (l, r) = self.prefix.children().expect("parent length bounded");
                vec![own(self.prefix), own(l), own(r)]
            }
            Category::DeaggDepth2 => {
                let (l, r) = self.prefix.children().expect("parent length bounded");
                let mut out = vec![own(self.prefix), own(l), own(r)];
                for child in [l, r] {
                    let (gl, gr) = child.children().expect("depth bounded");
                    out.push(own(gl));
                    out.push(own(gr));
                }
                out
            }
            Category::DeaggPartial | Category::AdopterMaxLenPartial => {
                let l = self.prefix.left_child().expect("parent length bounded");
                vec![own(self.prefix), own(l)]
            }
            Category::AdopterScattered => self.scattered.iter().map(|&p| own(p)).collect(),
        }
    }

    /// The ROA prefix entries this allocation contributes when covered.
    pub fn roa_entries(&self) -> Vec<RoaPrefix> {
        match self.category {
            Category::Plain
            | Category::DeaggDepth1
            | Category::DeaggDepth2
            | Category::DeaggPartial => vec![],
            Category::AdopterExact | Category::AdopterStale => {
                vec![RoaPrefix::exact(self.prefix)]
            }
            Category::AdopterMaxLenPlain
            | Category::AdopterMaxLenSafe
            | Category::AdopterMaxLenDeep
            | Category::AdopterMaxLenPartial
            | Category::AdopterScattered => {
                vec![RoaPrefix::with_max_len(
                    self.prefix,
                    self.max_len.expect("maxLength classes carry one"),
                )]
            }
            Category::AdopterTripleStale | Category::AdopterTripleLive => {
                let (l, r) = self.prefix.children().expect("parent length bounded");
                vec![
                    RoaPrefix::exact(self.prefix),
                    RoaPrefix::exact(l),
                    RoaPrefix::exact(r),
                ]
            }
        }
    }
}

/// A fully generated world, from which weekly snapshots are cut.
#[derive(Debug, Clone)]
pub struct World {
    /// All allocations (adopters and non-adopters).
    pub allocations: Vec<Allocation>,
    /// The configuration used.
    pub config: GeneratorConfig,
}

impl World {
    /// Generates the world for a configuration. Deterministic in the seed.
    pub fn generate(config: GeneratorConfig) -> World {
        let counts = config.counts();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut space = SpaceAllocator::new();
        let mut allocations = Vec::with_capacity(counts.expected_pairs());

        // --- Adopter entities -------------------------------------------
        let mut adopters: Vec<Category> = Vec::new();
        let push_n =
            |v: &mut Vec<Category>, c: Category, n: usize| v.extend(std::iter::repeat_n(c, n));
        push_n(&mut adopters, Category::AdopterExact, counts.adopter_exact);
        push_n(&mut adopters, Category::AdopterStale, counts.adopter_stale);
        push_n(
            &mut adopters,
            Category::AdopterMaxLenPlain,
            counts.adopter_maxlen_plain,
        );
        push_n(
            &mut adopters,
            Category::AdopterTripleStale,
            counts.adopter_triple_stale,
        );
        push_n(
            &mut adopters,
            Category::AdopterMaxLenSafe,
            counts.adopter_maxlen_safe,
        );
        push_n(
            &mut adopters,
            Category::AdopterTripleLive,
            counts.adopter_triple_live,
        );
        push_n(
            &mut adopters,
            Category::AdopterMaxLenDeep,
            counts.adopter_maxlen_deep,
        );
        push_n(
            &mut adopters,
            Category::AdopterMaxLenPartial,
            counts.adopter_maxlen_partial,
        );
        push_n(
            &mut adopters,
            Category::AdopterScattered,
            counts.adopter_scattered,
        );
        // Mix categories across ASes.
        adopters.shuffle(&mut rng);

        // Scattered-pair budget, spread evenly with the remainder on the
        // first few entities so the total is exact.
        let n_scattered = counts.adopter_scattered.max(1);
        let scattered_base = counts.scattered_pairs / n_scattered;
        let scattered_extra = counts.scattered_pairs % n_scattered;
        let mut scattered_seen = 0usize;

        let adopter_ases = counts.adopter_ases.max(1);
        for (i, &category) in adopters.iter().enumerate() {
            // Contiguous dealing over shuffled entities ≈ random grouping.
            let asn = Asn(100 + (i * adopter_ases / adopters.len().max(1)) as u32);
            let alloc = Self::make_allocation(
                &mut rng,
                &mut space,
                config.v6_fraction,
                category,
                asn,
                if category == Category::AdopterScattered {
                    let s = scattered_base + usize::from(scattered_seen < scattered_extra);
                    scattered_seen += 1;
                    s
                } else {
                    0
                },
            );
            allocations.push(alloc);
        }

        // --- Non-adopter entities ----------------------------------------
        let mut non_adopters: Vec<Category> = Vec::new();
        push_n(&mut non_adopters, Category::Plain, counts.plain);
        push_n(
            &mut non_adopters,
            Category::DeaggDepth1,
            counts.deagg_depth1,
        );
        push_n(
            &mut non_adopters,
            Category::DeaggDepth2,
            counts.deagg_depth2,
        );
        push_n(
            &mut non_adopters,
            Category::DeaggPartial,
            counts.deagg_partial,
        );
        non_adopters.shuffle(&mut rng);

        let mut asn = 100_000u32;
        let mut remaining_in_as = 0usize;
        for &category in &non_adopters {
            if remaining_in_as == 0 {
                asn += 1;
                remaining_in_as = rng.gen_range(1..=24);
            }
            remaining_in_as -= 1;
            let alloc = Self::make_allocation(
                &mut rng,
                &mut space,
                config.v6_fraction,
                category,
                Asn(asn),
                0,
            );
            allocations.push(alloc);
        }

        World {
            allocations,
            config,
        }
    }

    fn make_allocation(
        rng: &mut StdRng,
        space: &mut SpaceAllocator,
        v6_fraction: f64,
        category: Category,
        asn: Asn,
        scattered_count: usize,
    ) -> Allocation {
        let v6 = rng.gen_bool(v6_fraction);
        let (prefix, max_len, scattered) = match category {
            // Leaf-like allocations: realistic length mix, mostly /24 (v4).
            Category::Plain
            | Category::AdopterExact
            | Category::AdopterStale
            | Category::AdopterMaxLenPlain => {
                let len = if v6 {
                    *[32u8, 40, 44, 48].choose(rng).expect("non-empty")
                } else {
                    // Weighted like the 2017 global table: /24 dominates
                    // (~60%), shorter prefixes increasingly rare. The mix
                    // also keeps ~700K disjoint allocations comfortably
                    // inside the 32-bit space.
                    let roll = rng.gen_range(0u32..100);
                    match roll {
                        0 => 16,
                        1 => 18,
                        2..=3 => 19,
                        4..=7 => 20,
                        8..=13 => 21,
                        14..=25 => 22,
                        26..=37 => 23,
                        _ => 24,
                    }
                };
                let prefix = space.alloc(v6, len);
                let max_len = if category == Category::AdopterMaxLenPlain {
                    let k = rng.gen_range(1..=6);
                    Some((len + k).min(prefix.max_len()))
                } else {
                    None
                };
                (prefix, max_len, vec![])
            }
            // Structured allocations need room for children.
            Category::DeaggDepth1
            | Category::DeaggDepth2
            | Category::DeaggPartial
            | Category::AdopterTripleStale
            | Category::AdopterTripleLive
            | Category::AdopterMaxLenSafe
            | Category::AdopterMaxLenPartial
            | Category::AdopterMaxLenDeep => {
                let len = if v6 {
                    rng.gen_range(32..=44)
                } else {
                    // De-aggregating networks hold mid-size blocks; keep
                    // room for two levels of children above /24.
                    *[18u8, 19, 20, 20, 21, 21, 22, 22]
                        .choose(rng)
                        .expect("non-empty")
                };
                let prefix = space.alloc(v6, len);
                let max_len = match category {
                    Category::AdopterMaxLenSafe | Category::AdopterMaxLenPartial => Some(len + 1),
                    Category::AdopterMaxLenDeep => Some(len + rng.gen_range(2..=4)),
                    _ => None,
                };
                (prefix, max_len, vec![])
            }
            // Scattered: a roomy parent, /24 (or /48) more-specifics at
            // even offsets — never siblings of one another, so nothing
            // accidentally compresses and the class stays vulnerable.
            Category::AdopterScattered => {
                let (len, scatter_len) = if v6 {
                    (rng.gen_range(32u8..=40), 48u8)
                } else {
                    (rng.gen_range(15u8..=18), 24u8)
                };
                let prefix = space.alloc(v6, len);
                let even_slots = 1u64 << (scatter_len - len - 1);
                let want = scattered_count.max(1).min(even_slots as usize);
                let idx = rand::seq::index::sample(rng, even_slots as usize, want).into_vec();
                let mut scattered: Vec<Prefix> = idx
                    .into_iter()
                    .map(|i| {
                        let offset = (i as u128) * 2;
                        let bits = prefix.bits_u128() | (offset << (128 - scatter_len as u32));
                        Prefix::from_bits_u128(prefix.afi(), bits, scatter_len)
                            .expect("offset stays inside the allocation")
                    })
                    .collect();
                scattered.sort_unstable();
                (prefix, Some(scatter_len), scattered)
            }
        };
        Allocation {
            prefix,
            asn,
            category,
            max_len,
            scattered,
            rpki_birth: rng.gen(),
            bgp_birth: rng.gen(),
        }
    }

    /// Cuts the snapshot for week `week` (0-based). Week `weeks - 1` is the
    /// full world (the 6/1 dataset the paper's Table 1 uses).
    pub fn snapshot(&self, week: usize) -> DatasetSnapshot {
        let weeks = self.config.weeks.max(1);
        assert!(week < weeks, "week {week} out of range 0..{weeks}");
        let progress = if weeks == 1 {
            1.0
        } else {
            week as f64 / (weeks - 1) as f64
        };
        // Figure 3: the RPKI grew ~6% over the window, BGP ~1%.
        let f_rpki = 0.94 + 0.06 * progress;
        let f_bgp = 0.99 + 0.01 * progress;

        let mut routes = Vec::new();
        // (asn, entries) accumulated in allocation order, then grouped.
        let mut roa_entries: std::collections::BTreeMap<Asn, Vec<RoaPrefix>> =
            std::collections::BTreeMap::new();
        for alloc in &self.allocations {
            if alloc.bgp_birth < f_bgp {
                routes.extend(alloc.announcements());
            }
            if alloc.category.is_adopter() && alloc.rpki_birth < f_rpki {
                roa_entries
                    .entry(alloc.asn)
                    .or_default()
                    .extend(alloc.roa_entries());
            }
        }
        let roas: Vec<Roa> = roa_entries
            .into_iter()
            .filter_map(|(asn, entries)| Roa::new(asn, entries).ok())
            .collect();
        let label = WEEK_LABELS.get(week).copied().unwrap_or("week").to_string();
        DatasetSnapshot {
            label,
            roas,
            routes,
        }
    }

    /// All weekly snapshots in order.
    pub fn snapshots(&self) -> Vec<DatasetSnapshot> {
        (0..self.config.weeks.max(1))
            .map(|w| self.snapshot(w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CategoryCounts;

    fn small_world(seed: u64) -> World {
        World::generate(GeneratorConfig::small(seed))
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small_world(1).snapshot(7);
        let b = small_world(1).snapshot(7);
        assert_eq!(a.routes, b.routes);
        assert_eq!(a.roas, b.roas);
        let c = small_world(2).snapshot(7);
        assert_ne!(a.routes, c.routes);
    }

    #[test]
    fn final_week_counts_match_expectations() {
        let world = small_world(3);
        let counts = world.config.counts();
        let snap = world.snapshot(7);
        assert_eq!(snap.routes.len(), counts.expected_pairs());
        assert_eq!(snap.vrps().len(), counts.expected_tuples());
    }

    #[test]
    fn allocations_disjoint_across_entities() {
        let world = small_world(4);
        let prefixes: Vec<Prefix> = world.allocations.iter().map(|a| a.prefix).collect();
        for (i, p) in prefixes.iter().enumerate() {
            for q in prefixes[i + 1..].iter().take(200) {
                assert!(!p.covers(*q) && !q.covers(*p), "{p} vs {q}");
            }
        }
    }

    #[test]
    fn scattered_entities_never_announce_parent_or_siblings() {
        let world = small_world(5);
        for alloc in &world.allocations {
            if alloc.category != Category::AdopterScattered {
                continue;
            }
            assert!(!alloc.scattered.is_empty());
            let announced = alloc.announcements();
            assert!(announced.iter().all(|r| r.prefix != alloc.prefix));
            for (i, a) in alloc.scattered.iter().enumerate() {
                assert!(alloc.prefix.covers(*a));
                assert_eq!(a.len(), alloc.max_len.unwrap());
                for b in &alloc.scattered[i + 1..] {
                    assert_ne!(a.sibling(), Some(*b), "siblings would compress");
                }
            }
        }
    }

    #[test]
    fn weekly_growth_is_monotone() {
        let world = small_world(6);
        let mut last_routes = 0;
        let mut last_tuples = 0;
        for snap in world.snapshots() {
            assert!(snap.routes.len() >= last_routes);
            assert!(snap.vrps().len() >= last_tuples);
            last_routes = snap.routes.len();
            last_tuples = snap.vrps().len();
        }
    }

    #[test]
    fn week_labels_applied() {
        let world = small_world(7);
        assert_eq!(world.snapshot(0).label, "4/13");
        assert_eq!(world.snapshot(7).label, "6/1");
    }

    #[test]
    fn adopter_roas_group_by_as() {
        let world = small_world(8);
        let snap = world.snapshot(7);
        let mut asns: Vec<Asn> = snap.roas.iter().map(|r| r.asn()).collect();
        let n = asns.len();
        asns.dedup();
        assert_eq!(asns.len(), n, "one ROA object per AS");
        // Roughly the scaled adopter AS count (some ASes may have all
        // entries withheld at small scale).
        let expect = world.config.counts().adopter_ases;
        assert!(n <= expect);
        assert!(n * 10 >= expect * 7, "{n} ROAs vs expected ~{expect}");
    }

    #[test]
    fn category_invariants_hold() {
        let world = small_world(9);
        for alloc in &world.allocations {
            match alloc.category {
                Category::AdopterMaxLenSafe | Category::AdopterMaxLenPartial => {
                    assert_eq!(alloc.max_len, Some(alloc.prefix.len() + 1));
                }
                Category::AdopterMaxLenDeep => {
                    assert!(alloc.max_len.unwrap() >= alloc.prefix.len() + 2);
                }
                Category::AdopterMaxLenPlain => {
                    assert!(alloc.max_len.unwrap() > alloc.prefix.len());
                }
                _ => {}
            }
            if alloc.category.is_adopter() {
                assert!(!alloc.roa_entries().is_empty());
            } else {
                assert!(alloc.roa_entries().is_empty());
                assert!(!alloc.announcements().is_empty());
            }
        }
    }

    #[test]
    fn paper_scale_arithmetic_spot_check() {
        // Don't generate the full world in unit tests; just confirm the
        // config arithmetic again at a mid scale.
        let c = CategoryCounts::PAPER.scaled(0.1);
        assert!(c.expected_pairs() > 70_000 && c.expected_pairs() < 85_000);
    }
}

#[cfg(test)]
mod v6_share_tests {
    use super::*;

    #[test]
    fn v6_share_tracks_config() {
        let world = World::generate(GeneratorConfig {
            scale: 0.01,
            v6_fraction: 0.05,
            ..GeneratorConfig::default()
        });
        let snap = world.snapshot(7);
        let v6 = snap.routes.iter().filter(|r| r.prefix.is_v6()).count();
        let share = v6 as f64 / snap.routes.len() as f64;
        assert!((0.02..=0.09).contains(&share), "v6 share {share}");
        // And ROA entries follow the same mix.
        let v6_tuples = snap.vrps().iter().filter(|v| v.prefix.is_v6()).count();
        assert!(v6_tuples > 0);
    }

    #[test]
    fn v6_can_be_disabled() {
        let world = World::generate(GeneratorConfig {
            scale: 0.005,
            v6_fraction: 0.0,
            ..GeneratorConfig::default()
        });
        let snap = world.snapshot(7);
        assert!(snap.routes.iter().all(|r| r.prefix.is_v4()));
    }
}
