//! Property tests on the generator: for any seed and (small) scale, the
//! produced world must satisfy the structural invariants the calibration
//! arithmetic relies on.

use proptest::prelude::*;
use rpki_datasets::{Category, GeneratorConfig, World};

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (any::<u64>(), 1u32..=40).prop_map(|(seed, scale_mils)| GeneratorConfig {
        seed,
        scale: scale_mils as f64 / 10_000.0, // 0.0001..=0.004
        ..GeneratorConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The final snapshot hits the scaled category arithmetic exactly.
    #[test]
    fn final_snapshot_counts_exact(config in arb_config()) {
        let world = World::generate(config);
        let counts = config.counts();
        let snap = world.snapshot(config.weeks - 1);
        prop_assert_eq!(snap.routes.len(), counts.expected_pairs());
        prop_assert_eq!(snap.vrps().len(), counts.expected_tuples());
        // No duplicate (prefix, origin) pairs.
        let mut routes = snap.routes.clone();
        routes.sort_unstable();
        routes.dedup();
        prop_assert_eq!(routes.len(), snap.routes.len());
    }

    /// Adopter ROA entries always authorize the allocation's own space.
    #[test]
    fn roa_entries_stay_inside_allocations(config in arb_config()) {
        let world = World::generate(config);
        for alloc in &world.allocations {
            for entry in alloc.roa_entries() {
                prop_assert!(
                    alloc.prefix.covers(entry.prefix),
                    "{} outside {}", entry.prefix, alloc.prefix
                );
                prop_assert!(entry.is_well_formed());
            }
            for route in alloc.announcements() {
                prop_assert!(alloc.prefix.covers(route.prefix));
                prop_assert_eq!(route.origin, alloc.asn);
            }
        }
    }

    /// Scattered allocations never announce sibling pairs or their parent
    /// (the zero-compressibility guarantee behind the 637-tuple gap).
    #[test]
    fn scattered_never_compressible(config in arb_config()) {
        let world = World::generate(config);
        for alloc in &world.allocations {
            if alloc.category != Category::AdopterScattered {
                continue;
            }
            let announced: std::collections::BTreeSet<_> =
                alloc.scattered.iter().copied().collect();
            for p in &alloc.scattered {
                if let Some(sib) = p.sibling() {
                    prop_assert!(!announced.contains(&sib), "sibling pair {p}");
                }
                if let Some(parent) = p.parent() {
                    prop_assert!(!announced.contains(&parent));
                }
            }
        }
    }

    /// Weekly snapshots grow monotonically on both sides.
    #[test]
    fn snapshots_monotone(config in arb_config()) {
        let world = World::generate(config);
        let mut last = (0usize, 0usize);
        for snap in world.snapshots() {
            let now = (snap.routes.len(), snap.vrps().len());
            prop_assert!(now.0 >= last.0 && now.1 >= last.1);
            last = now;
        }
    }

    /// The text format round-trips any generated snapshot.
    #[test]
    fn io_round_trip(config in arb_config(), week in 0usize..8) {
        let world = World::generate(config);
        let snap = world.snapshot(week);
        let back = rpki_datasets::io::from_str(&rpki_datasets::io::to_string(&snap)).unwrap();
        prop_assert_eq!(back, snap);
    }
}
