//! Property suite for the internet-scale power-law generator
//! ([`Topology::generate_internet`]): the structural contracts the 80k
//! bench relies on, checked over random configurations at testable
//! sizes.
//!
//! * **Seed determinism** — two builds from one config produce
//!   byte-identical CSR arrays (the `csr_arrays` surface);
//! * **Connectivity** — every AS reaches a tier-1 over a valley-free
//!   all-provider path (provider chains strictly descend by
//!   construction);
//! * **Degree sanity** — the degree distribution is heavy-tailed but
//!   bounded (no hub swallows the graph) and the stub fraction lands
//!   where the tier structure puts it;
//! * **CSR invariants** — sorted segments, no self loops, no duplicate
//!   edges, symmetric relationships.

use proptest::prelude::*;

use bgpsim::topology::{InternetConfig, Topology};

/// Random internet-like configurations at proptest-friendly sizes.
fn arb_config() -> impl Strategy<Value = InternetConfig> {
    (
        200usize..1200,
        2usize..8,
        1usize..40, // transit percent (as %, to keep Value: Debug simple)
        1usize..5,
        1usize..60, // peer links per AS in tenths
        any::<u64>(),
    )
        .prop_map(
            |(n, tier1, transit_pct, max_providers, peer_tenths, seed)| InternetConfig {
                n,
                tier1,
                transit_frac: transit_pct as f64 / 100.0,
                max_providers,
                peer_links_per_as: peer_tenths as f64 / 10.0,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ byte-identical CSR, including across an interleaved
    /// build of a *different* seed (no hidden global state).
    #[test]
    fn same_seed_builds_byte_identical_csr(config in arb_config()) {
        let a = Topology::generate_internet(config);
        let _decoy = Topology::generate_internet(InternetConfig {
            seed: config.seed.wrapping_add(1),
            ..config
        });
        let b = Topology::generate_internet(config);
        prop_assert_eq!(a.csr_arrays(), b.csr_arrays());
        prop_assert_eq!(a.stubs(), b.stubs());
    }

    /// Every AS reaches a tier-1 over an all-provider (valley-free)
    /// path, and provider chains strictly descend — the acyclicity the
    /// Gao–Rexford phases assume.
    #[test]
    fn every_as_reaches_tier1_via_providers(config in arb_config()) {
        let t = Topology::generate_internet(config);
        for a in t.tier1()..t.len() {
            prop_assert!(!t.providers(a).is_empty(), "AS {} has no provider", a);
            // Follow the smallest provider; indices strictly decrease,
            // so the walk reaches the clique in at most `a` steps.
            let mut cur = a;
            let mut steps = 0usize;
            while cur >= t.tier1() {
                let next = t.providers(cur)[0] as usize;
                prop_assert!(next < cur, "provider {} of {} does not descend", next, cur);
                cur = next;
                steps += 1;
                prop_assert!(steps <= a, "provider walk from {} did not terminate", a);
            }
        }
    }

    /// The degree distribution is internet-shaped: a heavy-tailed head
    /// that still leaves no hub adjacent to most of the graph, and a
    /// stub fraction matching the configured tier structure.
    #[test]
    fn degrees_and_stub_fraction_are_sane(config in arb_config()) {
        let t = Topology::generate_internet(config);
        let n = t.len();
        let max_degree = (0..n).map(|a| t.degree(a)).max().unwrap_or(0);
        prop_assert!(
            max_degree < n / 2 + config.tier1,
            "hub of degree {} swallows the {}-AS graph",
            max_degree,
            n
        );
        // Stubs: everything past the transit tier has no customers by
        // construction; customer-less transit ASes may join them.
        let transit = config.tier1
            + ((n - config.tier1) as f64 * config.transit_frac) as usize;
        prop_assert!(t.stubs().len() >= n - transit);
        prop_assert!(t.stubs().len() <= n - config.tier1);
        // The tier-1 clique is intact (fully peered, never a stub).
        for a in 0..config.tier1 {
            prop_assert!(!t.is_stub(a));
            prop_assert_eq!(t.peers(a).len() >= config.tier1 - 1, true);
        }
    }

    /// CSR structural invariants: strictly sorted segments (no
    /// duplicates within a segment), no self loops, one relationship
    /// per AS pair, and symmetric relationships.
    #[test]
    fn csr_invariants_hold(config in arb_config()) {
        let t = Topology::generate_internet(config);
        for a in 0..t.len() {
            let mut row: Vec<u32> = Vec::with_capacity(t.degree(a));
            for seg in [t.customers(a), t.peers(a), t.providers(a)] {
                prop_assert!(
                    seg.windows(2).all(|w| w[0] < w[1]),
                    "unsorted or duplicated segment at AS {}", a
                );
                prop_assert!(
                    !seg.contains(&(a as u32)),
                    "self loop at AS {}", a
                );
                row.extend_from_slice(seg);
            }
            // One relationship per pair: the whole row has no duplicate
            // neighbor across segments.
            row.sort_unstable();
            prop_assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "AS {} lists a neighbor under two relationships", a
            );
            for (b, rel) in t.neighbors(a) {
                prop_assert_eq!(
                    t.relationship(b, a),
                    Some(rel.flipped()),
                    "asymmetric edge {} <-> {}", a, b
                );
            }
        }
        // Link accounting: the CSR stores each undirected edge twice.
        let degree_sum: usize = (0..t.len()).map(|a| t.degree(a)).sum();
        prop_assert_eq!(degree_sum, 2 * t.link_count());
    }

    /// The peering phase respects its target: enough lateral links to
    /// dominate the link mass at realistic settings, never more than
    /// requested.
    #[test]
    fn peer_target_is_respected(seed in any::<u64>()) {
        let config = InternetConfig {
            n: 2000,
            tier1: 5,
            transit_frac: 0.15,
            max_providers: 3,
            peer_links_per_as: 3.0,
            seed,
        };
        let t = Topology::generate_internet(config);
        let peer_links: usize = (0..t.len()).map(|a| t.peers(a).len()).sum::<usize>() / 2;
        let clique = config.tier1 * (config.tier1 - 1) / 2;
        let target = (config.n as f64 * config.peer_links_per_as) as usize;
        prop_assert!(peer_links <= clique + target);
        // At this size the pair space is vast; the sampler should land
        // essentially all of its budget.
        prop_assert!(peer_links >= clique + target - target / 50);
    }
}
