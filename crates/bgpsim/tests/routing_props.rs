//! Property suite for the propagation engine — the hot path every attack
//! trial and matrix cell runs through.
//!
//! For random topology shapes, seeds, and origin placements:
//!
//! * every forwarding path is **valley-free** (never up or sideways
//!   after going down — Gao–Rexford's defining invariant),
//! * **loop-free** (no AS appears twice), and
//! * **next-hop-consistent** (each hop's selected route agrees with its
//!   predecessor on deliverer, claimed origin, and path length, and
//!   every hop is a real adjacency);
//! * the parallel runners ([`AttackExperiment::run_par`] and
//!   [`ScenarioMatrix::run_par`]) are **bit-identical** to their
//!   sequential folds — for every matrix cell, and across thread counts.

use proptest::prelude::*;

use bgpsim::experiment::RoaConfig;
use bgpsim::matrix::{ScenarioMatrix, TopologyFamily};
use bgpsim::routing::{propagate, Seed};
use bgpsim::topology::{Relationship, Topology, TopologyConfig};
use bgpsim::{AttackExperiment, DeploymentModel};

fn arb_config() -> impl Strategy<Value = TopologyConfig> {
    (40usize..200, 2usize..6, 1usize..4, 0u32..5, 0u64..1000).prop_map(
        |(n, tier1, max_providers, peer_decile, seed)| TopologyConfig {
            n,
            tier1,
            max_providers,
            peer_prob: peer_decile as f64 / 10.0,
            seed,
        },
    )
}

/// Checks the three path invariants for every routed AS of `prop`.
fn check_paths(t: &Topology, prop: &bgpsim::Propagation) {
    for from in 0..t.len() {
        let Some(info) = prop.routes()[from] else {
            continue;
        };
        let path = prop.forwarding_path(from).expect("routed AS has a path");
        assert_eq!(path[0], from);
        assert_eq!(*path.last().unwrap(), info.delivers_to);

        // Loop-free: no AS twice.
        let mut seen: Vec<usize> = path.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), path.len(), "forwarding loop in {path:?}");

        // Valley-free and adjacency: classify each hop as seen from the
        // forwarding AS; once the path descends (customer hop) or moves
        // sideways (peer hop), it may never ascend or peer again.
        let mut descended = false;
        for pair in path.windows(2) {
            let rel = t
                .relationship(pair[0], pair[1])
                .expect("every hop is an adjacency");
            match rel {
                Relationship::Customer => descended = true,
                Relationship::Peer => {
                    assert!(!descended, "peer hop after descending: valley in {path:?}");
                    descended = true;
                }
                Relationship::Provider => {
                    assert!(!descended, "ascent after descending: valley in {path:?}");
                }
            }
        }

        // Next-hop consistency: each hop's own selected route delivers
        // to the same place, claims the same origin, and is one hop
        // shorter than its predecessor's.
        for pair in path.windows(2) {
            let here = prop.routes()[pair[0]].expect("on-path AS is routed");
            let next = prop.routes()[pair[1]].expect("next hop is routed");
            assert_eq!(here.next_hop, Some(pair[1]));
            assert_eq!(here.delivers_to, next.delivers_to);
            assert_eq!(here.claimed_origin, next.claimed_origin);
            assert_eq!(here.path_len, next.path_len + 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn propagation_paths_are_valley_free_loop_free_and_consistent(
        config in arb_config(),
        origin_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..3),
        filter_salt in any::<u64>(),
    ) {
        let t = Topology::generate(config);
        let stubs = t.stubs();
        if stubs.len() < 2 {
            return; // degenerate draw (the shim has no prop_assume)
        }
        let seeds: Vec<Seed> = {
            let mut picked: Vec<usize> = origin_picks
                .iter()
                .map(|ix| stubs[ix.index(stubs.len())])
                .collect();
            picked.sort_unstable();
            picked.dedup();
            picked.into_iter().map(|at| Seed::origin(at, t.asn(at))).collect()
        };

        // Accept-all world.
        let open = propagate(&t, &seeds, &|_, _| true);
        check_paths(&t, &open);
        // Every AS reaches a connected single-origin world.
        if seeds.len() == 1 {
            prop_assert_eq!(open.reached(), t.len());
        }

        // A deterministic partial import filter (a pseudo-ROV world):
        // the invariants must survive arbitrary route drops.
        let filtered = propagate(&t, &seeds, &|at, _| {
            ((at as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ filter_salt) > u64::MAX / 4
        });
        check_paths(&t, &filtered);
        prop_assert!(filtered.reached() <= open.reached());
    }

    #[test]
    fn experiment_run_par_is_bit_identical(
        n in 80usize..220,
        tier1 in 2usize..6,
        trials in 1usize..6,
        rov_decile in 0u32..=10,
        seed in any::<u64>(),
    ) {
        let experiment = AttackExperiment {
            topology: TopologyConfig { n, tier1, ..TopologyConfig::default() },
            trials,
            rov_fraction: rov_decile as f64 / 10.0,
            seed,
        };
        prop_assert_eq!(experiment.run(), experiment.run_par());
    }

    #[test]
    fn matrix_run_par_is_bit_identical_for_every_cell(
        n in 60usize..160,
        trials in 1usize..4,
        seed in any::<u64>(),
        uniform_decile in 0u32..=10,
    ) {
        let matrix = ScenarioMatrix {
            topologies: vec![TopologyFamily::new(TopologyConfig {
                n,
                tier1: 4,
                ..TopologyConfig::default()
            })],
            strategies: ScenarioMatrix::standard_strategies(),
            deployments: vec![
                DeploymentModel::Uniform { p: uniform_decile as f64 / 10.0 },
                DeploymentModel::TopIspsFirst { p: 0.3 },
                DeploymentModel::StubsOnly { p: 1.0 },
            ],
            roas: RoaConfig::ALL.to_vec(),
            trials,
            seed,
        };
        let sequential = matrix.run();
        let parallel = matrix.run_par();
        // Cell-by-cell (clearer failure reports than one big equality).
        prop_assert_eq!(sequential.cells.len(), parallel.cells.len());
        for (s, p) in sequential.cells.iter().zip(parallel.cells.iter()) {
            prop_assert_eq!(s, p);
        }
        prop_assert_eq!(sequential, parallel);
    }
}

// The RAYON_NUM_THREADS sweep lives in its own test binary
// (`tests/thread_sweep.rs`): it mutates the process environment, which
// the run_par tests in *this* binary read concurrently.
